//! The measured staleness probe (§IV-F, Figure 10 — but measured, not
//! simulated).
//!
//! `crates/core/src/freshness.rs` *models* the delay between a box-expanding
//! insert on one server and its visibility on another as a Monte-Carlo
//! process fed with assumed parameters. This probe measures the same
//! quantity empirically from a running cluster. The protocol mirrors the
//! real visibility chain:
//!
//! 1. **expansion** — a server routes an insert that grows a shard's box;
//!    the probe stamps the earliest unsynchronized expansion per shard
//!    (later expansions coalesce into the same pending window, exactly as
//!    the server's dirty map coalesces them into one push).
//! 2. **pushed** — the origin server's sync thread pushes the dirty box to
//!    the global image; the pending window becomes *published*. Only now
//!    can a remote reader observe the expansion.
//! 3. **applied** — another server applies a watch event for that shard
//!    (any image apply after the push reads the merged record and therefore
//!    sees the expansion). The first apply per remote server records
//!    `now − expansion_origin` as one staleness sample.
//!
//! Applies that land while a window is still pending (e.g. worker statistics
//! publishes) are ignored: the record they read predates the expansion.
//! Samples feed a histogram handle (for the exporters) plus a bounded raw
//! ring from which [`StalenessSnapshot::pbs_curve`] derives the empirical
//! PBS curve `P[visible ≤ t]`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::registry::Histogram;

/// Raw samples retained for the PBS curve.
const SAMPLE_CAP: usize = 4096;

struct Published {
    origin: Instant,
    owner: String,
    observers: HashSet<String>,
}

#[derive(Default)]
struct KeyState {
    /// Earliest unsynchronized expansion: `(origin time, origin server)`.
    pending: Option<(Instant, String)>,
    published: Option<Published>,
}

struct ProbeInner {
    keys: HashMap<u64, KeyState>,
    samples: VecDeque<f64>,
    count: u64,
}

/// The probe. Cheap to clone (shared). All methods are off the per-item
/// hot path: they fire only on box expansions, sync pushes, and image
/// applies, so a mutex is fine here.
#[derive(Clone)]
pub struct StalenessProbe {
    inner: Arc<Mutex<ProbeInner>>,
    hist: Histogram,
}

impl StalenessProbe {
    /// A probe recording delay observations into `hist` as well.
    pub fn new(hist: Histogram) -> Self {
        Self {
            inner: Arc::new(Mutex::new(ProbeInner {
                keys: HashMap::new(),
                samples: VecDeque::new(),
                count: 0,
            })),
            hist,
        }
    }

    /// A box-expanding insert for `key` was routed on `owner`.
    pub fn expansion(&self, key: u64, owner: &str) {
        let mut inner = self.inner.lock().unwrap();
        let state = inner.keys.entry(key).or_default();
        if state.pending.is_none() {
            state.pending = Some((Instant::now(), owner.to_string()));
        }
    }

    /// `owner` pushed its dirty box for `key` to the global image.
    pub fn pushed(&self, key: u64, _owner: &str) {
        let mut inner = self.inner.lock().unwrap();
        let Some(state) = inner.keys.get_mut(&key) else { return };
        if let Some((origin, owner)) = state.pending.take() {
            state.published = Some(Published { origin, owner, observers: HashSet::new() });
        }
    }

    /// `server` applied an image update for `key`. Records one staleness
    /// sample per `(published window, remote server)` pair.
    pub fn applied(&self, key: u64, server: &str) {
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap();
        let Some(state) = inner.keys.get_mut(&key) else { return };
        let Some(p) = state.published.as_mut() else { return };
        if p.owner == server || !p.observers.insert(server.to_string()) {
            return;
        }
        let delay = now.duration_since(p.origin).as_secs_f64();
        if inner.samples.len() >= SAMPLE_CAP {
            inner.samples.pop_front();
        }
        inner.samples.push_back(delay);
        inner.count += 1;
        self.hist.observe_ns((delay * 1e9).min(u64::MAX as f64) as u64);
    }

    /// Total staleness samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.lock().unwrap().count
    }

    /// Snapshot the retained samples.
    pub fn snapshot(&self) -> StalenessSnapshot {
        let inner = self.inner.lock().unwrap();
        StalenessSnapshot {
            count: inner.count,
            samples_seconds: inner.samples.iter().copied().collect(),
        }
    }
}

/// Measured staleness at snapshot time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StalenessSnapshot {
    /// Total samples ever recorded (samples beyond the ring are evicted).
    pub count: u64,
    /// Retained expansion-visibility delays, oldest first, in seconds.
    pub samples_seconds: Vec<f64>,
}

impl StalenessSnapshot {
    /// The empirical PBS curve: `points` pairs `(t_seconds, P[visible ≤ t])`
    /// over the retained samples, t swept from 0 to the sample maximum.
    /// Empty when no samples were recorded.
    pub fn pbs_curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.samples_seconds.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut sorted = self.samples_seconds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let max = *sorted.last().unwrap();
        let n = sorted.len() as f64;
        (0..points)
            .map(|i| {
                let t = max * i as f64 / (points - 1).max(1) as f64;
                let visible = sorted.partition_point(|&s| s <= t) as f64;
                (t, visible / n)
            })
            .collect()
    }

    /// Quantile of the retained samples (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples_seconds.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_seconds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round()) as usize;
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_protocol_records_one_sample_per_remote_server() {
        let probe = StalenessProbe::new(Histogram::detached());
        probe.expansion(7, "server-0");
        probe.expansion(7, "server-0"); // coalesces into same window
        // Applies before the push must not count (record predates expansion).
        probe.applied(7, "server-1");
        assert_eq!(probe.count(), 0);
        probe.pushed(7, "server-0");
        probe.applied(7, "server-0"); // self-apply ignored
        probe.applied(7, "server-1");
        probe.applied(7, "server-1"); // repeat apply ignored
        probe.applied(7, "server-2");
        assert_eq!(probe.count(), 2);
        let snap = probe.snapshot();
        assert_eq!(snap.samples_seconds.len(), 2);
        assert!(snap.samples_seconds.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn pbs_curve_is_monotone_cdf() {
        let snap = StalenessSnapshot {
            count: 4,
            samples_seconds: vec![0.01, 0.02, 0.03, 0.5],
        };
        let curve = snap.pbs_curve(11);
        assert_eq!(curve.len(), 11);
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
        assert!((snap.quantile(0.5) - 0.02).abs() < 1e-12 || (snap.quantile(0.5) - 0.03).abs() < 1e-12);
    }
}
