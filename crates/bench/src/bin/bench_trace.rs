//! Causal-tracing overhead guard, recorded to `BENCH_trace.json`.
//!
//! The tracing hot path with sampling disabled is one relaxed load and a
//! branch per client request, and a sampled request (production rate:
//! 1-in-64) amortizes its span recording across the 63 untraced ones. This
//! bench drives ingest and query workloads through one long-lived cluster
//! while rotating the tracer's runtime sample rate between segments —
//! off (0), 1-in-64, and always-on (1) — and compares throughput. The
//! trimmed-mean ingest overhead of 1-in-64 sampling versus off must stay
//! within tolerance (default 3%, `TRACE_OVERHEAD_TOLERANCE` to override);
//! the process exits non-zero otherwise. Always-on numbers are recorded
//! for reference but not gated: tracing every request is a debugging
//! posture, not a production one.
//!
//! Each round runs the three configurations back to back in a rotating
//! order, so the slow throughput decay from tree growth lands on every
//! configuration equally and cancels from the trimmed mean.
//!
//! `--no-run` skips the timing runs and instead smoke-tests the tracing
//! pipeline on a tiny cluster: forces sampling on, runs a workload, and
//! verifies a trace assembles and round-trips through the Perfetto
//! exporter. Used by CI's bench-smoke step.

use std::time::{Duration, Instant};

use volap::{ClientSession, Cluster, VolapConfig};
use volap_bench::{BenchEnv, GateNoise};
use volap_data::DataGen;
use volap_dims::{Item, QueryBox, Schema};
use volap_obs::export;

const ITEMS_PER_SEGMENT: usize = 10_000;
const QUERIES_PER_SEGMENT: usize = 20;
const ROUNDS: usize = 12; // divisible by 3: each config sits in each slot equally
const TRIM: usize = 2;

/// `(inserts/s, queries/s)` for one measurement segment.
fn segment(client: &ClientSession, items: &[Item], q: &QueryBox) -> (f64, f64) {
    let t = Instant::now();
    for item in items {
        client.insert(item).expect("insert");
    }
    let ingest_rate = items.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..QUERIES_PER_SEGMENT {
        client.query(q).expect("query");
    }
    let query_rate = QUERIES_PER_SEGMENT as f64 / t.elapsed().as_secs_f64();
    (ingest_rate, query_rate)
}

fn trimmed_mean(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let kept = &v[TRIM..v.len() - TRIM];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn smoke() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    cfg.trace_sample = 1;
    cfg.trace_slow_threshold = Duration::ZERO;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 23, 1.2);
    client.bulk_insert(gen.items(200)).expect("bulk");
    client.query(&QueryBox::all(&schema)).expect("query");
    let slow = cluster.slow_traces();
    assert!(!slow.is_empty(), "smoke: no trace reached the flight recorder");
    let assembled = slow
        .iter()
        .any(|t| t.root().is_some() && t.spans.iter().any(|s| s.name == "tree_exec"));
    assert!(assembled, "smoke: no trace with a root and tree_exec spans");
    let json = export::traces_to_perfetto(&slow);
    let parsed = export::traces_from_perfetto(&json).expect("smoke: Perfetto parse");
    assert_eq!(parsed, slow, "smoke: Perfetto round trip lost data");
    cluster.shutdown();
    println!(
        "trace smoke OK: {} trace(s) assembled, Perfetto round trip lossless",
        parsed.len()
    );
}

fn main() {
    let env = BenchEnv::setup("bench_trace");
    if env.no_run {
        smoke();
        return;
    }
    let tolerance: f64 = std::env::var("TRACE_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    // The history sampler has its own overhead gate (bench_health); keep
    // its background wakeups out of this subsystem's measurement.
    cfg.history_capacity = 0;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let tracer = cluster.tracer();
    let q = QueryBox::all(&schema);
    let mut gen = DataGen::new(&schema, 29, 1.3);

    // Warm up threads, allocator, and the first tree levels untimed.
    for _ in 0..2 {
        segment(&client, &gen.items(ITEMS_PER_SEGMENT), &q);
    }

    // sample rates measured: off, production 1-in-64, always-on.
    const CONFIGS: [u32; 3] = [0, 64, 1];
    let mut ingest = [Vec::new(), Vec::new(), Vec::new()];
    let mut query = [Vec::new(), Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        for slot in 0..3 {
            let which = (round + slot) % 3;
            tracer.set_sample_every(CONFIGS[which]);
            let (i_rate, q_rate) = segment(&client, &gen.items(ITEMS_PER_SEGMENT), &q);
            ingest[which].push(i_rate);
            query[which].push(q_rate);
        }
        println!(
            "round {round:>2}: ingest off {:>7.0}/s  1-in-64 {:>7.0}/s  always {:>7.0}/s",
            ingest[0][round], ingest[1][round], ingest[2][round]
        );
    }
    tracer.set_sample_every(0);
    cluster.shutdown();

    let ing = [
        trimmed_mean(ingest[0].clone()),
        trimmed_mean(ingest[1].clone()),
        trimmed_mean(ingest[2].clone()),
    ];
    let qry = [
        trimmed_mean(query[0].clone()),
        trimmed_mean(query[1].clone()),
        trimmed_mean(query[2].clone()),
    ];
    let noise = GateNoise::from_rounds(&ingest[1], &ingest[0]);
    let ingest_overhead = (ing[0] - ing[1]) / ing[0];
    let query_overhead = (qry[0] - qry[1]) / qry[0];
    let always_on_overhead = (ing[0] - ing[2]) / ing[0];
    let ok = ingest_overhead <= tolerance;
    println!(
        "ingest: off {:.0}/s  1-in-64 {:.0}/s  always-on {:.0}/s (trimmed means)",
        ing[0], ing[1], ing[2]
    );
    println!(
        "query:  off {:.0}/s  1-in-64 {:.0}/s  always-on {:.0}/s (trimmed means)",
        qry[0], qry[1], qry[2]
    );
    println!(
        "1-in-64 ingest overhead {:.2}% (tolerance {:.0}%) {}",
        ingest_overhead * 100.0,
        tolerance * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    noise.report(ingest_overhead);
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  {},\n  \
         {},\n  \
         \"items_per_segment\": {ITEMS_PER_SEGMENT},\n  \
         \"queries_per_segment\": {QUERIES_PER_SEGMENT},\n  \"rounds\": {ROUNDS},\n  \
         \"ingest_per_s\": {{\"off\": {:.0}, \"one_in_64\": {:.0}, \"always_on\": {:.0}}},\n  \
         \"query_per_s\": {{\"off\": {:.0}, \"one_in_64\": {:.0}, \"always_on\": {:.0}}},\n  \
         \"ingest_overhead_frac_one_in_64\": {ingest_overhead:.4},\n  \
         \"query_overhead_frac_one_in_64\": {query_overhead:.4},\n  \
         \"ingest_overhead_frac_always_on\": {always_on_overhead:.4},\n  \
         {},\n  \
         \"tolerance_frac\": {tolerance},\n  \"within_tolerance\": {ok}\n}}\n",
        env.json_fields(),
        env.headline("ingest_overhead_frac_one_in_64", (ingest_overhead * 1e4).round() / 1e4, false),
        ing[0], ing[1], ing[2], qry[0], qry[1], qry[2],
        noise.json_fragment()
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json");
    if !ok {
        std::process::exit(1);
    }
}
