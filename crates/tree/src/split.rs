//! Shard split planning: the `SplitQuery` / `Split` operations of §III-E.

use volap_dims::{Item, Schema};

/// A hyperplane partitioning a shard into two spatially separated halves.
///
/// `SplitQuery(D_i, B_i)` returns a plan such that the two sides are of
/// approximately equal size; `Split` then partitions the shard's items by
/// [`SplitPlan::side`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlan {
    /// The dimension the hyperplane is orthogonal to.
    pub dim: usize,
    /// Items with `coords[dim] <= threshold` go to the left half.
    pub threshold: u64,
}

impl SplitPlan {
    /// Which side of the hyperplane an item falls on (`false` = left).
    #[inline]
    pub fn side(&self, item: &Item) -> bool {
        item.coords[self.dim] > self.threshold
    }

    /// Plan a median split of `items`: pick the dimension with the widest
    /// normalized spread and cut at its median coordinate, guaranteeing a
    /// non-degenerate split whenever one exists in any dimension.
    ///
    /// Returns `None` for fewer than 2 items or when every item shares the
    /// same coordinates in all dimensions (no hyperplane can separate them).
    pub fn plan_median(schema: &Schema, items: &[Item]) -> Option<Self> {
        if items.len() < 2 {
            return None;
        }
        // Rank candidate dimensions by spread so we can fall back when the
        // median cut would be degenerate (all coordinates equal).
        let mut dims: Vec<(f64, usize)> = (0..schema.dims())
            .map(|d| {
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                for it in items {
                    lo = lo.min(it.coords[d]);
                    hi = hi.max(it.coords[d]);
                }
                let spread = hi.saturating_sub(lo) as f64 / schema.dim(d).ordinal_end() as f64;
                (spread, d)
            })
            .collect();
        dims.sort_by(|a, b| b.0.total_cmp(&a.0));
        for &(spread, d) in &dims {
            if spread == 0.0 {
                break;
            }
            let mut coords: Vec<u64> = items.iter().map(|it| it.coords[d]).collect();
            let mid = coords.len() / 2;
            coords.sort_unstable();
            // Choose the largest threshold strictly below the maximum that
            // is close to the median, so both sides are non-empty.
            let mut t = coords[mid.saturating_sub(1)];
            let max = *coords.last().unwrap();
            if t == max {
                // Median equals max: step down to the largest value < max.
                match coords.iter().rev().find(|&&c| c < max) {
                    Some(&below) => t = below,
                    None => continue, // all equal in this dimension
                }
            }
            return Some(Self { dim: d, threshold: t });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::uniform(2, 2, 16)
    }

    fn item(a: u64, b: u64) -> Item {
        Item::new(vec![a, b], 1.0)
    }

    #[test]
    fn median_split_balances() {
        let s = schema();
        let items: Vec<Item> = (0..100).map(|i| item(i % 256, 7)).collect();
        let plan = SplitPlan::plan_median(&s, &items).unwrap();
        assert_eq!(plan.dim, 0, "dimension 0 has all the spread");
        let right = items.iter().filter(|it| plan.side(it)).count();
        let left = items.len() - right;
        assert!(left > 0 && right > 0);
        assert!((left as i64 - right as i64).abs() <= items.len() as i64 / 4);
    }

    #[test]
    fn skewed_duplicates_still_split() {
        let s = schema();
        // 90 duplicates at the max plus a few below the median.
        let mut items: Vec<Item> = (0..90).map(|_| item(200, 0)).collect();
        items.extend((0..10).map(|i| item(i, 0)));
        let plan = SplitPlan::plan_median(&s, &items).unwrap();
        let right = items.iter().filter(|it| plan.side(it)).count();
        assert!(right > 0 && right < items.len());
    }

    #[test]
    fn identical_items_cannot_split() {
        let s = schema();
        let items: Vec<Item> = (0..10).map(|_| item(5, 5)).collect();
        assert!(SplitPlan::plan_median(&s, &items).is_none());
        assert!(SplitPlan::plan_median(&s, &items[..1]).is_none());
    }

    #[test]
    fn picks_widest_dimension() {
        let s = schema();
        let items: Vec<Item> = (0..50).map(|i| item(i % 4, (i * 5) % 256)).collect();
        let plan = SplitPlan::plan_median(&s, &items).unwrap();
        assert_eq!(plan.dim, 1);
    }
}
