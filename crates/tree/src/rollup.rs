//! Materialized hierarchy-level rollups: partial aggregates per coarse
//! hierarchy cell, so coarse aligned queries never descend to leaves.
//!
//! A [`RollupTable`] lives beside a shard's tree root and keeps one
//! [`Aggregate`] per occupied *cell* of each materialized hierarchy level
//! ℓ: the cell of an item is the tuple of its per-dimension level-ℓ path
//! prefixes (`coord >> remaining_bits(ℓ)`), packed into a single `u128`
//! key. Maintenance is an O(levels) hash update per inserted item —
//! piggybacking on the same insert path that maintains the tree's cached
//! subtree aggregates — and splits, migrations and deserialization rebuild
//! the table naturally because they re-insert items into a fresh store.
//!
//! A query whose box is *aligned* at some materialized level (every
//! dimension's range is a whole number of level-ℓ cells, see
//! [`QueryBox::aligned_at_level`]) is answered exactly by merging the
//! occupied cells inside its prefix ranges — time proportional to the
//! number of occupied coarse cells, independent of item count. Coarse
//! levels must therefore be low-cardinality to win; levels whose total
//! prefix width exceeds [`MAX_CELL_BITS`] are never materialized, and the
//! whole feature is off unless `TreeConfig::rollup_levels > 0`.

use std::collections::HashMap;

use volap_dims::{Aggregate, QueryBox, Schema};
use volap_obs::lock::{LockClass, ObsMutex};

/// Mutex shards per level table, keeping concurrent insert contention low.
const SHARDS: usize = 16;

/// All rollup cell shards across levels share one class; acquisitions are
/// strictly sequential (one shard at a time), never nested.
static ROLLUP_CELL_CLASS: LockClass = LockClass::new("tree.rollup_cell", 56);

/// A level is materialized only when its per-dimension prefixes pack into
/// this many bits — a sanity bound on the worst-case cell count (2^32) and
/// a guarantee the packed key fits `u128` with room to spare.
pub const MAX_CELL_BITS: u32 = 32;

/// Aggregates for every occupied cell of one hierarchy level.
struct LevelTable {
    level: usize,
    /// Per dim: bits below the level (`coord >> rem` is the cell prefix).
    rems: Vec<u32>,
    /// Per dim: bit offset of the prefix within the packed cell key.
    offsets: Vec<u32>,
    /// Per dim: prefix width in bits.
    widths: Vec<u32>,
    cells: Vec<ObsMutex<HashMap<u128, Aggregate>>>,
}

impl LevelTable {
    fn key(&self, coords: &[u64]) -> u128 {
        let mut key = 0u128;
        for (d, &c) in coords.iter().enumerate() {
            key |= ((c >> self.rems[d]) as u128) << self.offsets[d];
        }
        key
    }

    fn shard(key: u128) -> usize {
        let h = (key as u64) ^ ((key >> 64) as u64);
        (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (SHARDS - 1)
    }

    fn add(&self, coords: &[u64], measure: f64) {
        let key = self.key(coords);
        self.cells[Self::shard(key)]
            .lock()
            .entry(key)
            .or_insert_with(Aggregate::empty)
            .add(measure);
    }

    /// Merge every occupied cell whose prefix tuple lies inside the query's
    /// per-dimension prefix ranges. Exact for queries aligned at this level.
    fn answer(&self, q: &QueryBox) -> Aggregate {
        let pranges: Vec<(u64, u64)> = q
            .ranges
            .iter()
            .enumerate()
            .map(|(d, &(lo, hi))| (lo >> self.rems[d], hi >> self.rems[d]))
            .collect();
        let mut agg = Aggregate::empty();
        for shard in &self.cells {
            let map = shard.lock();
            'cells: for (&key, cell) in map.iter() {
                for (d, &(plo, phi)) in pranges.iter().enumerate() {
                    let w = self.widths[d];
                    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                    let p = ((key >> self.offsets[d]) as u64) & mask;
                    if p < plo || p > phi {
                        continue 'cells;
                    }
                }
                agg.merge(cell);
            }
        }
        agg
    }

    /// Occupied cells (observability).
    fn occupied(&self) -> u64 {
        self.cells.iter().map(|s| s.lock().len() as u64).sum()
    }
}

/// Per-shard materialized rollups for hierarchy levels `1..=rollup_levels`.
pub struct RollupTable {
    schema: Schema,
    /// Coarsest first, so a query aligned at several levels uses the one
    /// with the fewest cells.
    levels: Vec<LevelTable>,
}

impl RollupTable {
    /// Materialize levels `1..=max_levels` (clamped to the schema's depth).
    /// Stops at the first level whose packed prefix width exceeds
    /// [`MAX_CELL_BITS`] — deeper levels are strictly wider.
    pub fn new(schema: &Schema, max_levels: usize) -> Self {
        let mut levels = Vec::new();
        for lvl in 1..=max_levels.min(schema.max_depth()) {
            let (mut rems, mut offsets, mut widths) = (Vec::new(), Vec::new(), Vec::new());
            let mut off = 0u32;
            for d in 0..schema.dims() {
                let dim = schema.dim(d);
                let rem = dim.remaining_bits(lvl.min(dim.depth()));
                let w = dim.total_bits() - rem;
                rems.push(rem);
                offsets.push(off);
                widths.push(w);
                off += w;
            }
            if off > MAX_CELL_BITS {
                break;
            }
            levels.push(LevelTable {
                level: lvl,
                rems,
                offsets,
                widths,
                cells: (0..SHARDS).map(|_| ObsMutex::new(&ROLLUP_CELL_CLASS, HashMap::new())).collect(),
            });
        }
        Self { schema: schema.clone(), levels }
    }

    /// True when no level passed the width gate (the table is inert).
    pub fn is_inert(&self) -> bool {
        self.levels.is_empty()
    }

    /// Fold one item into every materialized level.
    pub fn add(&self, coords: &[u64], measure: f64) {
        for lt in &self.levels {
            lt.add(coords, measure);
        }
    }

    /// Answer `q` entirely from the coarsest aligned materialized level.
    /// `None` for unconstrained queries (the root's cached aggregate is
    /// cheaper and already handled) and for boxes not aligned at any
    /// materialized level — those fall through to the tree walk.
    pub fn try_answer(&self, q: &QueryBox) -> Option<Aggregate> {
        if !q.constrains_any(&self.schema) {
            return None;
        }
        let lt = self.levels.iter().find(|lt| q.aligned_at_level(&self.schema, lt.level))?;
        Some(lt.answer(q))
    }

    /// `(level, occupied cells)` per materialized level (observability).
    pub fn level_stats(&self) -> Vec<(usize, u64)> {
        self.levels.iter().map(|lt| (lt.level, lt.occupied())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volap_dims::Item;

    fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
        let mut a = Aggregate::empty();
        for it in items.iter().filter(|it| q.contains_item(it)) {
            a.add(it.measure);
        }
        a
    }

    #[test]
    fn aligned_queries_match_brute_force() {
        let s = Schema::uniform(3, 2, 8); // 6 bits/dim, level-1 cells span 8
        let r = RollupTable::new(&s, 2);
        assert!(!r.is_inert());
        let mut items = Vec::new();
        let mut state = 7u64;
        for i in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let it = Item::new(vec![state % 64, (state >> 13) % 64, (state >> 29) % 64], i as f64);
            r.add(&it.coords, it.measure);
            items.push(it);
        }
        let aligned = [
            vec![(0, 7), (0, 63), (0, 63)],
            vec![(8, 23), (16, 31), (0, 63)],
            vec![(56, 63), (0, 63), (40, 47)],
            vec![(9, 9), (0, 63), (0, 63)], // level-2 (leaf) aligned only
        ];
        for ranges in aligned {
            let q = QueryBox::from_ranges(ranges);
            let got = r.try_answer(&q).expect("aligned query must hit a rollup");
            let want = brute(&items, &q);
            assert_eq!(got.count, want.count);
            assert!((got.sum - want.sum).abs() <= 1e-6 * want.sum.abs().max(1.0));
            if got.count > 0 {
                assert_eq!(got.min, want.min);
                assert_eq!(got.max, want.max);
            }
        }
    }

    #[test]
    fn unaligned_and_unconstrained_queries_fall_through() {
        let s = Schema::uniform(3, 2, 8);
        let r = RollupTable::new(&s, 1);
        r.add(&[1, 2, 3], 1.0);
        assert!(r.try_answer(&QueryBox::all(&s)).is_none(), "root aggregate handles ALL");
        let partial = QueryBox::from_ranges(vec![(3, 12), (0, 63), (0, 63)]);
        assert!(r.try_answer(&partial).is_none(), "partial cells need a tree walk");
    }

    #[test]
    fn wide_schemas_gate_materialization() {
        // tpcds level-1 prefixes total 40 bits > MAX_CELL_BITS.
        let s = Schema::tpcds();
        let r = RollupTable::new(&s, 3);
        assert!(r.is_inert());
        assert!(r.try_answer(&QueryBox::from_paths(
            &s,
            &(0..s.dims()).map(volap_dims::DimPath::root).collect::<Vec<_>>()
        )).is_none());
    }
}
