//! High-velocity ingest: the same cluster loaded twice — once through
//! per-item point inserts and once through the batched pipeline
//! (client-side chunks → one local-image routing pass per chunk →
//! per-shard `BulkInsert`s → worker `insert_batch` run-inserts) —
//! comparing throughput and asserting both runs agree with the generator
//! on every count.
//!
//! (`VolapConfig::ingest_batch` applies the same coalescing server-side
//! for fleets of independent point-insert clients; its correctness is
//! covered by the server integration tests.)
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example high_velocity
//! ```

use std::time::Instant;

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};

fn load(schema: &Schema, chunk: usize, n: usize) -> f64 {
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 4;
    cfg.servers = 2;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();

    let mut gen = DataGen::new(schema, 7, 1.5);
    let items = gen.items(n);
    let t = Instant::now();
    if chunk <= 1 {
        for item in &items {
            while client.insert(item).is_err() {
                // Transient during a shard split; real feeds retry.
                std::thread::yield_now();
            }
        }
    } else {
        for batch in items.chunks(chunk) {
            client.bulk_insert(batch.to_vec()).expect("bulk insert");
        }
    }
    let rate = n as f64 / t.elapsed().as_secs_f64();

    let (all, _) = client.query(&QueryBox::all(schema)).expect("query");
    assert_eq!(all.count, n as u64, "ingest lost or duplicated items");
    cluster.shutdown();
    rate
}

fn main() {
    let schema = Schema::tpcds();
    let n = 40_000;
    println!("loading {n} items, 4 workers / 2 servers");
    let per_item = load(&schema, 1, n);
    println!("  point inserts:        {per_item:.0} items/s");
    let batched = load(&schema, 1024, n);
    println!(
        "  batched (1024/chunk): {batched:.0} items/s ({:.2}x)",
        batched / per_item
    );
    println!("both runs verified: every inserted item counted exactly once");
}
