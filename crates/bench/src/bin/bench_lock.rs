//! Lock-telemetry overhead guard, recorded to `BENCH_lock.json`.
//!
//! Every mutex and rwlock in the cluster is an instrumented wrapper
//! (`volap_obs::lock`): the uncontended fast path with telemetry on is one
//! try-acquire plus one relaxed counter increment, and with telemetry off a
//! single relaxed load and a branch in front of the raw parking_lot
//! acquire. This bench drives ingest and query workloads through one
//! long-lived cluster while toggling `lock::set_telemetry_enabled` between
//! segments and compares throughput. The trimmed-mean ingest overhead of
//! telemetry-on versus telemetry-off must stay within tolerance (default
//! 3%, `LOCK_OVERHEAD_TOLERANCE` to override); the process exits non-zero
//! otherwise (`--check` is accepted and is the same gated run, matching the
//! other bench binaries' CI convention).
//!
//! Each round runs both configurations back to back in a rotating order,
//! so the slow throughput decay from tree growth lands on both equally and
//! cancels from the trimmed mean.
//!
//! `--no-run` skips the timing runs and instead smoke-tests the telemetry
//! pipeline on a tiny cluster: runs a workload and verifies the snapshot's
//! lock-class table accounts for the locks the workload must have taken.

use std::time::Instant;

use volap::{ClientSession, Cluster, VolapConfig};
use volap_bench::{BenchEnv, GateNoise};
use volap_data::DataGen;
use volap_dims::{Item, QueryBox, Schema};
use volap_obs::lock;

const ITEMS_PER_SEGMENT: usize = 8_000;
const QUERIES_PER_SEGMENT: usize = 20;
const ROUNDS: usize = 10; // even: each config sits in each slot equally
const TRIM: usize = 2;

/// `(inserts/s, queries/s)` for one measurement segment.
fn segment(client: &ClientSession, items: &[Item], q: &QueryBox) -> (f64, f64) {
    let t = Instant::now();
    for item in items {
        client.insert(item).expect("insert");
    }
    let ingest_rate = items.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..QUERIES_PER_SEGMENT {
        client.query(q).expect("query");
    }
    let query_rate = QUERIES_PER_SEGMENT as f64 / t.elapsed().as_secs_f64();
    (ingest_rate, query_rate)
}

fn trimmed_mean(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let kept = &v[TRIM..v.len() - TRIM];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn smoke() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 23, 1.2);
    client.bulk_insert(gen.items(200)).expect("bulk");
    client.query(&QueryBox::all(&schema)).expect("query");
    let snap = cluster.snapshot();
    cluster.shutdown();
    for class in ["server.index", "worker.slot_state", "tree.node", "net.pending"] {
        let l = snap
            .lock_class(class)
            .unwrap_or_else(|| panic!("smoke: lock class {class} missing from snapshot"));
        assert!(l.acquisitions > 0, "smoke: {class} recorded no acquisitions");
    }
    assert_eq!(
        snap.counter("volap_lock_order_violations_total"),
        0,
        "smoke: lock-order violations recorded on a clean workload"
    );
    println!(
        "lock smoke OK: {} classes in the table, no order violations",
        snap.locks.len()
    );
}

fn main() {
    let env = BenchEnv::setup("bench_lock");
    if env.no_run {
        smoke();
        return;
    }
    let tolerance: f64 = std::env::var("LOCK_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    // The history sampler has its own overhead gate (bench_health); keep
    // its background wakeups out of this subsystem's measurement.
    cfg.history_capacity = 0;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let q = QueryBox::all(&schema);
    let mut gen = DataGen::new(&schema, 29, 1.3);

    // Warm up threads, allocator, and the first tree levels untimed.
    for _ in 0..2 {
        segment(&client, &gen.items(ITEMS_PER_SEGMENT), &q);
    }

    // Telemetry on (the shipped default) vs off (raw parking_lot + one
    // relaxed load per acquisition).
    const CONFIGS: [bool; 2] = [true, false];
    let mut ingest = [Vec::new(), Vec::new()];
    let mut query = [Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        for slot in 0..2 {
            let which = (round + slot) % 2;
            lock::set_telemetry_enabled(CONFIGS[which]);
            let (i_rate, q_rate) = segment(&client, &gen.items(ITEMS_PER_SEGMENT), &q);
            ingest[which].push(i_rate);
            query[which].push(q_rate);
        }
        println!(
            "round {round:>2}: ingest on {:>7.0}/s  off {:>7.0}/s",
            ingest[0][round], ingest[1][round]
        );
    }
    lock::set_telemetry_enabled(true);
    cluster.shutdown();

    let noise = GateNoise::from_rounds(&ingest[0], &ingest[1]);
    let ing = [trimmed_mean(ingest[0].clone()), trimmed_mean(ingest[1].clone())];
    let qry = [trimmed_mean(query[0].clone()), trimmed_mean(query[1].clone())];
    let ingest_overhead = (ing[1] - ing[0]) / ing[1];
    let query_overhead = (qry[1] - qry[0]) / qry[1];
    let ok = ingest_overhead <= tolerance;
    println!("ingest: on {:.0}/s  off {:.0}/s (trimmed means)", ing[0], ing[1]);
    println!("query:  on {:.0}/s  off {:.0}/s (trimmed means)", qry[0], qry[1]);
    println!(
        "telemetry ingest overhead {:.2}% (tolerance {:.0}%) {}",
        ingest_overhead * 100.0,
        tolerance * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    noise.report(ingest_overhead);
    let json = format!(
        "{{\n  \"bench\": \"lock_overhead\",\n  {},\n  \
         {},\n  \
         \"items_per_segment\": {ITEMS_PER_SEGMENT},\n  \
         \"queries_per_segment\": {QUERIES_PER_SEGMENT},\n  \"rounds\": {ROUNDS},\n  \
         \"ingest_per_s\": {{\"telemetry_on\": {:.0}, \"telemetry_off\": {:.0}}},\n  \
         \"query_per_s\": {{\"telemetry_on\": {:.0}, \"telemetry_off\": {:.0}}},\n  \
         \"ingest_overhead_frac\": {ingest_overhead:.4},\n  \
         \"query_overhead_frac\": {query_overhead:.4},\n  \
         {},\n  \
         \"tolerance_frac\": {tolerance},\n  \"within_tolerance\": {ok}\n}}\n",
        env.json_fields(),
        env.headline("ingest_overhead_frac", (ingest_overhead * 1e4).round() / 1e4, false),
        ing[0], ing[1], qry[0], qry[1],
        noise.json_fragment()
    );
    std::fs::write("BENCH_lock.json", &json).expect("write BENCH_lock.json");
    println!("wrote BENCH_lock.json");
    if !ok {
        std::process::exit(1);
    }
}
