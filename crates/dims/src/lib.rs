//! Dimension hierarchies and hierarchical geometry for VOLAP.
//!
//! VOLAP (Dehne et al., CLUSTER 2016) treats every data item as a point in a
//! `d`-dimensional space where each dimension is a **hierarchy** (Figure 1 of
//! the paper: Store → Country → State → City, Date → Year → Month → Day, …).
//! Queries name a value at *any* level of each hierarchy and aggregate every
//! item underneath.
//!
//! This crate provides the vocabulary shared by the tree, data and system
//! layers:
//!
//! * [`Schema`] — the dimension hierarchies: level names, fanouts and the bit
//!   layout that maps a full hierarchical path to a compact *leaf ordinal*
//!   per dimension. A hierarchy prefix always owns a contiguous, power-of-two
//!   aligned ordinal range, which is what makes boxes and Hilbert mappings
//!   work.
//! * [`DimPath`] — a hierarchical ID: a path from a dimension's root to some
//!   level.
//! * [`Item`] — a data item: one leaf ordinal per dimension plus a measure.
//! * [`Aggregate`] — the cached aggregate stored in every tree node
//!   (count / sum / min / max).
//! * [`QueryBox`] — an aggregate query region: one ordinal range per
//!   dimension, built from hierarchy prefixes.
//! * [`Mbr`] / [`Mds`] — the two key types of the PDC-tree family: Minimum
//!   Bounding Rectangle (one box) and Minimum Describing Subset (multiple
//!   hierarchy-aligned boxes per dimension), both implementing [`Key`].
//! * [`HilbertMapper`] — the Figure-3 transformation: per-level bit expansion
//!   of hierarchical IDs followed by a compact Hilbert index.

pub mod agg;
pub mod expand;
pub mod item;
pub mod key;
pub mod mbr;
pub mod mds;
pub mod path;
pub mod query;
pub mod schema;

pub use agg::Aggregate;
pub use expand::HilbertMapper;
pub use item::Item;
pub use key::Key;
pub use mbr::Mbr;
pub use mds::Mds;
pub use path::DimPath;
pub use query::QueryBox;
pub use schema::{DimensionDef, LevelDef, Schema};
