//! Continuous-telemetry sampler overhead guard, recorded to
//! `BENCH_health.json`.
//!
//! The history sampler captures one frame per interval on its own thread:
//! the ingest hot path itself is untouched (the sampler only *reads* the
//! registry's relaxed atomics), so the only possible costs are cache-line
//! bouncing on the counters the workload is writing and the registry slot
//! mutex the sampler briefly holds. This bench drives a per-item ingest
//! workload through one long-lived cluster whose sampler runs at an
//! aggressive 10 ms interval (25× the shipped 250 ms default) while
//! toggling the ring's runtime kill switch between segments, and compares
//! items/sec. The trimmed-mean overhead of sampling-on versus off must
//! stay within tolerance (default 1%, `HEALTH_OVERHEAD_TOLERANCE` to
//! override); the process exits non-zero otherwise (`--check` is accepted
//! and is the same gated run, matching the other bench binaries).
//!
//! Each round runs both configurations back to back in a rotating order,
//! so the slow throughput decay from tree growth lands on both equally and
//! cancels from the trimmed mean.
//!
//! `--no-run` skips the timing runs and instead smoke-tests the telemetry
//! pipeline on a tiny cluster: waits a few sampler intervals, then checks
//! frames captured, the ring validates, per-frame insert deltas sum to the
//! live counter totals, and the watchdog reports every default rule.

use std::time::{Duration, Instant};

use volap::{ClientSession, Cluster, VolapConfig};
use volap_bench::{BenchEnv, GateNoise};
use volap_dims::{Item, Schema};

const ITEMS_PER_SEGMENT: usize = 8_000;
const ROUNDS: usize = 10; // even: each config sits in each slot equally
const TRIM: usize = 2;

fn segment(client: &ClientSession, items: &[Item]) -> f64 {
    let t = Instant::now();
    for item in items {
        client.insert(item).expect("insert");
    }
    items.len() as f64 / t.elapsed().as_secs_f64()
}

fn trimmed_mean(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let kept = &v[TRIM..v.len() - TRIM];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn smoke() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    cfg.history_interval = Duration::from_millis(10);
    cfg.history_capacity = 512;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = volap_data::DataGen::new(&schema, 23, 1.2);
    client.bulk_insert(gen.items(500)).expect("bulk");
    // Give the sampler a few intervals to frame the activity.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let hist = cluster.history();
        if hist.frames.len() >= 3
            && hist.delta_sum_all_labels("volap_server_inserts_total") >= 500.0
        {
            break;
        }
        assert!(Instant::now() < deadline, "smoke: sampler produced no usable frames");
        std::thread::sleep(Duration::from_millis(10));
    }
    let hist = cluster.history();
    hist.validate().expect("smoke: history ring failed validation");
    let health = cluster.health();
    assert!(
        health.len() >= volap::HealthRule::defaults().len(),
        "smoke: watchdog dropped rules"
    );
    cluster.shutdown();
    println!(
        "health smoke OK: {} frames captured, {} series, {} health rules evaluated",
        hist.frames.len(),
        hist.series.len(),
        health.len()
    );
}

fn main() {
    let env = BenchEnv::setup("bench_health");
    if env.no_run {
        smoke();
        return;
    }
    let tolerance: f64 = std::env::var("HEALTH_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    // 25x the shipped sampling rate, so a pass here bounds the default
    // configuration's overhead far below the gate.
    cfg.history_interval = Duration::from_millis(10);
    cfg.history_capacity = 1024;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let history = cluster.obs().history().clone();
    let mut gen = volap_data::DataGen::new(&schema, 29, 1.3);

    // Warm up threads, allocator, and the first tree levels untimed.
    for _ in 0..2 {
        segment(&client, &gen.items(ITEMS_PER_SEGMENT));
    }

    // Sampling on (kill switch armed, frames captured every 10 ms) vs off
    // (sampler thread still wakes, capture returns after one relaxed load).
    const CONFIGS: [bool; 2] = [true, false];
    let mut ingest = [Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        for slot in 0..2 {
            let which = (round + slot) % 2;
            history.set_enabled(CONFIGS[which]);
            ingest[which].push(segment(&client, &gen.items(ITEMS_PER_SEGMENT)));
        }
        println!(
            "round {round:>2}: ingest on {:>7.0}/s  off {:>7.0}/s",
            ingest[0][round], ingest[1][round]
        );
    }
    history.set_enabled(true);
    let frames_captured = cluster.history().frames.len();
    cluster.shutdown();

    let noise = GateNoise::from_rounds(&ingest[0], &ingest[1]);
    let ing = [trimmed_mean(ingest[0].clone()), trimmed_mean(ingest[1].clone())];
    let overhead = (ing[1] - ing[0]) / ing[1];
    let ok = overhead <= tolerance;
    println!("ingest: on {:.0}/s  off {:.0}/s (trimmed means)", ing[0], ing[1]);
    println!(
        "sampler ingest overhead {:.2}% (tolerance {:.0}%) {}",
        overhead * 100.0,
        tolerance * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    noise.report(overhead);
    let json = format!(
        "{{\n  \"bench\": \"health_overhead\",\n  {},\n  \
         {},\n  \
         \"items_per_segment\": {ITEMS_PER_SEGMENT},\n  \"rounds\": {ROUNDS},\n  \
         \"sampler_interval_ms\": 10,\n  \"frames_captured\": {frames_captured},\n  \
         \"ingest_per_s\": {{\"sampler_on\": {:.0}, \"sampler_off\": {:.0}}},\n  \
         \"ingest_overhead_frac\": {overhead:.4},\n  \
         {},\n  \
         \"tolerance_frac\": {tolerance},\n  \"within_tolerance\": {ok}\n}}\n",
        env.json_fields(),
        env.headline("ingest_overhead_frac", (overhead * 1e4).round() / 1e4, false),
        ing[0], ing[1],
        noise.json_fragment()
    );
    std::fs::write("BENCH_health.json", &json).expect("write BENCH_health.json");
    println!("wrote BENCH_health.json");
    if !ok {
        std::process::exit(1);
    }
}
