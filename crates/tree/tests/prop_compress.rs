//! Property tests for the compressed columnar scan kernels: a
//! dictionary/bit-packed leaf answers every query bit-identically to the
//! same rows scanned raw, at every cardinality the encoder can choose, and
//! a whole tree built with `column_compression` on agrees with one built
//! with it off across splits.

use proptest::prelude::*;
use volap_dims::{Aggregate, Item, QueryBox, Schema};
use volap_tree::{build_store, LeafColumns, StoreKind, TreeConfig};

/// Rows over a bounded value domain plus query bounds drawn from twice that
/// domain — so bounds land on dictionary entries, between them, and entirely
/// outside (all-match and no-match shapes arise naturally). Small
/// cardinalities take narrow packed widths; `card = 300` usually fails the
/// encoder's pay-off heuristic on short leaves and stays raw — the scan must
/// be correct either way.
#[allow(clippy::type_complexity)]
fn rows_and_queries() -> impl Strategy<Value = (Vec<(Vec<u64>, f64)>, Vec<Vec<(u64, u64)>>)> {
    (1usize..=3).prop_flat_map(|c| {
        let card = [4u64, 16, 300][c - 1];
        (
            prop::collection::vec(((0..card, 0..card), 0u32..1000), 1..300),
            prop::collection::vec(
                prop::collection::vec((0..card * 2, 0..card * 2), 2),
                1..5,
            ),
        )
            .prop_map(|(raw, qs)| {
                (
                    raw.into_iter().map(|((a, b), m)| (vec![a, b], m as f64)).collect(),
                    qs.into_iter()
                        .map(|q| {
                            q.into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect()
                        })
                        .collect(),
                )
            })
    })
}

fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
    let mut a = Aggregate::empty();
    for it in items.iter().filter(|it| q.contains_item(it)) {
        a.add(it.measure);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The packed kernel is bit-for-bit the raw kernel: same rows, same
    /// query, identical `Aggregate` (f64 sums included — both kernels visit
    /// rows in index order).
    #[test]
    fn encoded_scan_equals_raw_scan((rows, queries) in rows_and_queries()) {
        let mut raw = LeafColumns::new(2);
        for (coords, m) in &rows {
            raw.push_row(coords, *m);
        }
        let mut packed = raw.clone();
        packed.encode();
        let edge_shapes = vec![
            vec![(0, u64::MAX), (0, u64::MAX)],        // all rows match
            vec![(u64::MAX, u64::MAX), (0, u64::MAX)], // no row matches
        ];
        for ranges in queries.into_iter().chain(edge_shapes) {
            let q = QueryBox::from_ranges(ranges);
            let (mut a, mut b) = (Aggregate::empty(), Aggregate::empty());
            raw.scan(&q, &mut a);
            packed.scan(&q, &mut b);
            prop_assert_eq!(a, b, "packed scan diverged for {:?}", &q.ranges);
        }
    }

    /// A tree with compression on answers every query exactly like one with
    /// compression off, through enough inserts to force node splits (which
    /// re-encode the halves).
    #[test]
    fn compressed_tree_equals_plain_tree(
        raw in prop::collection::vec((prop::collection::vec(0u64..16, 3), 0u32..100), 1..250),
        queries in prop::collection::vec(prop::collection::vec((0u64..16, 0u64..16), 3), 1..6),
    ) {
        let schema = Schema::uniform(3, 2, 4);
        let items: Vec<Item> =
            raw.into_iter().map(|(c, m)| Item::new(c, m as f64)).collect();
        let build = |compress: bool| {
            let cfg = TreeConfig {
                leaf_cap: 8,
                dir_cap: 4,
                column_compression: compress,
                ..TreeConfig::default()
            };
            let store = build_store(StoreKind::HilbertPdcMds, &schema, &cfg);
            for it in &items {
                store.insert(it);
            }
            store
        };
        let on = build(true);
        let off = build(false);
        for ranges in queries {
            let ranges: Vec<(u64, u64)> =
                ranges.into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect();
            let q = QueryBox::from_ranges(ranges);
            let a = on.query(&q);
            let b = off.query(&q);
            let want = brute(&items, &q);
            prop_assert_eq!(a, b, "compression changed a query result");
            prop_assert_eq!(a.count, want.count);
            prop_assert!((a.sum - want.sum).abs() < 1e-6);
        }
    }
}
