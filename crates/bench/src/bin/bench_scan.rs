//! Compressed-scan and rollup benchmark, recorded to `BENCH_scan.json`.
//!
//! Two measurements back the PR-6 acceptance criteria:
//!
//! 1. **packed vs raw**: the same 500 k-row leaf column set scanned through
//!    the chunked bitmask kernel twice — once with raw `Vec<u64>` columns,
//!    once dictionary/bit-packed — over a batch of partial-selectivity
//!    queries. Aggregates must match bit-exactly; the packed scan should be
//!    faster because each 64-row window touches a fraction of the bytes.
//! 2. **rollup vs leaf scan**: level-aligned coarse queries against a
//!    500 k-item tree with `rollup_levels = 1` (answered from the
//!    materialized cells, `rollup_hits = 1`) vs the identical tree without
//!    rollups (full traversal).
//!
//! `--check` turns the run into a CI gate with thresholds deliberately
//! softer than the acceptance numbers so shared-runner noise does not flake
//! the build; `--threads N` sizes the global pool (the scans here are
//! single-threaded, but the knob keeps the bench bins uniform).

use std::time::Instant;

use volap_data::DataGen;
use volap_dims::{Aggregate, Mds, QueryBox, Schema};
use volap_tree::serial::bulk_load;
use volap_tree::{ColumnStats, ConcurrentTree, InsertPolicy, LeafColumns, TreeConfig};

use volap_bench::BenchEnv;

const ROWS: usize = 500_000;
const ROUNDS: usize = 5;

/// Best-of-rounds wall time for one full query batch over `leaf`, plus the
/// per-query aggregates (for cross-checking raw vs packed).
fn scan_batch(leaf: &LeafColumns, queries: &[QueryBox]) -> (Vec<Aggregate>, f64) {
    let mut aggs = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let mut round = Vec::with_capacity(queries.len());
        let t = Instant::now();
        for q in queries {
            let mut agg = Aggregate::empty();
            leaf.scan(q, &mut agg);
            round.push(agg);
        }
        best = best.min(t.elapsed().as_secs_f64());
        aggs = round;
    }
    (aggs, best)
}

/// Part 1: identical data, raw vs dictionary-packed columns.
fn bench_packed_vs_raw() -> (f64, f64, ColumnStats) {
    // 16 distinct values per dimension: packs at 4 bits/value, the shape the
    // encoder is built for (dimension ordinals are low-cardinality by
    // construction in OLAP hierarchies).
    let dims = 4;
    let mut raw = LeafColumns::new(dims);
    let mut state = 0x5EED5EED5EEDu64;
    let mut coords = vec![0u64; dims];
    for i in 0..ROWS {
        for c in coords.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *c = (state >> 33) % 16;
        }
        raw.push_row(&coords, (i % 100) as f64);
    }
    let mut packed = raw.clone();
    packed.encode();
    let mut stats = ColumnStats::default();
    packed.column_stats(&mut stats);
    assert!(stats.dict_columns == dims as u64, "bench data must dictionary-encode");

    // Partial selectivities only: an all-match dimension short-circuits to
    // the dropped-predicate fast path on the packed side, which would flatter
    // the comparison.
    let queries: Vec<QueryBox> = vec![
        QueryBox::from_ranges(vec![(0, 7), (0, 14), (0, 14), (0, 14)]),
        QueryBox::from_ranges(vec![(3, 12), (2, 13), (1, 14), (0, 14)]),
        QueryBox::from_ranges(vec![(5, 5), (7, 8), (0, 14), (0, 14)]),
        QueryBox::from_ranges(vec![(0, 14), (0, 14), (0, 14), (15, 15)]),
    ];
    let (raw_aggs, raw_s) = scan_batch(&raw, &queries);
    let (packed_aggs, packed_s) = scan_batch(&packed, &queries);
    for (i, (a, b)) in raw_aggs.iter().zip(&packed_aggs).enumerate() {
        assert_eq!(a, b, "query {i}: packed scan diverged from raw scan");
    }
    let mrows = |secs: f64| (ROWS * queries.len()) as f64 / secs / 1e6;
    (mrows(raw_s), mrows(packed_s), stats)
}

/// Best-of-rounds per-query microseconds for `queries` against `tree`.
fn tree_batch(tree: &ConcurrentTree<Mds>, queries: &[QueryBox]) -> (Vec<Aggregate>, f64) {
    let mut aggs = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let mut round = Vec::with_capacity(queries.len());
        let t = Instant::now();
        for q in queries {
            round.push(tree.query(q));
        }
        best = best.min(t.elapsed().as_secs_f64());
        aggs = round;
    }
    (aggs, best * 1e6 / queries.len() as f64)
}

/// Part 2: level-aligned coarse queries, rollup-answered vs leaf-scanned.
fn bench_rollup_vs_leafscan() -> (f64, f64) {
    // 9 bits per dimension, 3 levels of fanout 8: level-1 cells span 64
    // ordinals, so level-aligned ranges are multiples of 64.
    let schema = Schema::uniform(3, 3, 8);
    let mut gen = DataGen::new(&schema, 17, 1.2);
    let items = gen.items(ROWS);
    let build = |levels: usize| {
        let cfg = TreeConfig { rollup_levels: levels, ..TreeConfig::default() };
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, cfg);
        bulk_load(&tree, items.clone());
        tree
    };
    let with_rollup = build(1);
    let without = build(0);

    let queries: Vec<QueryBox> = vec![
        QueryBox::from_ranges(vec![(0, 63), (0, 511), (0, 511)]),
        QueryBox::from_ranges(vec![(64, 127), (0, 511), (64, 447)]),
        QueryBox::from_ranges(vec![(0, 255), (256, 511), (0, 511)]),
        QueryBox::from_ranges(vec![(128, 191), (64, 127), (0, 63)]),
    ];
    for q in &queries {
        let (_, trace) = with_rollup.query_traced(q);
        assert_eq!(trace.rollup_hits, 1, "query {:?} must be rollup-answered", q.ranges);
    }
    let (roll_aggs, rollup_us) = tree_batch(&with_rollup, &queries);
    let (leaf_aggs, leaf_us) = tree_batch(&without, &queries);
    for (i, (a, b)) in roll_aggs.iter().zip(&leaf_aggs).enumerate() {
        assert_eq!(a.count, b.count, "query {i}: rollup count diverged");
        assert!((a.sum - b.sum).abs() < 1e-6 * a.sum.abs().max(1.0), "query {i}: sum diverged");
    }
    (rollup_us, leaf_us)
}

fn main() {
    let env = BenchEnv::setup("bench_scan");
    let (cores, threads, check) = (env.cores, env.threads, env.check);
    println!("# scan_packed_and_rollup ({cores} cores, {threads} threads, best of {ROUNDS})");

    let (raw_mrows, packed_mrows, stats) = bench_packed_vs_raw();
    let packed_speedup = packed_mrows / raw_mrows;
    println!(
        "packed-vs-raw: raw {raw_mrows:.1} Mrows/s, packed {packed_mrows:.1} Mrows/s \
         ({packed_speedup:.2}x), {:.1} bits/value, {:.2}x compression",
        stats.bits_per_value(),
        stats.ratio()
    );

    let (rollup_us, leaf_us) = bench_rollup_vs_leafscan();
    let rollup_speedup = leaf_us / rollup_us;
    println!(
        "rollup-vs-leafscan: rollup {rollup_us:.1} us/query, leaf scan {leaf_us:.1} us/query \
         ({rollup_speedup:.1}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"scan_packed_and_rollup\",\n  \"cores\": {cores},\n  \
         \"threads\": {threads},\n  {},\n  \"rows\": {ROWS},\n  \"results\": {{\n    \
         \"raw_mrows_per_s\": {raw_mrows:.1},\n    \
         \"packed_mrows_per_s\": {packed_mrows:.1},\n    \
         \"packed_speedup\": {packed_speedup:.3},\n    \
         \"bits_per_value\": {:.1},\n    \
         \"compression_ratio\": {:.2},\n    \
         \"rollup_us_per_query\": {rollup_us:.1},\n    \
         \"leafscan_us_per_query\": {leaf_us:.1},\n    \
         \"rollup_speedup\": {rollup_speedup:.1}\n  }}\n}}\n",
        env.headline("packed_mrows_per_s", (packed_mrows * 10.0).round() / 10.0, true),
        stats.bits_per_value(),
        stats.ratio()
    );
    std::fs::write("BENCH_scan.json", &json).expect("write BENCH_scan.json");
    println!("wrote BENCH_scan.json");

    if check {
        // Softer than the acceptance numbers (1.3x / 5x) so a noisy shared
        // runner does not flake CI; a real regression still trips them.
        let mut failed = false;
        if packed_speedup < 1.1 {
            eprintln!("CHECK FAILED: packed scan speedup {packed_speedup:.2}x < 1.1x");
            failed = true;
        }
        if rollup_speedup < 3.0 {
            eprintln!("CHECK FAILED: rollup speedup {rollup_speedup:.1}x < 3x");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: packed {packed_speedup:.2}x >= 1.1x, rollup {rollup_speedup:.1}x >= 3x");
    }
}
