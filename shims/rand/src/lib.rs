//! Offline shim for the `rand` crate.
//!
//! Provides [`Rng`] / [`SeedableRng`] and [`rngs::StdRng`] with the methods
//! the workspace generators use: `gen::<f64>()`, `gen::<bool>()`, integer
//! draws, and `gen_range` over half-open and inclusive integer ranges.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64. The bit streams
//! do **not** match upstream `rand 0.8` (the workspace only relies on
//! determinism per seed and reasonable uniformity, both of which hold), so
//! seeded data sets are stable across runs of this repo but would change if
//! the real crate were restored.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructor, like `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core + convenience random methods, like `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draw a value of a supported type (`f64` in [0,1), full-range ints,
    /// `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from an integer range; panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types drawable via [`Rng::gen`], like `rand::distributions::Standard`.
pub trait Standard {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    // Full-width range: every u64 is a valid draw.
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u16, u32, u64, usize);

/// Uniform draw in `[0, span)` using Lemire-style rejection to avoid modulo
/// bias.
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (see module docs for the caveat
    /// that streams differ from upstream `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=4);
            assert!(v == 3 || v == 4);
        }
        assert_eq!(rng.gen_range(9u64..10), 9);
        assert_eq!(rng.gen_range(5usize..=5), 5);
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        let expect = n as f64 / 16.0;
        for (i, &b) in buckets.iter().enumerate() {
            let ratio = b as f64 / expect;
            assert!(
                (0.95..1.05).contains(&ratio),
                "bucket {i} ratio {ratio} outside 5%"
            );
        }
    }
}
