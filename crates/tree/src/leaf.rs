//! Columnar leaf storage and the branch-free containment-scan kernel.
//!
//! Leaves keep their items in structure-of-arrays form: one contiguous
//! `Vec<u64>` per dimension plus a parallel measure column. The containment
//! test against a query box then runs dimension-major over 64-row chunks,
//! combining per-dimension range checks into a `u64` bitmask with no
//! data-dependent branches in the inner loop — the shape LLVM autovectorizes
//! — and bails out of a chunk as soon as its mask goes to zero.

use volap_dims::{Aggregate, Item, QueryBox};
use volap_hilbert::BigIndex;

use crate::tree::Entry;

/// Rows of a leaf node in column-major layout.
///
/// Invariant: every column (and `hkeys`) has the same length. Under a
/// Hilbert insert policy every row has `Some` hkey and rows are kept sorted
/// by it; under the geometric policy every hkey is `None`.
pub(crate) struct LeafColumns {
    /// `cols[d][i]` is the coordinate of row `i` along dimension `d`.
    cols: Vec<Vec<u64>>,
    /// `measures[i]` is the measure of row `i`.
    measures: Vec<f64>,
    /// Compact Hilbert key per row (`None` under the geometric policy).
    hkeys: Vec<Option<BigIndex>>,
}

impl LeafColumns {
    pub fn new(dims: usize) -> Self {
        Self { cols: vec![Vec::new(); dims], measures: Vec::new(), hkeys: Vec::new() }
    }

    pub fn from_entries(dims: usize, entries: Vec<Entry>) -> Self {
        let mut out = Self {
            cols: vec![Vec::with_capacity(entries.len()); dims],
            measures: Vec::with_capacity(entries.len()),
            hkeys: Vec::with_capacity(entries.len()),
        };
        for e in entries {
            out.push(e);
        }
        out
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// Append a row.
    pub fn push(&mut self, e: Entry) {
        debug_assert_eq!(e.coords.len(), self.cols.len());
        for (col, &c) in self.cols.iter_mut().zip(e.coords.iter()) {
            col.push(c);
        }
        self.measures.push(e.measure);
        self.hkeys.push(e.hkey);
    }

    /// Insert a row at `pos`, shifting later rows (leaves are small, so the
    /// per-column shift is cheap and keeps Hilbert order intact).
    pub fn insert(&mut self, pos: usize, e: Entry) {
        debug_assert_eq!(e.coords.len(), self.cols.len());
        for (col, &c) in self.cols.iter_mut().zip(e.coords.iter()) {
            col.insert(pos, c);
        }
        self.measures.insert(pos, e.measure);
        self.hkeys.insert(pos, e.hkey);
    }

    /// First index whose hkey is strictly greater than `h` (Hilbert insert
    /// position).
    pub fn hkey_partition_point(&self, h: &BigIndex) -> usize {
        self.hkeys.partition_point(|k| k.as_ref().is_some_and(|k| k <= h))
    }

    /// Insert a run of items pre-sorted by Hilbert key (`keyed` pairs each
    /// key with its index into `items`), equivalent to inserting them one by
    /// one. The search for each insert position resumes after the previous
    /// one, and keys falling between the same pair of existing rows are
    /// spliced into each column in one contiguous group instead of one
    /// element-shifting insert per row. Keys are moved out of `keyed`
    /// (batch-insert leaves never recompute them).
    ///
    /// Only meaningful under a Hilbert policy: every existing row must
    /// already carry a key.
    pub fn insert_run(&mut self, items: &[Item], keyed: &mut [(BigIndex, u32)]) {
        debug_assert!(keyed.windows(2).all(|w| w[0].0 <= w[1].0), "run must be sorted");
        debug_assert!(self.hkeys.iter().all(|k| k.is_some()), "run insert into keyless leaf");
        let mut pos = 0;
        let mut i = 0;
        while i < keyed.len() {
            let h = &keyed[i].0;
            pos += self.hkeys[pos..].partition_point(|k| k.as_ref().is_some_and(|k| k <= h));
            // Everything strictly below the existing row at `pos` lands in
            // this same gap (appending at the end takes the whole tail).
            let group_end = match self.hkeys.get(pos).and_then(|k| k.as_ref()) {
                None => keyed.len(),
                Some(ex) => {
                    let mut j = i + 1;
                    while j < keyed.len() && keyed[j].0 < *ex {
                        j += 1;
                    }
                    j
                }
            };
            let group = i..group_end;
            for (d, col) in self.cols.iter_mut().enumerate() {
                col.splice(pos..pos, keyed[group.clone()].iter().map(|&(_, r)| items[r as usize].coords[d]));
            }
            self.measures
                .splice(pos..pos, keyed[group.clone()].iter().map(|&(_, r)| items[r as usize].measure));
            self.hkeys
                .splice(pos..pos, keyed[group.clone()].iter_mut().map(|(k, _)| Some(std::mem::take(k))));
            pos += group_end - i;
            i = group_end;
        }
    }

    pub fn hkey(&self, i: usize) -> Option<&BigIndex> {
        self.hkeys[i].as_ref()
    }

    /// Copy rows `r` into a fresh column set — the Hilbert split path, which
    /// duplicates each side with a handful of column memcpys instead of one
    /// interchange [`Entry`] (and its boxed coords) per row.
    pub fn clone_range(&self, r: std::ops::Range<usize>) -> Self {
        Self {
            cols: self.cols.iter().map(|c| c[r.clone()].to_vec()).collect(),
            measures: self.measures[r.clone()].to_vec(),
            hkeys: self.hkeys[r.clone()].to_vec(),
        }
    }

    /// Overwrite `item` with row `i` (reusing its coordinate buffer).
    pub fn read_row_into(&self, i: usize, item: &mut Item) {
        debug_assert_eq!(item.coords.len(), self.cols.len());
        for (slot, col) in item.coords.iter_mut().zip(self.cols.iter()) {
            *slot = col[i];
        }
        item.measure = self.measures[i];
    }

    /// Rebuild row `i` as an interchange [`Entry`].
    pub fn entry(&self, i: usize) -> Entry {
        Entry {
            coords: self.cols.iter().map(|col| col[i]).collect(),
            measure: self.measures[i],
            hkey: self.hkeys[i].clone(),
        }
    }

    /// All rows as interchange entries (split path).
    pub fn to_entries(&self) -> Vec<Entry> {
        (0..self.len()).map(|i| self.entry(i)).collect()
    }

    pub fn item(&self, i: usize) -> Item {
        Item { coords: self.cols.iter().map(|col| col[i]).collect(), measure: self.measures[i] }
    }

    pub fn append_items(&self, out: &mut Vec<Item>) {
        out.extend((0..self.len()).map(|i| self.item(i)));
    }

    /// Aggregate every row contained in `q` into `agg`.
    ///
    /// Processes 64 rows at a time: each dimension contributes a range-check
    /// bitmask (bit `i` set iff row `base + i` is in range on that
    /// dimension), masks are ANDed dimension-major, and a chunk whose mask
    /// reaches zero skips its remaining dimensions. Only rows surviving all
    /// dimensions touch the measure column.
    pub fn scan(&self, q: &QueryBox, agg: &mut Aggregate) {
        let n = self.len();
        debug_assert_eq!(q.ranges.len(), self.cols.len());
        let mut base = 0;
        while base < n {
            let chunk = (n - base).min(64);
            let mut mask: u64 = if chunk == 64 { u64::MAX } else { (1u64 << chunk) - 1 };
            for (col, &(lo, hi)) in self.cols.iter().zip(q.ranges.iter()) {
                let mut m = 0u64;
                for (i, &c) in col[base..base + chunk].iter().enumerate() {
                    m |= (((c >= lo) as u64) & ((c <= hi) as u64)) << i;
                }
                mask &= m;
                if mask == 0 {
                    break;
                }
            }
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                agg.add(self.measures[base + i]);
                mask &= mask - 1;
            }
            base += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(coords: &[u64], measure: f64) -> Entry {
        Entry { coords: coords.into(), measure, hkey: None }
    }

    fn brute(rows: &[(&[u64], f64)], q: &QueryBox) -> Aggregate {
        let mut agg = Aggregate::empty();
        for (coords, m) in rows {
            if coords.iter().zip(q.ranges.iter()).all(|(&c, &(lo, hi))| lo <= c && c <= hi) {
                agg.add(*m);
            }
        }
        agg
    }

    #[test]
    fn scan_matches_row_filter_across_chunk_boundaries() {
        // 150 rows forces three chunks (64 + 64 + 22) including a short tail.
        let mut leaf = LeafColumns::new(2);
        let mut rows: Vec<(Vec<u64>, f64)> = Vec::new();
        let mut state = 99u64;
        for i in 0..150u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let coords = vec![state % 32, (state >> 20) % 32];
            rows.push((coords.clone(), i as f64));
            leaf.push(entry(&coords, i as f64));
        }
        for ranges in [
            vec![(0, 31), (0, 31)],
            vec![(5, 12), (0, 31)],
            vec![(0, 31), (30, 31)],
            vec![(8, 8), (8, 8)],
            vec![(31, 31), (0, 0)], // almost certainly empty result
        ] {
            let q = QueryBox::from_ranges(ranges);
            let rows_ref: Vec<(&[u64], f64)> =
                rows.iter().map(|(c, m)| (c.as_slice(), *m)).collect();
            let expect = brute(&rows_ref, &q);
            let mut got = Aggregate::empty();
            leaf.scan(&q, &mut got);
            assert_eq!(got.count, expect.count);
            assert_eq!(got.sum, expect.sum);
            assert_eq!(got.min.to_bits(), expect.min.to_bits());
            assert_eq!(got.max.to_bits(), expect.max.to_bits());
        }
    }

    #[test]
    fn roundtrip_entries() {
        let entries: Vec<Entry> =
            (0..10).map(|i| entry(&[i, i * 2, 63 - i], i as f64 * 0.5)).collect();
        let leaf = LeafColumns::from_entries(3, entries.clone());
        assert_eq!(leaf.len(), 10);
        let back = leaf.to_entries();
        for (a, b) in entries.iter().zip(&back) {
            assert_eq!(a.coords, b.coords);
            assert_eq!(a.measure, b.measure);
        }
        assert_eq!(leaf.item(3).coords.as_ref(), &[3, 6, 60]);
    }
}
