//! The flat-array shard store (benchmarking baseline, paper §III-D).

use volap_dims::{Aggregate, Item, Key, Mbr, QueryBox, Schema};
use volap_obs::lock::{LockClass, ObsRwLock};

use crate::tree::QueryTrace;

/// Single whole-store lock; never nested with any other class.
static ARRAY_CLASS: LockClass = LockClass::new("tree.array", 55);

/// A shard stored as a plain vector: O(1) amortized insert, O(n) query.
///
/// The paper ships this as one of the five shard structures "for
/// benchmarking purposes" — it is the floor any index must beat on queries
/// and the ceiling for raw ingestion.
pub struct ArrayStore {
    schema: Schema,
    inner: ObsRwLock<ArrayInner>,
}

struct ArrayInner {
    items: Vec<Item>,
    total: Aggregate,
    mbr: Mbr,
}

impl ArrayStore {
    /// Create an empty array store.
    pub fn new(schema: Schema) -> Self {
        let mbr = Mbr::empty(&schema);
        Self {
            schema,
            inner: ObsRwLock::new(
                &ARRAY_CLASS,
                ArrayInner { items: Vec::new(), total: Aggregate::empty(), mbr },
            ),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append one item.
    pub fn insert(&self, item: &Item) {
        let mut g = self.inner.write();
        g.total.add(item.measure);
        let schema = self.schema.clone();
        g.mbr.extend_item(&schema, item);
        g.items.push(item.clone());
    }

    /// Append many items.
    pub fn bulk_insert(&self, items: Vec<Item>) {
        let mut g = self.inner.write();
        let schema = self.schema.clone();
        for item in &items {
            g.total.add(item.measure);
            g.mbr.extend_item(&schema, item);
        }
        g.items.extend(items);
    }

    /// Linear-scan aggregate query.
    pub fn query_traced(&self, q: &QueryBox) -> (Aggregate, QueryTrace) {
        let g = self.inner.read();
        let mut agg = Aggregate::empty();
        for it in &g.items {
            if q.contains_item(it) {
                agg.add(it.measure);
            }
        }
        let trace = QueryTrace {
            nodes_visited: 1,
            items_scanned: g.items.len() as u64,
            ..QueryTrace::default()
        };
        (agg, trace)
    }

    /// Number of items.
    pub fn len(&self) -> u64 {
        self.inner.read().items.len() as u64
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Running total aggregate.
    pub fn total(&self) -> Aggregate {
        self.inner.read().total
    }

    /// Bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        self.inner.read().mbr.clone()
    }

    /// Snapshot of all items.
    pub fn items(&self) -> Vec<Item> {
        self.inner.read().items.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_manual_filter() {
        let schema = Schema::uniform(2, 2, 8);
        let store = ArrayStore::new(schema.clone());
        for i in 0..200u64 {
            store.insert(&Item::new(vec![i % 64, (i * 7) % 64], i as f64));
        }
        assert_eq!(store.len(), 200);
        let q = QueryBox::from_ranges(vec![(0, 31), (0, 63)]);
        let (agg, trace) = store.query_traced(&q);
        let expect: u64 = (0..200u64).filter(|i| i % 64 <= 31).count() as u64;
        assert_eq!(agg.count, expect);
        assert_eq!(trace.items_scanned, 200);
        assert_eq!(store.total().count, 200);
        assert!(!store.mbr().is_empty());
    }

    #[test]
    fn bulk_matches_point_inserts() {
        let schema = Schema::uniform(2, 2, 8);
        let a = ArrayStore::new(schema.clone());
        let b = ArrayStore::new(schema.clone());
        let items: Vec<Item> = (0..50).map(|i| Item::new(vec![i, 63 - i], 1.0)).collect();
        for it in &items {
            a.insert(it);
        }
        b.bulk_insert(items);
        assert_eq!(a.total(), b.total());
        assert_eq!(a.mbr(), b.mbr());
    }
}
