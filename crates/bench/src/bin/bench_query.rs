//! Sequential-vs-parallel query benchmark, recorded to `BENCH_query.json`.
//!
//! Measures the same query batch through `ConcurrentTree::query` and
//! `ConcurrentTree::query_par` at a small (10 k) and a large (500 k) tree,
//! prints a table, and writes machine-readable results (including the core
//! count the run had, since the parallel speedup is meaningless without it)
//! so the perf trajectory is tracked from PR to PR.

use std::time::Instant;

use volap_data::{DataGen, QueryGen};
use volap_dims::{Mds, QueryBox, Schema};
use volap_tree::serial::bulk_load;
use volap_tree::{ConcurrentTree, InsertPolicy, TreeConfig};

struct Row {
    items: usize,
    seq_ms: f64,
    par_ms: f64,
}

fn run_batch(tree: &ConcurrentTree<Mds>, queries: &[QueryBox], par: bool) -> (u64, f64) {
    let t = Instant::now();
    let mut total = 0u64;
    for q in queries {
        let agg = if par { tree.query_par(q) } else { tree.query(q) };
        total = total.wrapping_add(agg.count);
    }
    (total, t.elapsed().as_secs_f64() * 1e3 / queries.len() as f64)
}

fn main() {
    let schema = Schema::tpcds();
    let n_queries = 32;
    let rounds = 5;
    let env = volap_bench::BenchEnv::setup("bench_query");
    let (cores, threads) = (env.cores, env.threads);
    let mut rows = Vec::new();
    println!(
        "# query_seq_vs_par ({cores} cores, {threads} threads, {n_queries} queries/round, \
         best of {rounds})"
    );
    println!("{:<10} {:>14} {:>14} {:>9}", "items", "seq_ms/query", "par_ms/query", "speedup");
    for n in [10_000usize, 500_000] {
        let mut gen = DataGen::new(&schema, 11, 1.5);
        let items = gen.items(n);
        let sample = &items[..items.len().min(10_000)];
        let mut qg = QueryGen::new(&schema, 13, 0.65);
        let queries: Vec<_> = (0..n_queries).map(|_| qg.query(sample)).collect();
        let tree: ConcurrentTree<Mds> = ConcurrentTree::new(
            schema.clone(),
            InsertPolicy::Hilbert { expand: true },
            TreeConfig::default(),
        );
        bulk_load(&tree, items);
        let (mut seq_ms, mut par_ms) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..rounds {
            let (seq_total, s) = run_batch(&tree, &queries, false);
            let (par_total, p) = run_batch(&tree, &queries, true);
            assert_eq!(seq_total, par_total, "parallel result diverged");
            seq_ms = seq_ms.min(s);
            par_ms = par_ms.min(p);
        }
        println!("{n:<10} {seq_ms:>14.4} {par_ms:>14.4} {:>8.2}x", seq_ms / par_ms);
        rows.push(Row { items: n, seq_ms, par_ms });
    }
    let best = rows.last().expect("at least one size measured");
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"query_seq_vs_par\",\n");
    json.push_str(&format!("  {},\n", env.json_fields()));
    json.push_str(&format!(
        "  {},\n",
        env.headline("par_speedup", ((best.seq_ms / best.par_ms) * 1e3).round() / 1e3, true)
    ));
    json.push_str(&format!("  \"queries_per_round\": {n_queries},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"items\": {}, \"seq_ms_per_query\": {:.4}, \"par_ms_per_query\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.items,
            r.seq_ms,
            r.par_ms,
            r.seq_ms / r.par_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_query.json", &json).expect("write BENCH_query.json");
    println!("wrote BENCH_query.json");
}
