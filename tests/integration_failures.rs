//! Failure injection: the system must degrade with errors, never hangs or
//! panics, when parts of it disappear or misbehave.

use std::time::Duration;

use volap::{Cluster, Request, Response, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};

#[test]
fn dead_worker_yields_errors_not_hangs() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.manager_enabled = false;
    cfg.request_timeout = Duration::from_millis(300);
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 1, 1.0);
    for it in gen.items(200) {
        client.insert(&it).unwrap();
    }
    assert!(cluster.kill_worker("worker-0"));
    assert!(!cluster.kill_worker("worker-0"), "double kill reports false");
    // Whole-space queries touch the dead worker's shard: error, fast.
    let t = std::time::Instant::now();
    let res = client.query(&QueryBox::all(&schema));
    assert!(res.is_err(), "query must surface the dead worker");
    assert!(t.elapsed() < Duration::from_secs(2), "failure must be prompt");
    // Inserts keep failing or succeeding depending on routing, but never
    // hang; run a batch and require completion within the timeout budget.
    let t = std::time::Instant::now();
    let mut errors = 0;
    for it in gen.items(50) {
        if client.insert(&it).is_err() {
            errors += 1;
        }
    }
    assert!(t.elapsed() < Duration::from_secs(20));
    assert!(errors > 0, "some inserts must route to the dead worker");
    cluster.shutdown();
}

#[test]
fn garbage_requests_get_error_replies() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 1;
    cfg.servers = 1;
    cfg.manager_enabled = false;
    let cluster = Cluster::start(cfg);
    let probe = cluster.network().endpoint("raw-probe");
    for target in ["server-0", "worker-0"] {
        let bytes = probe
            .request(target, vec![0xAB, 0xCD, 0xEF], Duration::from_secs(2))
            .expect("reply");
        match Response::decode(&schema, &bytes).expect("decodable") {
            Response::Err(e) => assert!(e.contains("bad request"), "{target}: {e}"),
            other => panic!("{target}: unexpected {other:?}"),
        }
    }
    // Wrong request type for the node role also errors politely.
    let bytes = probe
        .request(
            "server-0",
            Request::GetWorkerStats.encode(),
            Duration::from_secs(2),
        )
        .expect("reply");
    assert!(matches!(Response::decode(&schema, &bytes), Ok(Response::Err(_))));
    cluster.shutdown();
}

#[test]
fn manager_disabled_means_no_balancing() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.manager_enabled = false;
    cfg.max_shard_items = 50; // would trigger constant splits if managed
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 2, 1.0);
    for it in gen.items(500) {
        client.insert(&it).unwrap();
    }
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(cluster.balance_counts(), (0, 0));
    assert_eq!(cluster.shard_count(), 2, "no splits without a manager");
    // Data is still all there.
    let (agg, _) = client.query(&QueryBox::all(&schema)).unwrap();
    assert_eq!(agg.count, 500);
    cluster.shutdown();
}

#[test]
fn shutdown_is_prompt_even_with_long_periods() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 2;
    // Hour-long periods: shutdown must still return immediately thanks to
    // interruptible sleeps.
    cfg.sync_period = Duration::from_secs(3600);
    cfg.stats_period = Duration::from_secs(3600);
    cfg.manager_period = Duration::from_secs(3600);
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 3, 1.0);
    for it in gen.items(50) {
        client.insert(&it).unwrap();
    }
    let t = std::time::Instant::now();
    cluster.shutdown();
    assert!(t.elapsed() < Duration::from_secs(5), "shutdown hung on sleeping threads");
}

#[test]
fn zero_worker_cluster_serves_errors() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 0;
    cfg.servers = 1;
    cfg.manager_enabled = false;
    cfg.initial_shards_per_worker = 0;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 4, 1.0);
    assert!(client.insert(&gen.item()).is_err(), "no shards to route to");
    let (agg, searched) = client.query(&QueryBox::all(&schema)).unwrap();
    assert!(agg.is_empty());
    assert_eq!(searched, 0);
    cluster.shutdown();
}

#[test]
fn killed_worker_can_be_replaced_and_service_restored_for_new_data() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.request_timeout = Duration::from_millis(300);
    cfg.manager_enabled = false;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 5, 1.0);
    for it in gen.items(100) {
        client.insert(&it).unwrap();
    }
    cluster.kill_worker("worker-1");
    let replacement = cluster.add_worker();
    assert_eq!(replacement, "worker-2");
    // Data on the dead worker is lost (VOLAP has no replication — the paper
    // scopes fault tolerance to Zookeeper's own availability), but queries
    // scoped to surviving shards keep working: probe via the image.
    let survivors: Vec<u64> = cluster
        .image()
        .shards()
        .into_iter()
        .filter(|r| r.worker == "worker-0")
        .map(|r| r.id)
        .collect();
    assert!(!survivors.is_empty());
    cluster.shutdown();
}

#[test]
fn manager_reaps_shards_of_dead_workers() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.manager_period = Duration::from_millis(40);
    cfg.stats_period = Duration::from_millis(25); // session TTL = 10x this
    cfg.request_timeout = Duration::from_millis(300);
    cfg.max_shard_items = 1_000_000; // no splits; isolate liveness behaviour
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 6, 1.0);
    for it in gen.items(200) {
        client.insert(&it).unwrap();
    }
    assert_eq!(cluster.shard_count(), 2);
    cluster.kill_worker("worker-1");
    // The worker's session expires (10 x stats_period = 250 ms), the
    // manager notices and removes the stranded shard record; service on
    // the survivor then works without errors again.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let workers = cluster.image().workers();
        let shards = cluster.shard_count();
        if workers == vec!["worker-0".to_string()] && shards == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "liveness cleanup never happened: workers {workers:?}, shards {shards}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    // Queries succeed again (the dead worker's data is gone — no
    // replication in VOLAP — but routing is healthy).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if client.query(&QueryBox::all(&schema)).is_ok() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "routing never recovered");
        std::thread::sleep(Duration::from_millis(25));
    }
    cluster.shutdown();
}
