//! Property-based tests for the compact Hilbert machinery.

use proptest::prelude::*;
use volap_hilbert::{BigIndex, HilbertCurve};

/// The pre-inline `Vec`-backed bit string: a straight re-implementation of
/// `push_bits` over a plain `Vec<u64>`, kept as the reference model for the
/// inline-storage representation.
#[derive(Default, Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct VecModel {
    // Field order matters: the derived `Ord` compares `bit_len` first, then
    // limbs — the same shorter-width-sorts-first rule as `BigIndex`.
    bit_len: u32,
    limbs: Vec<u64>,
}

impl VecModel {
    fn push_bits(&mut self, value: u64, nbits: u32) {
        if nbits == 0 {
            return;
        }
        let used = self.bit_len % 64;
        let free = if used == 0 { 0 } else { 64 - used };
        if free == 0 {
            self.limbs
                .push(if nbits == 64 { value } else { value << (64 - nbits) });
        } else if nbits <= free {
            *self.limbs.last_mut().unwrap() |= value << (free - nbits);
        } else {
            let hi = nbits - free;
            *self.limbs.last_mut().unwrap() |= value >> hi;
            self.limbs.push(value << (64 - hi));
        }
        self.bit_len += nbits;
    }
}

/// Strategy: a small width vector whose total bits stay enumerable.
fn small_widths() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(1u32..=4, 1..=4)
        .prop_filter("enumerable domain", |w| w.iter().sum::<u32>() <= 12)
}

/// Strategy: an arbitrary (point, widths) pair with up to 64 dimensions.
fn wide_point() -> impl Strategy<Value = (Vec<u32>, Vec<u64>)> {
    prop::collection::vec(1u32..=16, 1..=64).prop_flat_map(|widths| {
        let coords: Vec<BoxedStrategy<u64>> = widths
            .iter()
            .map(|&b| (0u64..(1u64 << b)).boxed())
            .collect();
        (Just(widths), coords)
    })
}

proptest! {
    /// Exhaustive bijectivity for random small domains: every index in
    /// [0, 2^M) is hit exactly once.
    #[test]
    fn compact_index_is_bijective(widths in small_widths()) {
        let curve = HilbertCurve::new(&widths);
        let total: u32 = widths.iter().sum();
        let mut seen = vec![false; 1usize << total];
        let mut point = vec![0u64; widths.len()];
        // Odometer over the whole domain.
        loop {
            let h = curve.index(&point);
            prop_assert_eq!(h.bit_len(), total);
            let v = h.extract_bits(0, total) as usize;
            prop_assert!(!seen[v], "index {} visited twice", v);
            seen[v] = true;
            // increment odometer
            let mut d = 0;
            loop {
                if d == widths.len() {
                    for s in &seen {
                        prop_assert!(*s);
                    }
                    return Ok(());
                }
                point[d] += 1;
                if point[d] < (1u64 << widths[d]) {
                    break;
                }
                point[d] = 0;
                d += 1;
            }
        }
    }

    /// index/point round-trip at arbitrary dimensionality and widths.
    #[test]
    fn index_point_roundtrip((widths, coords) in wide_point()) {
        let curve = HilbertCurve::new(&widths);
        let h = curve.index(&coords);
        prop_assert_eq!(h.bit_len(), widths.iter().sum::<u32>());
        prop_assert_eq!(curve.point(&h), coords);
    }

    /// The compact index orders points exactly as the enclosing-cube
    /// Hilbert index does (Hamilton & Rau-Chaplin's defining theorem).
    #[test]
    fn compact_order_matches_enclosing(widths in small_widths(), seed in 0u64..1_000_000) {
        let curve = HilbertCurve::new(&widths);
        // Two pseudo-random points from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let p: Vec<u64> = widths.iter().map(|&b| next() % (1u64 << b)).collect();
        let q: Vec<u64> = widths.iter().map(|&b| next() % (1u64 << b)).collect();
        let compact = curve.index(&p).cmp(&curve.index(&q));
        let enclosing = curve.enclosing_index(&p).cmp(&curve.enclosing_index(&q));
        prop_assert_eq!(compact, enclosing);
    }

    /// BigIndex push/extract are mutually inverse for arbitrary chunkings.
    #[test]
    fn bigindex_push_extract(chunks in prop::collection::vec((0u64..u64::MAX, 1u32..=64), 1..12)) {
        let mut b = BigIndex::new();
        let mut expected = Vec::new();
        for &(v, bits) in &chunks {
            let v = if bits == 64 { v } else { v & ((1u64 << bits) - 1) };
            b.push_bits(v, bits);
            expected.push((v, bits));
        }
        let mut offset = 0;
        for (v, bits) in expected {
            prop_assert_eq!(b.extract_bits(offset, bits), v);
            offset += bits;
        }
        prop_assert_eq!(b.bit_len(), offset);
        // Raw round-trip.
        let r = BigIndex::from_raw(b.limbs().to_vec(), b.bit_len());
        prop_assert_eq!(r, b);
    }

    /// The inline-limb representation is observationally identical to the
    /// `Vec` representation: same limbs, same width, same ordering — across
    /// the inline→heap spill boundary (chunk counts up to 12 reach ~768
    /// bits, well past the 4-limb inline buffer).
    #[test]
    fn inline_storage_matches_vec_model(
        chunks_a in prop::collection::vec((0u64..u64::MAX, 1u32..=64), 1..12),
        chunks_b in prop::collection::vec((0u64..u64::MAX, 1u32..=64), 1..12),
    ) {
        let build = |chunks: &[(u64, u32)]| {
            let mut real = BigIndex::new();
            let mut model = VecModel::default();
            for &(v, bits) in chunks {
                let v = if bits == 64 { v } else { v & ((1u64 << bits) - 1) };
                real.push_bits(v, bits);
                model.push_bits(v, bits);
            }
            (real, model)
        };
        let (ra, ma) = build(&chunks_a);
        let (rb, mb) = build(&chunks_b);
        prop_assert_eq!(ra.limbs(), &ma.limbs[..]);
        prop_assert_eq!(ra.bit_len(), ma.bit_len);
        prop_assert_eq!(ra.cmp(&rb), ma.cmp(&mb));
        prop_assert_eq!(ra == rb, ma == mb);
        // heap_bytes is zero exactly while the value fits the inline buffer.
        prop_assert_eq!(ra.heap_bytes() == 0, ma.limbs.len() <= 4);
        // from_raw on the model's limbs reproduces the real value.
        prop_assert_eq!(BigIndex::from_raw(ma.limbs, ma.bit_len), ra);
    }

    /// BigIndex ordering at equal widths equals numeric ordering of the
    /// underlying big-endian bit strings.
    #[test]
    fn bigindex_order_is_numeric(a in 0u64..1 << 40, b in 0u64..1 << 40, hi in 0u64..8) {
        let mk = |hi: u64, lo: u64| {
            let mut x = BigIndex::new();
            x.push_bits(hi, 24);
            x.push_bits(lo, 40);
            x
        };
        let x = mk(hi, a);
        let y = mk(hi, b);
        prop_assert_eq!(x.cmp(&y), a.cmp(&b));
        let z = mk(hi + 1, a);
        prop_assert!(z > y);
    }
}
