//! Cross-server freshness: the live system's bounded staleness (§IV-F).

use std::time::{Duration, Instant};

use volap::{Cluster, FreshnessSim, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};

#[test]
fn cross_server_visibility_is_bounded_by_sync_period() {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 2;
    cfg.sync_period = Duration::from_millis(60);
    cfg.manager_period = Duration::from_millis(50);
    cfg.max_shard_items = 1_000;
    let sync = cfg.sync_period;
    let cluster = Cluster::start(cfg);
    let writer = cluster.client_on(0);
    let reader = cluster.client_on(1);
    let mut gen = DataGen::new(&schema, 3, 1.5);
    // Preload so shard boxes exist and splits have happened.
    for it in gen.items(2_000) {
        writer.insert(&it).unwrap();
    }
    std::thread::sleep(4 * sync);

    // Measure worst-case visibility delay across many probes.
    let q = QueryBox::all(&schema);
    let (base, _) = reader.query(&q).unwrap();
    let mut base_count = base.count;
    let mut worst = Duration::ZERO;
    for round in 0..30 {
        let batch = gen.items(10);
        for it in &batch {
            writer.insert(it).unwrap();
        }
        let target = base_count + batch.len() as u64;
        let start = Instant::now();
        loop {
            let (agg, _) = reader.query(&q).unwrap();
            if agg.count >= target {
                break;
            }
            assert!(
                start.elapsed() < 50 * sync,
                "round {round}: inserts not visible after {:?}",
                start.elapsed()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        worst = worst.max(start.elapsed());
        base_count = target;
    }
    // The paper's bound: consistency always within the sync period scale
    // (3 s there, 60 ms here) plus propagation slack.
    assert!(
        worst < 10 * sync,
        "worst-case visibility {worst:?} violates bound (sync {sync:?})"
    );
    cluster.shutdown();
}

#[test]
fn expansion_probability_shrinks_as_database_grows() {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.manager_enabled = true;
    cfg.max_shard_items = 5_000;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 4, 1.5);
    for it in gen.items(1_000) {
        client.insert(&it).unwrap();
    }
    let early = cluster.expansion_prob();
    for it in gen.items(9_000) {
        client.insert(&it).unwrap();
    }
    let late = cluster.expansion_prob();
    // Boxes converge to the populated space: later inserts expand far less
    // often. (`late` is cumulative, so the bound is generous.)
    assert!(
        late < early,
        "expansion probability must fall as boxes converge: early {early}, late {late}"
    );
    assert!(late < 0.5, "mature system should rarely expand, got {late}");
    cluster.shutdown();
}

/// The simulation pipeline of Figure 10, fed with parameters measured from
/// a real cluster run.
#[test]
fn freshness_simulation_from_measured_parameters() {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 2;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 5, 1.5);

    // Measure insert latencies.
    let mut latencies = Vec::with_capacity(500);
    for it in gen.items(500) {
        let t = Instant::now();
        client.insert(&it).unwrap();
        latencies.push(t.elapsed().as_secs_f64());
    }
    let expansion_prob = cluster.expansion_prob();
    cluster.shutdown();

    let sim = FreshnessSim {
        insert_rate: 50_000.0,
        coverage: 0.5,
        sync_period: 3.0,
        apply_latency: 0.01,
        expansion_prob,
        insert_latency_samples: latencies,
    };
    let m0 = sim.avg_missed(0.0, 100_000, 1);
    let m_late = sim.avg_missed(3.2, 100_000, 1);
    assert!(m0 > 0.0, "in-flight inserts must be missable at elapsed 0");
    assert!(m_late < 1e-6, "nothing may be missed past the sync period");
    let max_v = sim.max_visibility(200_000, 2);
    assert!(max_v < 3.0 + 0.01 + 1.0, "visibility bound blown: {max_v}");
    // A young cluster expands boxes often, so the miss count at small
    // elapsed times can be large; the PMF must still be a valid partial
    // distribution, and past the sync window all mass sits at zero.
    let pmf = sim.missed_pmf(0.25, 4, 100_000, 3);
    assert!(pmf.iter().sum::<f64>() <= 1.0 + 1e-9);
    assert!(pmf.iter().all(|&p| (0.0..=1.0).contains(&p)));
    let settled = sim.missed_pmf(3.2, 4, 100_000, 3);
    assert!(settled[0] > 0.999, "past the sync window nothing is missed");
}
