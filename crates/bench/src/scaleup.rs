//! The horizontal scale-up experiment shared by Figures 6 and 7.
//!
//! Reproduces §IV-B/C: discrete *load* phases interleaved with *benchmark*
//! phases; before each load phase two empty workers join and the manager
//! rebalances. A background sampler records the per-worker min/max data
//! sizes and the cumulative split/migration counts over time (Figure 6's
//! series); each benchmark phase measures insert and per-coverage-band
//! query throughput and latency (Figure 7's series).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use volap::{Cluster, VolapConfig};
use volap_data::{CoverageBand, DataGen, Op, QueryGen};
use volap_dims::{Item, Schema};

use crate::{drive, LatencyStats};

/// One point of the Figure-6 time series.
#[derive(Debug, Clone, Copy)]
pub struct LoadSample {
    /// Seconds since experiment start.
    pub t: f64,
    /// Smallest per-worker item count.
    pub min_load: u64,
    /// Largest per-worker item count.
    pub max_load: u64,
    /// Worker count at this instant.
    pub workers: usize,
    /// Cumulative shard splits.
    pub splits: u64,
    /// Cumulative shard migrations.
    pub migrations: u64,
}

/// One benchmark phase of the Figure-7 series.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase number (1-based).
    pub phase: usize,
    /// Workers active during the phase.
    pub workers: usize,
    /// Database size after the phase's load.
    pub db_size: u64,
    /// Insert throughput (ops/s) and latency.
    pub insert_tput: f64,
    /// Insert latency stats.
    pub insert_lat: LatencyStats,
    /// Per coverage band (low/medium/high): query throughput.
    pub query_tput: [f64; 3],
    /// Per coverage band: query latency.
    pub query_lat: [LatencyStats; 3],
}

/// Full experiment output.
pub struct ScaleUpResult {
    /// Continuous load-balance samples (Figure 6).
    pub samples: Vec<LoadSample>,
    /// Per-phase performance (Figure 7).
    pub phases: Vec<PhaseReport>,
}

/// Experiment knobs.
pub struct ScaleUpParams {
    /// Workers at the start.
    pub initial_workers: usize,
    /// Workers added before each subsequent phase.
    pub workers_per_phase: usize,
    /// Total phases (phase 1 uses the initial workers).
    pub phases: usize,
    /// Items loaded per worker per phase (paper: 50 million).
    pub items_per_worker: usize,
    /// Queries per coverage band per benchmark phase.
    pub queries_per_band: usize,
    /// Concurrent client sessions while benchmarking.
    pub sessions: usize,
    /// Shard split threshold.
    pub max_shard_items: u64,
}

/// Run the scale-up experiment.
pub fn run(params: &ScaleUpParams) -> ScaleUpResult {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = params.initial_workers;
    cfg.servers = 2;
    cfg.max_shard_items = params.max_shard_items;
    cfg.sync_period = Duration::from_millis(40);
    cfg.stats_period = Duration::from_millis(30);
    cfg.manager_period = Duration::from_millis(50);
    let cluster = Arc::new(Cluster::start(cfg));

    // Background sampler for the Figure-6 series.
    let samples = Arc::new(Mutex::new(Vec::<LoadSample>::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let cluster = Arc::clone(&cluster);
        let samples = Arc::clone(&samples);
        let stop = Arc::clone(&stop);
        let start = Instant::now();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let loads = cluster.worker_loads();
                let (splits, migrations) = cluster.balance_counts();
                let min = loads.iter().map(|(_, l)| *l).min().unwrap_or(0);
                let max = loads.iter().map(|(_, l)| *l).max().unwrap_or(0);
                samples.lock().unwrap().push(LoadSample {
                    t: start.elapsed().as_secs_f64(),
                    min_load: min,
                    max_load: max,
                    workers: loads.len(),
                    splits,
                    migrations,
                });
                std::thread::sleep(Duration::from_millis(60));
            }
        })
    };

    let mut gen = DataGen::new(&schema, 9000, 1.5);
    let mut qgen = QueryGen::new(&schema, 9001, 0.65);
    let mut sample_items: Vec<Item> = Vec::new();
    let mut phases = Vec::new();
    let mut workers = params.initial_workers;
    let mut db_size = 0u64;

    for phase in 1..=params.phases {
        if phase > 1 {
            for _ in 0..params.workers_per_phase {
                cluster.add_worker();
            }
            workers += params.workers_per_phase;
            wait_balanced(&cluster, Duration::from_secs(30));
        }
        // Load phase: pure insert stream, measured.
        let to_load = params.items_per_worker * workers - db_size as usize;
        let items = gen.items(to_load);
        sample_items.extend(items.iter().take(2_000).cloned());
        let ops: Vec<Op> = items.into_iter().map(Op::Insert).collect();
        let load_res = drive(&cluster, params.sessions, &ops);
        db_size += to_load as u64;

        // Let splits triggered by the load finish before benchmarking.
        wait_quiescent(&cluster, Duration::from_secs(30));

        // Benchmark phase: per-band query streams.
        if sample_items.len() > 30_000 {
            let excess = sample_items.len() - 30_000;
            sample_items.drain(..excess);
        }
        let bins = qgen.binned(&sample_items, params.queries_per_band, 300_000);
        let mut query_tput = [0.0; 3];
        let mut query_lat = [LatencyStats::from_samples(vec![]); 3];
        for (b, queries) in bins.iter().enumerate() {
            if queries.is_empty() {
                continue;
            }
            let ops: Vec<Op> = queries.iter().cloned().map(Op::Query).collect();
            let res = drive(&cluster, params.sessions, &ops);
            query_tput[b] = res.throughput();
            query_lat[b] = LatencyStats::from_samples(res.query_lat);
        }
        phases.push(PhaseReport {
            phase,
            workers,
            db_size,
            insert_tput: load_res.throughput(),
            insert_lat: LatencyStats::from_samples(load_res.insert_lat),
            query_tput,
            query_lat,
        });
    }

    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler");
    let samples = Arc::try_unwrap(samples).expect("sampler done").into_inner().unwrap();
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("cluster still referenced"),
    }
    ScaleUpResult { samples, phases }
}

/// Coverage bands in report order.
pub fn bands() -> [CoverageBand; 3] {
    CoverageBand::all()
}

fn wait_balanced(cluster: &Cluster, deadline: Duration) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let loads = cluster.worker_loads();
        let total: u64 = loads.iter().map(|(_, l)| l).sum();
        let min = loads.iter().map(|(_, l)| *l).min().unwrap_or(0);
        let max = loads.iter().map(|(_, l)| *l).max().unwrap_or(0);
        let mean = total as f64 / loads.len().max(1) as f64;
        if total == 0 || (min > 0 && (max - min) as f64 <= 0.6 * mean + 2_000.0) {
            return;
        }
        std::thread::sleep(Duration::from_millis(60));
    }
}

/// Wait until the split backlog clears (no shard above the threshold).
fn wait_quiescent(cluster: &Cluster, deadline: Duration) {
    let start = Instant::now();
    let threshold = cluster.config().max_shard_items;
    while start.elapsed() < deadline {
        let oversized = cluster.image().shards().iter().any(|r| r.len > threshold);
        if !oversized {
            return;
        }
        std::thread::sleep(Duration::from_millis(60));
    }
}
