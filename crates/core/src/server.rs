//! The server process: client sessions, routing, and image synchronization.
//!
//! Servers own no data. Each keeps a **local image** — a [`ServerIndex`]
//! over shard bounding boxes plus a shard → worker location map — used to
//! route every client insert and query (§III-C). Local box expansions are
//! pushed to the global image at the configurable sync rate, and remote
//! changes arrive through coordination-store watches, giving the bounded
//! staleness analyzed in §IV-F.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use volap_coord::EventKind;
use volap_dims::{Aggregate, Item, Key, Mbr, QueryBox, Schema};
use volap_net::{Endpoint, Incoming, Network};
use volap_obs::lock::{self, LockClass, ObsMutex, ObsRwLock};
use volap_obs::{Accounting, CostVec, Counter, Histogram, PrincipalId, StalenessProbe, TraceCtx, Tracer};

/// Server slice of the global lock hierarchy (DESIGN.md §15). The ingest
/// buffer is drained *before* routing, so it ranks above nothing; the
/// routing paths hold `index` while updating `locations` (bootstrap, image
/// applies) and while folding expansions into `dirty` (bulk routing), so
/// index < locations and index < dirty.
static INGEST_CLASS: LockClass = LockClass::new("server.ingest", 20);
static INDEX_CLASS: LockClass = LockClass::new("server.index", 21);
static LOCATIONS_CLASS: LockClass = LockClass::new("server.locations", 22);
static DIRTY_CLASS: LockClass = LockClass::new("server.dirty", 23);

use crate::config::VolapConfig;
use crate::image::{ImageStore, ShardRecord, SHARDS_PREFIX};
use crate::plan::QueryPlan;
use crate::proto::{Request, Response};
use crate::server_index::ServerIndex;

/// Observability handles registered once at spawn (recording is pure
/// relaxed atomics). Counters are labeled per server; latency histograms
/// are shared deployment-wide to bound metric cardinality.
struct ServerObs {
    inserts: Counter,
    expansions: Counter,
    queries: Counter,
    route_misses: Counter,
    sync_rounds: Counter,
    image_applies: Counter,
    insert_seconds: Histogram,
    bulk_insert_seconds: Histogram,
    query_seconds: Histogram,
    ingest_flush_seconds: Histogram,
    staleness: StalenessProbe,
}

impl ServerObs {
    fn new(image: &ImageStore, name: &str) -> Self {
        let reg = image.obs().registry();
        Self {
            inserts: reg.counter_labeled("volap_server_inserts_total", "server", name),
            expansions: reg.counter_labeled("volap_server_box_expansions_total", "server", name),
            queries: reg.counter_labeled("volap_server_queries_total", "server", name),
            route_misses: reg.counter_labeled("volap_server_route_misses_total", "server", name),
            sync_rounds: reg.counter_labeled("volap_server_sync_rounds_total", "server", name),
            image_applies: reg.counter_labeled("volap_server_image_applies_total", "server", name),
            insert_seconds: reg.histogram("volap_server_insert_seconds"),
            bulk_insert_seconds: reg.histogram("volap_server_bulk_insert_seconds"),
            query_seconds: reg.histogram("volap_server_query_seconds"),
            ingest_flush_seconds: reg.histogram("volap_server_ingest_flush_seconds"),
            staleness: image.obs().staleness().clone(),
        }
    }
}

struct ServerState {
    name: String,
    schema: Schema,
    cfg: VolapConfig,
    endpoint: Endpoint,
    image: ImageStore,
    index: ObsRwLock<ServerIndex>,
    locations: ObsRwLock<HashMap<u64, String>>,
    /// Locally observed box expansions awaiting the next sync push.
    dirty: ObsMutex<HashMap<u64, Mbr>>,
    /// Buffered `ClientInsert`s awaiting a coalesced flush (only used when
    /// `cfg.ingest_batch > 1`): each entry keeps its reply handle so the
    /// client is acknowledged by its shard's bulk outcome, plus its open
    /// accounting bill when the insert was tagged.
    ingest: ObsMutex<Vec<(Item, Incoming, Option<Bill>)>>,
    /// This server's local image generation: image records applied (at
    /// bootstrap or via watch events). ANALYZE plans and `route_miss`
    /// events stamp it so routing decisions can be ordered against image
    /// churn and joined to staleness-probe data.
    generation: AtomicU64,
    obs: ServerObs,
    /// Causal tracer: client requests are the trace roots (head-based
    /// sampling happens here; workers inherit the decision).
    tracer: Tracer,
    /// Per-principal workload accounting: tagged requests charge their
    /// measured cost here as they complete.
    accounting: Accounting,
}

/// Handle to a running server.
pub struct ServerHandle {
    /// The server's endpoint name.
    pub name: String,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Signal shutdown and join all threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Spawn a server: `cfg.server_threads` service threads plus a sync thread.
pub fn spawn_server(net: &Network, image: &ImageStore, cfg: &VolapConfig, name: &str) -> ServerHandle {
    let endpoint = net.endpoint(name.to_string());
    image.add_server(name);
    let state = Arc::new(ServerState {
        name: name.to_string(),
        schema: cfg.schema.clone(),
        cfg: cfg.clone(),
        endpoint: endpoint.clone(),
        image: image.clone(),
        index: ObsRwLock::new(&INDEX_CLASS, ServerIndex::new(cfg.schema.clone(), cfg.index_dir_cap)),
        locations: ObsRwLock::new(&LOCATIONS_CLASS, HashMap::new()),
        dirty: ObsMutex::new(&DIRTY_CLASS, HashMap::new()),
        ingest: ObsMutex::new(&INGEST_CLASS, Vec::new()),
        generation: AtomicU64::new(0),
        obs: ServerObs::new(image, name),
        tracer: image.obs().tracer().clone(),
        accounting: image.obs().accounting().clone(),
    });
    // Watch before the initial load so no update can slip between them.
    let watch_rx = image.coord().watch_prefix(SHARDS_PREFIX);
    bootstrap(&state);

    let shutdown = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for t in 0..cfg.server_threads.max(1) {
        let st = Arc::clone(&state);
        let stop = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name(format!("{name}-svc{t}"))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        if let Ok(msg) = st.endpoint.recv(Duration::from_millis(20)) {
                            handle(&st, msg);
                        }
                    }
                })
                .expect("spawn server thread"),
        );
    }
    // Synchronization thread: push dirty expansions, apply watch events.
    {
        let st = Arc::clone(&state);
        let stop = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name(format!("{name}-sync"))
                .spawn(move || {
                    while crate::util::sleep_unless_stopped(st.cfg.sync_period, &stop) {
                        push_dirty(&st);
                        while let Ok(ev) = watch_rx.try_recv() {
                            apply_event(&st, &ev.path, ev.kind);
                        }
                    }
                })
                .expect("spawn sync thread"),
        );
    }
    // Ingest flusher: bounds how long a buffered client insert can wait for
    // its batch to fill (service threads flush full batches inline).
    if cfg.ingest_batch > 1 {
        let st = Arc::clone(&state);
        let stop = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name(format!("{name}-ingest"))
                .spawn(move || {
                    while crate::util::sleep_unless_stopped(st.cfg.ingest_flush_interval, &stop) {
                        let batch = std::mem::take(&mut *st.ingest.lock());
                        flush_ingest(&st, batch);
                    }
                    // Final drain: no buffered client may be left unanswered
                    // at shutdown.
                    let batch = std::mem::take(&mut *st.ingest.lock());
                    flush_ingest(&st, batch);
                })
                .expect("spawn ingest flush thread"),
        );
    }
    ServerHandle { name: name.to_string(), shutdown, threads }
}

fn bootstrap(st: &Arc<ServerState>) {
    let mut index = st.index.write();
    let mut locations = st.locations.write();
    for rec in st.image.shards() {
        if !index.contains(rec.id) {
            index.add_shard(rec.id, rec.mbr.clone());
        }
        locations.insert(rec.id, rec.worker);
        st.generation.fetch_add(1, Ordering::Relaxed);
    }
}

/// Push locally observed expansions to the global image ("servers update
/// Zookeeper every 3 seconds as necessary").
fn push_dirty(st: &Arc<ServerState>) {
    st.obs.sync_rounds.inc();
    let dirty: Vec<(u64, Mbr)> = st.dirty.lock().drain().collect();
    if dirty.is_empty() {
        return;
    }
    let pushed = dirty.len();
    for (id, mbr) in dirty {
        st.image.merge_shard(&ShardRecord { id, worker: String::new(), len: 0, mbr });
        st.obs.staleness.pushed(id, &st.name);
    }
    st.image
        .obs()
        .events()
        .record("image_sync", format!("server={} shards_pushed={pushed}", st.name));
}

/// Apply one global-image change to the local image.
fn apply_event(st: &Arc<ServerState>, path: &str, kind: EventKind) {
    let Some(id) = path
        .strip_prefix(SHARDS_PREFIX)
        .and_then(|s| s.parse::<u64>().ok())
    else {
        return;
    };
    match kind {
        EventKind::Deleted => {
            st.index.write().remove_shard(id);
            st.locations.write().remove(&id);
        }
        EventKind::Created | EventKind::Changed => {
            if let Some(rec) = st.image.shard(id) {
                let mut index = st.index.write();
                if index.contains(id) {
                    index.expand_shard(id, &rec.mbr);
                } else {
                    index.add_shard(id, rec.mbr.clone());
                }
                if !rec.worker.is_empty() {
                    st.locations.write().insert(id, rec.worker);
                }
                st.generation.fetch_add(1, Ordering::Relaxed);
                st.obs.image_applies.inc();
                // Staleness probe: this server's local image now reflects
                // the shard's published box (self-applies are ignored by
                // the probe).
                st.obs.staleness.applied(id, &st.name);
            }
        }
    }
}

fn reply(msg: &Incoming, resp: Response) {
    let _ = msg.reply(resp.encode());
}

/// A buffered ingest reply waiting on its flush: the inbound message plus
/// the bill opened at enqueue time (None for untagged items).
type PendingReply = (Incoming, Option<Bill>);

/// Everything needed to charge one tagged client request when it
/// completes. Opened before routing (stamping the measured queue wait and
/// request bytes), carried through the route so it can accumulate scan and
/// fan-out counters, settled after the reply is encoded. Untagged requests
/// (or a disabled accounting core) never construct one — their dispatch
/// path costs one branch.
struct Bill {
    principal: PrincipalId,
    started: Instant,
    cost: CostVec,
}

impl Bill {
    fn open(st: &ServerState, p: PrincipalId, msg: &Incoming) -> Option<Bill> {
        if !p.is_tagged() || !st.accounting.enabled() {
            return None;
        }
        Some(Bill {
            principal: p,
            started: Instant::now(),
            cost: CostVec {
                queue_wait_us: msg.queued.as_micros().min(u128::from(u64::MAX)) as u64,
                bytes: msg.payload.len() as u64,
                ..CostVec::default()
            },
        })
    }

    /// Encode the response, fold in reply bytes and end-to-end wall time,
    /// charge the principal, and send the reply.
    fn settle(mut self, st: &ServerState, msg: &Incoming, resp: Response) {
        let bytes = resp.encode();
        self.cost.bytes = self.cost.bytes.saturating_add(bytes.len() as u64);
        self.cost.wall_us = self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        st.accounting.charge(self.principal, &self.cost);
        let _ = msg.reply(bytes);
    }
}

/// Dispatch one client op: open a [`Bill`] when the request is tagged, run
/// the op under a (possibly sampled) trace root, then settle the bill and
/// reply. The untagged path takes the `None` bill branch — no clock reads,
/// no encoding detour, routing byte-identical to an accounting-free build.
fn dispatch(
    st: &Arc<ServerState>,
    msg: Incoming,
    p: PrincipalId,
    op: &str,
    f: impl FnOnce(Option<&TraceCtx>, Option<&mut CostVec>) -> Response,
) {
    match Bill::open(st, p, &msg) {
        Some(mut bill) => {
            let resp = traced_root(st, "server_route", op, p, |t| f(t, Some(&mut bill.cost)));
            bill.settle(st, &msg, resp);
        }
        None => {
            let resp = traced_root(st, "server_route", op, p, |t| f(t, None));
            reply(&msg, resp);
        }
    }
}

/// Run one client operation under a (possibly sampled) trace root. When the
/// head-based sampler picks this request, the whole operation becomes the
/// `name` root span (annotated with the op, server, and — for tagged
/// requests — the accounting principal, so flight-recorder entries say who
/// a slow request belonged to), the context flows into `f`, and on
/// completion the tracer decides whether the assembled trace enters the
/// slow-query flight recorder.
fn traced_root<R>(
    st: &Arc<ServerState>,
    name: &'static str,
    op: &str,
    principal: PrincipalId,
    f: impl FnOnce(Option<&TraceCtx>) -> R,
) -> R {
    match st.tracer.sample_root() {
        Some(ctx) => {
            let mut span = st.tracer.span(&ctx, name);
            span.annotate("op", op);
            span.annotate("server", st.name.clone());
            if principal.is_tagged() {
                let who = st
                    .accounting
                    .name(principal)
                    .unwrap_or_else(|| principal.0.to_string());
                span.annotate("principal", who);
            }
            let wait0 = lock::thread_wait_ns();
            let out = f(Some(&ctx));
            let waited = lock::thread_wait_ns() - wait0;
            if waited > 0 {
                span.annotate("held_lock_wait_us", (waited / 1_000).to_string());
            }
            let dur = span.finish();
            st.tracer.complete_root(&ctx, dur);
            out
        }
        None => f(None),
    }
}

fn handle(st: &Arc<ServerState>, msg: Incoming) {
    let req = match Request::decode(&msg.payload) {
        Ok(r) => r,
        Err(e) => {
            reply(&msg, Response::Err(format!("bad request: {e}")));
            return;
        }
    };
    match req {
        Request::Ping => reply(&msg, Response::Ack),
        Request::ClientInsert { item, principal } => {
            let p = PrincipalId(principal);
            if st.cfg.ingest_batch > 1 {
                enqueue_ingest(st, item, msg, p);
            } else {
                dispatch(st, msg, p, "insert", |t, c| route_insert(st, &item, t, p, c));
            }
        }
        Request::ClientBulkInsert { items, principal } => {
            let p = PrincipalId(principal);
            dispatch(st, msg, p, "bulk_insert", |t, c| route_bulk_insert(st, items, t, p, c));
        }
        Request::ClientQuery { query, principal } => {
            let p = PrincipalId(principal);
            dispatch(st, msg, p, "query", |t, c| route_query(st, &query, t, p, c));
        }
        Request::ClientQueryAnalyze { query, principal } => {
            let p = PrincipalId(principal);
            dispatch(st, msg, p, "query_analyze", |t, c| {
                route_query_analyzed(st, &query, t, p, c)
            });
        }
        other => reply(&msg, Response::Err(format!("unsupported server request: {other:?}"))),
    }
}

/// Resolve a shard's worker from the local map, falling back to the global
/// image (and caching the answer) when the local map is stale.
fn shard_location(st: &Arc<ServerState>, shard: u64) -> Option<String> {
    if let Some(d) = st.locations.read().get(&shard).filter(|d| !d.is_empty()).cloned() {
        return Some(d);
    }
    // Local map is stale: fall back to the global image.
    st.obs.route_misses.inc();
    st.image.obs().events().record(
        "route_miss",
        format!(
            "server={} shard={shard} gen={} image_gen={}",
            st.name,
            st.generation.load(Ordering::Relaxed),
            st.image.generation()
        ),
    );
    let w = st.image.shard(shard).map(|r| r.worker).filter(|w| !w.is_empty())?;
    st.locations.write().insert(shard, w.clone());
    Some(w)
}

fn route_insert(
    st: &Arc<ServerState>,
    item: &Item,
    trace: Option<&TraceCtx>,
    principal: PrincipalId,
    mut cost: Option<&mut CostVec>,
) -> Response {
    let _timer = st.obs.insert_seconds.start();
    st.obs.inserts.inc();
    // Routing and location lookup are two steps under different locks, so a
    // concurrent split can retire the routed shard in between (its record
    // leaves the image once the halves are published). Re-routing through
    // the refreshed index then lands on a half, so a bounded retry makes
    // the window harmless.
    let mut shard = 0;
    for _ in 0..4 {
        let routed = st.index.write().route_insert(item);
        let Some((s, expanded)) = routed else {
            return Response::Err("no shards available".into());
        };
        shard = s;
        if expanded {
            st.obs.expansions.inc();
            st.obs.staleness.expansion(shard, &st.name);
            let mut dirty = st.dirty.lock();
            let entry = dirty.entry(shard).or_insert_with(|| Mbr::empty(&st.schema));
            entry.extend_item(&st.schema, item);
        }
        let Some(dest) = shard_location(st, shard) else {
            continue; // shard retired between routing and lookup: re-route
        };
        if let Some(c) = cost.as_deref_mut() {
            c.net_hops += 1;
            c.fanout = c.fanout.max(1);
        }
        return match st.endpoint.request_tagged(
            &dest,
            Request::Insert { shard, item: item.clone() }.encode(),
            st.cfg.request_timeout,
            trace,
            principal.0,
        ) {
            Ok(bytes) => Response::decode(&st.schema, &bytes)
                .unwrap_or_else(|e| Response::Err(format!("bad worker response: {e}"))),
            Err(e) => Response::Err(format!("insert to {dest} failed: {e}")),
        };
    }
    Response::Err(format!("no location for shard {shard}"))
}

/// Buffer one client insert for coalesced routing. A full buffer is flushed
/// inline by whichever service thread fills it; partially filled buffers
/// are bounded in latency by the flusher thread. Tagged inserts open their
/// bill here, so the charged wall time covers the buffering delay too.
fn enqueue_ingest(st: &Arc<ServerState>, item: Item, msg: Incoming, p: PrincipalId) {
    let bill = Bill::open(st, p, &msg);
    let full = {
        let mut buf = st.ingest.lock();
        buf.push((item, msg, bill));
        (buf.len() >= st.cfg.ingest_batch).then(|| std::mem::take(&mut *buf))
    };
    if let Some(batch) = full {
        flush_ingest(st, batch);
    }
}

/// Reply to one buffered client, settling its bill when it carries one.
fn answer(st: &ServerState, msg: &Incoming, bill: Option<Bill>, resp: Response) {
    match bill {
        Some(b) => b.settle(st, msg, resp),
        None => reply(msg, resp),
    }
}

/// Route a coalesced batch of client inserts: one pass under the index and
/// dirty locks routes every item, then one `BulkInsert` per shard goes out
/// (all in flight at once), and every buffered client is acknowledged
/// according to its shard's outcome.
///
/// Tracing note: coalesced ingest samples per *flush*, not per client
/// insert — a sampled flush becomes one `server_ingest_flush` root covering
/// the whole batch (the documented simplification for the coalesced path).
fn flush_ingest(st: &Arc<ServerState>, batch: Vec<(Item, Incoming, Option<Bill>)>) {
    if batch.is_empty() {
        return;
    }
    let op = format!("ingest_flush batch={}", batch.len());
    traced_root(st, "server_ingest_flush", &op, PrincipalId::NONE, |t| {
        flush_ingest_inner(st, batch, t)
    });
}

fn flush_ingest_inner(
    st: &Arc<ServerState>,
    batch: Vec<(Item, Incoming, Option<Bill>)>,
    trace: Option<&TraceCtx>,
) {
    let _timer = st.obs.ingest_flush_seconds.start();
    st.obs.inserts.add(batch.len() as u64);
    // Items whose routed shard lost its location mid-flush (retired by a
    // concurrent split) are re-routed through the refreshed index — see
    // `route_insert` for the race.
    let mut remaining = batch;
    for _ in 0..4 {
        let mut by_shard: HashMap<u64, (Vec<Item>, Vec<PendingReply>)> = HashMap::new();
        {
            let mut index = st.index.write();
            let mut dirty = st.dirty.lock();
            for (item, msg, bill) in remaining.drain(..) {
                let Some((shard, expanded)) = index.route_insert(&item) else {
                    answer(st, &msg, bill, Response::Err("no shards available".into()));
                    continue;
                };
                if expanded {
                    st.obs.expansions.inc();
                    st.obs.staleness.expansion(shard, &st.name);
                    let entry = dirty.entry(shard).or_insert_with(|| Mbr::empty(&st.schema));
                    entry.extend_item(&st.schema, &item);
                }
                let slot = by_shard.entry(shard).or_default();
                slot.0.push(item);
                slot.1.push((msg, bill));
            }
        }
        let mut requests: Vec<(String, Vec<u8>)> = Vec::with_capacity(by_shard.len());
        let mut waiters: Vec<Vec<(Incoming, Option<Bill>)>> = Vec::with_capacity(by_shard.len());
        for (shard, (items, msgs)) in by_shard {
            let Some(dest) = shard_location(st, shard) else {
                remaining.extend(
                    items.into_iter().zip(msgs).map(|(item, (msg, bill))| (item, msg, bill)),
                );
                continue;
            };
            requests.push((dest, Request::BulkInsert { shard, items }.encode()));
            waiters.push(msgs);
        }
        let replies = st.endpoint.request_many_traced(&requests, st.cfg.request_timeout, trace);
        for ((result, (dest, _)), msgs) in replies.into_iter().zip(&requests).zip(waiters) {
            let resp = match result {
                Ok(bytes) => match Response::decode(&st.schema, &bytes) {
                    Ok(Response::Ack) => Response::Ack,
                    Ok(Response::Err(e)) => Response::Err(e),
                    Ok(other) => Response::Err(format!("unexpected bulk response: {other:?}")),
                    Err(e) => Response::Err(format!("bad bulk response: {e}")),
                },
                Err(e) => Response::Err(format!("bulk to {dest} failed: {e}")),
            };
            for (m, bill) in msgs {
                // Each buffered item rode exactly one coalesced worker hop.
                let bill = bill.map(|mut b| {
                    b.cost.net_hops += 1;
                    b.cost.fanout = b.cost.fanout.max(1);
                    b
                });
                answer(st, &m, bill, resp.clone());
            }
        }
        if remaining.is_empty() {
            return;
        }
    }
    for (_, msg, bill) in remaining {
        answer(
            st,
            &msg,
            bill,
            Response::Err("no location for routed shard after re-route retries".into()),
        );
    }
}

/// Route a whole batch: one routing pass over the local image, then one
/// per-(worker, shard) bulk request fan-out.
fn route_bulk_insert(
    st: &Arc<ServerState>,
    items: Vec<Item>,
    trace: Option<&TraceCtx>,
    principal: PrincipalId,
    mut cost: Option<&mut CostVec>,
) -> Response {
    if items.is_empty() {
        return Response::Ack;
    }
    let _timer = st.obs.bulk_insert_seconds.start();
    st.obs.inserts.add(items.len() as u64);
    // Shards retired by a concurrent split mid-batch send their items back
    // through the refreshed index — see `route_insert` for the race.
    let mut remaining = items;
    for _ in 0..4 {
        // Phase 1: route everything under one index lock.
        let mut by_shard: HashMap<u64, Vec<Item>> = HashMap::new();
        {
            let mut index = st.index.write();
            let mut dirty = st.dirty.lock();
            for item in remaining.drain(..) {
                let Some((shard, expanded)) = index.route_insert(&item) else {
                    return Response::Err("no shards available".into());
                };
                if expanded {
                    st.obs.expansions.inc();
                    st.obs.staleness.expansion(shard, &st.name);
                    let entry = dirty.entry(shard).or_insert_with(|| Mbr::empty(&st.schema));
                    entry.extend_item(&st.schema, &item);
                }
                by_shard.entry(shard).or_default().push(item);
            }
        }
        // Phase 2: one bulk request per shard, all in flight at once.
        let mut requests: Vec<(String, Vec<u8>)> = Vec::with_capacity(by_shard.len());
        for (shard, items) in by_shard {
            let Some(dest) = shard_location(st, shard) else {
                remaining.extend(items);
                continue;
            };
            requests.push((dest, Request::BulkInsert { shard, items }.encode()));
        }
        if let Some(c) = cost.as_deref_mut() {
            c.net_hops += requests.len() as u64;
            c.fanout = c.fanout.max(requests.len() as u64);
        }
        for (reply, (dest, _)) in st
            .endpoint
            .request_many_tagged(&requests, st.cfg.request_timeout, trace, principal.0)
            .into_iter()
            .zip(&requests)
        {
            match reply {
                Ok(bytes) => match Response::decode(&st.schema, &bytes) {
                    Ok(Response::Ack) => {}
                    Ok(Response::Err(e)) => return Response::Err(e),
                    Ok(other) => return Response::Err(format!("unexpected bulk response: {other:?}")),
                    Err(e) => return Response::Err(format!("bulk to {dest} failed: {e}")),
                },
                Err(e) => return Response::Err(format!("bulk to {dest} failed: {e}")),
            }
        }
        if remaining.is_empty() {
            return Response::Ack;
        }
    }
    Response::Err("no location for routed shard after re-route retries".into())
}

fn route_query(
    st: &Arc<ServerState>,
    query: &QueryBox,
    trace: Option<&TraceCtx>,
    principal: PrincipalId,
    cost: Option<&mut CostVec>,
) -> Response {
    if let Some(cost) = cost {
        // Tagged: ride the ANALYZE scatter so the per-shard traversal
        // counters (rows scanned, nodes visited, rollup hits) are charged
        // to the principal, then strip the plan — the client still gets
        // the plain aggregate response it asked for.
        return match route_query_analyzed(st, query, trace, principal, Some(cost)) {
            Response::AggPlan { agg, shards_searched, .. } => {
                Response::Agg { agg, shards_searched }
            }
            other => other,
        };
    }
    let _timer = st.obs.query_seconds.start();
    st.obs.queries.inc();
    let shard_ids = st.index.read().route_query(query);
    if shard_ids.is_empty() {
        return Response::Agg { agg: Aggregate::empty(), shards_searched: 0 };
    }
    // Group by worker and scatter.
    let mut by_worker: HashMap<String, Vec<u64>> = HashMap::new();
    {
        let locations = st.locations.read();
        for id in shard_ids {
            match locations.get(&id) {
                Some(w) => by_worker.entry(w.clone()).or_default().push(id),
                None => continue, // stale: shard disappeared between index and map
            }
        }
    }
    // Asynchronous scatter/gather: all worker requests go out at once and
    // the replies are demultiplexed by correlation ID — one round trip of
    // query latency regardless of fan-out (the ZeroMQ pattern of §III-B).
    let requests: Vec<(String, Vec<u8>)> = by_worker
        .into_iter()
        .map(|(dest, ids)| (dest, Request::Query { shards: ids, query: query.clone() }.encode()))
        .collect();
    let replies = st.endpoint.request_many_traced(&requests, st.cfg.request_timeout, trace);
    let mut agg = Aggregate::empty();
    let mut searched = 0u32;
    for (reply, (dest, _)) in replies.into_iter().zip(&requests) {
        let resp = match reply {
            Ok(bytes) => Response::decode(&st.schema, &bytes)
                .unwrap_or_else(|e| Response::Err(format!("bad worker response: {e}"))),
            Err(e) => Response::Err(format!("query to {dest} failed: {e}")),
        };
        match resp {
            Response::Agg { agg: a, shards_searched } => {
                agg.merge(&a);
                searched += shards_searched;
            }
            Response::Err(e) => return Response::Err(e),
            _ => return Response::Err("unexpected worker response".into()),
        }
    }
    Response::Agg { agg, shards_searched: searched }
}

/// The ANALYZE'd counterpart of [`route_query`]: same routing, same
/// scatter/gather, but the routing decision is recorded — the exact image
/// leaves matched, the image generation and measured staleness *at decision
/// time* — and workers are asked for per-shard execution stats, assembled
/// here into one [`QueryPlan`] returned alongside the aggregate.
fn route_query_analyzed(
    st: &Arc<ServerState>,
    query: &QueryBox,
    trace: Option<&TraceCtx>,
    principal: PrincipalId,
    cost: Option<&mut CostVec>,
) -> Response {
    let wall = Instant::now();
    let _timer = st.obs.query_seconds.start();
    st.obs.queries.inc();
    // Stamp the decision context *before* routing so the plan reflects what
    // the server knew when it chose.
    let image_generation = st.generation.load(Ordering::Relaxed);
    let staleness = st.obs.staleness.snapshot();
    let route_start = Instant::now();
    let mut shard_ids = st.index.read().route_query(query);
    let route_us = route_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shard_ids.sort_unstable();
    let mut plan = QueryPlan {
        server: st.name.clone(),
        image_generation,
        staleness_samples: staleness.count,
        staleness_p95_us: (staleness.quantile(0.95) * 1e6) as u64,
        image_leaves: shard_ids.clone(),
        route_us,
        wall_us: 0,
        workers: Vec::new(),
    };
    if shard_ids.is_empty() {
        plan.wall_us = wall.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        return Response::AggPlan { agg: Aggregate::empty(), shards_searched: 0, plan };
    }
    let mut by_worker: HashMap<String, Vec<u64>> = HashMap::new();
    {
        let locations = st.locations.read();
        for &id in &shard_ids {
            match locations.get(&id) {
                Some(w) => by_worker.entry(w.clone()).or_default().push(id),
                None => continue, // stale: shard disappeared between index and map
            }
        }
    }
    let requests: Vec<(String, Vec<u8>)> = by_worker
        .into_iter()
        .map(|(dest, ids)| {
            (dest, Request::QueryAnalyze { shards: ids, query: query.clone() }.encode())
        })
        .collect();
    let replies = st.endpoint.request_many_tagged(&requests, st.cfg.request_timeout, trace, principal.0);
    let mut agg = Aggregate::empty();
    let mut searched = 0u32;
    for (reply, (dest, _)) in replies.into_iter().zip(&requests) {
        let resp = match reply {
            Ok(bytes) => Response::decode(&st.schema, &bytes)
                .unwrap_or_else(|e| Response::Err(format!("bad worker response: {e}"))),
            Err(e) => Response::Err(format!("query to {dest} failed: {e}")),
        };
        match resp {
            Response::AggExec { agg: a, shards_searched, exec } => {
                agg.merge(&a);
                searched += shards_searched;
                plan.workers.push(exec);
            }
            Response::Err(e) => return Response::Err(e),
            _ => return Response::Err("unexpected worker response".into()),
        }
    }
    plan.workers.sort_by(|a, b| a.worker.cmp(&b.worker));
    plan.wall_us = wall.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    if let Some(cost) = cost {
        let totals = plan.totals();
        cost.rows_scanned += totals.items_scanned;
        cost.nodes_visited += totals.nodes_visited;
        cost.rollup_hits += totals.rollup_hits;
        cost.net_hops += requests.len() as u64;
        cost.fanout = cost.fanout.max(requests.len() as u64);
    }
    Response::AggPlan { agg, shards_searched: searched, plan }
}
