//! Query introspection integration: distributed EXPLAIN/ANALYZE plans,
//! per-shard heat maps, and the load-balance audit trail.
//!
//! The acceptance workload: an ANALYZE'd query over ≥ 2 servers / ≥ 4
//! shards must return a [`QueryPlan`] whose per-shard traversal counters
//! sum to an independently measured trace of the same query, whose routing
//! section names the exact image leaves contacted, and which round-trips
//! losslessly through both the binary and JSON encodings.

use std::time::{Duration, Instant};

use volap::worker::{create_empty_shard, spawn_worker};
use volap::{Cluster, ImageStore, QueryPlan, Request, Response, VolapConfig};
use volap_coord::CoordService;
use volap_data::{DataGen, QueryGen};
use volap_dims::{Item, QueryBox, Schema};
use volap_net::Network;
use volap_obs::Trace;
use volap_tree::{build_store, QueryTrace};

fn eventually(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// Four pairwise well-separated corners of a `Schema::uniform(3, 2, 8)`
/// space (64 leaves per dimension): routed by minimal box enlargement,
/// each occupies its own empty shard, guaranteeing four non-empty shards.
fn corner_items() -> Vec<Item> {
    [[0, 0, 0], [63, 63, 0], [63, 0, 63], [0, 63, 63]]
        .iter()
        .map(|c| Item::new(c.to_vec(), 1.0))
        .collect()
}

/// Sum the traversal counters of every `tree_exec` span in a trace — the
/// independent measurement an ANALYZE plan must agree with.
fn trace_totals(trace: &Trace) -> QueryTrace {
    let mut t = QueryTrace::default();
    for span in trace.spans.iter().filter(|s| s.name == "tree_exec") {
        let get = |k: &str| span.annotation(k).unwrap().parse::<u64>().unwrap();
        t.merge(&QueryTrace {
            nodes_visited: get("nodes_visited"),
            covered_hits: get("covered_hits"),
            items_scanned: get("items_scanned"),
            pruned: get("pruned"),
            rollup_hits: get("rollup_hits"),
        });
    }
    t
}

#[test]
fn analyze_plan_matches_independent_trace_across_cluster() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2; // 4 shards
    cfg.manager_enabled = false; // stable shard set -> deterministic counters
    cfg.trace_sample = 1; // sample everything
    cfg.trace_slow_threshold = Duration::ZERO; // every root enters the recorder
    let cluster = Cluster::start(cfg);
    assert_eq!(cluster.shard_count(), 4);

    let ingest = cluster.client_on(0);
    for item in corner_items() {
        ingest.insert(&item).expect("corner insert");
    }
    let mut gen = DataGen::new(&schema, 11, 1.2);
    ingest.bulk_insert(gen.items(2000)).expect("bulk");
    const TOTAL: u64 = 2004;

    // Query through the *other* server; poll until its image converged.
    let client = cluster.client_on(1);
    let q = QueryBox::all(&schema);
    assert!(
        eventually(Duration::from_secs(10), || client
            .query(&q)
            .is_ok_and(|(agg, _)| agg.count == TOTAL)),
        "server-1's image never converged"
    );

    // Independent measurement: one fully sampled plain query records a
    // tree_exec span (with exact traversal counters) per scanned shard.
    let (plain_agg, plain_shards) = client.query(&q).expect("plain query");
    assert_eq!(plain_agg.count, TOTAL);
    assert_eq!(plain_shards, 4);
    let slow = cluster.slow_traces();
    let trace = slow
        .iter()
        .rev()
        .find(|t| t.root().is_some_and(|r| r.annotation("op") == Some("query")))
        .expect("plain query trace recorded");
    let expected = trace_totals(trace);
    assert!(expected.nodes_visited > 0, "trace measured real traversal work");

    // The ANALYZE'd run of the same query over the same (static) data.
    let (agg, shards_searched, plan) = client.query_analyze(&q).expect("analyze");
    assert_eq!(agg.count, TOTAL, "ANALYZE returns the same aggregate");
    assert_eq!(agg.sum, plain_agg.sum);
    assert_eq!(shards_searched, 4);

    // Routing section: the exact image leaves contacted, stamped with the
    // image state at decision time.
    assert_eq!(plan.server, "server-1");
    assert!(plan.image_generation > 0, "bootstrap applied image records");
    let mut leaves = plan.image_leaves.clone();
    leaves.sort_unstable();
    assert_eq!(plan.image_leaves, leaves, "image leaves arrive sorted");
    assert_eq!(plan.image_leaves.len(), 4);
    let mut requested: Vec<u64> =
        plan.workers.iter().flat_map(|w| w.requested.iter().copied()).collect();
    requested.sort_unstable();
    assert_eq!(requested, plan.image_leaves, "workers were asked exactly the routed leaves");
    assert_eq!(plan.executed_shards(), plan.image_leaves, "every routed leaf was scanned");

    // Worker sections: both workers, sorted, two local shards each, no
    // aliases or forwards in a stable cluster, fan-out = local scan count.
    assert_eq!(plan.workers.len(), 2);
    assert!(plan.workers.windows(2).all(|w| w[0].worker < w[1].worker));
    for w in &plan.workers {
        assert_eq!(w.shards.len(), 2);
        assert_eq!(w.alias_chases, 0);
        assert_eq!(w.fanout, 2, "both local scans fanned out over the query pool");
        assert!(w.forwards.is_empty());
        for s in &w.shards {
            assert!(s.items > 0, "seeded shards are non-empty");
        }
    }

    // The tentpole equality: per-shard counters in the plan sum to the
    // independently traced totals of the same query.
    let totals = plan.totals();
    assert_eq!(totals.nodes_visited, expected.nodes_visited, "nodes_visited");
    assert_eq!(totals.covered_hits, expected.covered_hits, "covered_hits");
    assert_eq!(totals.items_scanned, expected.items_scanned, "items_scanned");
    assert_eq!(totals.pruned, expected.pruned, "pruned");

    // Both encodings are lossless on a real plan; the renderer shows it.
    assert_eq!(QueryPlan::decode(&plan.encode()).expect("binary decodes"), plan);
    assert_eq!(QueryPlan::from_json(&plan.to_json()).expect("JSON parses"), plan);
    let rendered = plan.render();
    assert!(rendered.contains("server-1"));
    for w in &plan.workers {
        assert!(rendered.contains(&w.worker));
    }

    // The ANALYZE'd request itself is traced under its own op, so the
    // flight recorder and the plan can be joined.
    assert!(
        cluster
            .slow_traces()
            .iter()
            .any(|t| t.root().is_some_and(|r| r.annotation("op") == Some("query_analyze"))),
        "analyze run recorded its own trace"
    );

    // Satellite: shard_adopt events (bootstrap adoptions) carry the image
    // generation stamp that joins them to plans and staleness probes.
    let snap = cluster.snapshot();
    let adopts: Vec<_> = snap.events_of("shard_adopt").collect();
    assert!(!adopts.is_empty(), "bootstrap logged adoptions");
    for ev in &adopts {
        assert!(ev.detail.contains("gen="), "shard_adopt enriched: {}", ev.detail);
        assert!(ev.detail.contains("worker="), "shard_adopt names its worker: {}", ev.detail);
    }
    for ev in snap.events_of("route_miss") {
        assert!(ev.detail.contains("server=") && ev.detail.contains("image_gen="));
    }
    cluster.shutdown();
}

/// Deterministic single-shard exactness: drive one worker over the wire,
/// mirror its only shard in a locally built store fed the same items in
/// the same order, and require the ANALYZE counters to equal the mirror's
/// [`ShardStore::query_traced`] exactly — for several query shapes.
#[test]
fn single_shard_analyze_equals_local_traced_run() {
    let schema = Schema::uniform(3, 2, 8);
    let net = Network::new();
    let image = ImageStore::new(CoordService::new(), schema.clone());
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.worker_threads = 2;
    let driver = net.endpoint("driver");
    let w = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, Duration::from_secs(5)).unwrap();

    let mut gen = DataGen::new(&schema, 21, 1.3);
    let items = gen.items(1500);
    let bytes = driver
        .request("w0", Request::BulkInsert { shard: 1, items: items.clone() }.encode(), Duration::from_secs(5))
        .expect("bulk");
    assert_eq!(Response::decode(&schema, &bytes).unwrap(), Response::Ack);

    // The mirror: same store kind, same tree config, same items in the same
    // order — bulk_insert is deterministic, so the trees are identical.
    let mirror = build_store(cfg.store_kind, &schema, &cfg.tree);
    mirror.bulk_insert(items.clone());

    let mut qgen = QueryGen::new(&schema, 22, 0.2);
    let mut queries = vec![QueryBox::all(&schema)];
    for _ in 0..8 {
        queries.push(qgen.query(&items));
    }
    for q in &queries {
        let bytes = driver
            .request(
                "w0",
                Request::QueryAnalyze { shards: vec![1], query: q.clone() }.encode(),
                Duration::from_secs(5),
            )
            .expect("analyze request");
        let (agg, exec) = match Response::decode(&schema, &bytes).expect("decode") {
            Response::AggExec { agg, shards_searched, exec } => {
                assert_eq!(shards_searched, 1);
                (agg, exec)
            }
            other => panic!("unexpected {other:?}"),
        };
        let (magg, mtrace) = mirror.query_traced(q);
        assert_eq!(agg.count, magg.count, "aggregate count matches the mirror");
        assert_eq!(exec.shards.len(), 1);
        let s = &exec.shards[0];
        assert_eq!(s.shard, 1);
        assert_eq!(s.items, mirror.len());
        assert_eq!(s.trace(), mtrace, "ANALYZE counters equal the mirror's QueryTrace exactly");
        assert!(exec.forwards.is_empty());
        assert_eq!(exec.requested, vec![1]);
        assert_eq!(exec.fanout, 1, "single scan never fans out");
    }
    w.stop();
}

/// Heat accounting is exact under simultaneous insert and query load
/// across 4 shards: no bump is lost, totals published by the stats thread
/// converge to the precise workload counts, and the runtime toggle freezes
/// the counters.
#[test]
fn heat_totals_are_exact_under_concurrent_load() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2; // 4 shards
    cfg.manager_enabled = false;
    cfg.stats_period = Duration::from_millis(25);
    cfg.heat_halflife = Duration::from_millis(500);
    let cluster = Cluster::start(cfg);
    let ingest = cluster.client_on(0);
    for item in corner_items() {
        ingest.insert(&item).expect("corner insert");
    }

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 500;
    const QUERIES: u64 = 60;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let client = cluster.client_on(t as usize % 2);
            let schema = schema.clone();
            s.spawn(move || {
                let mut gen = DataGen::new(&schema, 100 + t, 1.2);
                for item in gen.items(PER_THREAD as usize) {
                    client.insert(&item).expect("insert");
                }
            });
        }
        for t in 0..2 {
            let client = cluster.client_on(t);
            let schema = schema.clone();
            s.spawn(move || {
                for _ in 0..QUERIES / 2 {
                    client.query(&QueryBox::all(&schema)).expect("query");
                }
            });
        }
    });

    const INSERTS: u64 = THREADS * PER_THREAD + 4;
    let insert_total =
        |c: &Cluster| c.heatmap().iter().map(|e| e.inserts_total).sum::<u64>();
    assert!(
        eventually(Duration::from_secs(10), || insert_total(&cluster) == INSERTS),
        "published heat never converged to the exact insert count: {} != {INSERTS}",
        insert_total(&cluster)
    );
    let heat = cluster.heatmap();
    assert_eq!(heat.len(), 4, "one entry per live shard");
    assert!(heat.windows(2).all(|w| w[0].shard < w[1].shard), "ordered by shard id");
    let query_total: u64 = heat.iter().map(|e| e.queries_total).sum();
    // Every full-space query scans every non-empty shard; the early ones may
    // have seen fewer than 4 shards populated, hence >= and a sane cap.
    assert!(query_total >= QUERIES, "queries counted: {query_total}");
    assert!(query_total <= QUERIES * 4 + 16);
    for e in &heat {
        assert!(e.worker.starts_with("worker-"));
        assert!(e.items > 0);
        assert!((0.0..=1.0).contains(&e.volume_frac) && e.volume_frac > 0.0);
        assert!(e.insert_rate.is_finite() && e.insert_rate >= 0.0);
        assert!(e.query_rate.is_finite() && e.query_rate >= 0.0);
    }

    // Runtime toggle: disabled heat stops counting and publishing; totals
    // freeze at their exact values.
    cluster.obs().heat().set_enabled(false);
    let mut gen = DataGen::new(&schema, 999, 1.2);
    ingest.bulk_insert(gen.items(300)).expect("bulk");
    std::thread::sleep(Duration::from_millis(150)); // a few stats periods
    assert_eq!(insert_total(&cluster), INSERTS, "disabled heat counts nothing");
    cluster.shutdown();
}

/// The manager's split decisions land in the audit trail with the inputs
/// that drove them, the resulting shard ids, and an outcome.
#[test]
fn balance_audit_records_split_decisions() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 2;
    cfg.max_shard_items = 400; // force splits
    cfg.manager_period = Duration::from_millis(30);
    cfg.stats_period = Duration::from_millis(25);
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 9, 1.4);
    client.bulk_insert(gen.items(3000)).expect("bulk");
    assert!(
        eventually(Duration::from_secs(15), || cluster
            .balance_audit()
            .iter()
            .any(|d| d.action == "split" && d.outcome == "ok")),
        "no successful split decision audited"
    );
    let audit = cluster.balance_audit();
    assert!(audit.windows(2).all(|w| w[0].seq < w[1].seq), "sequence ordered");
    let split = audit.iter().find(|d| d.action == "split" && d.outcome == "ok").unwrap();
    assert!(split.src.starts_with("worker-"), "decision names the holding worker");
    assert_eq!(split.result_shards.len(), 2, "a split yields two shard ids");
    assert!(split.result_shards[0] < split.result_shards[1]);
    let input = |k: &str| {
        split.inputs.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone())
    };
    let len: u64 = input("len").expect("len input").parse().unwrap();
    let max: u64 = input("max_shard_items").expect("threshold input").parse().unwrap();
    assert!(len > max, "the audited inputs justify the decision: {len} <= {max}");
    assert_eq!(max, 400);
    // Heat was on (the default), so by the time a shard grew past the
    // threshold at least one stats period had published its rates.
    assert!(input("insert_rate").is_some(), "decision carries heat inputs: {:?}", split.inputs);
    // The split decision joins to the resulting shards in the image.
    let shards: Vec<u64> = cluster.image().shards().iter().map(|r| r.id).collect();
    assert!(
        split.result_shards.iter().all(|s| shards.contains(s))
            || cluster.balance_counts().0 > 1,
        "result shards exist (unless split again later)"
    );
    cluster.shutdown();
}
