//! Causal tracing: propagated trace context, a sharded span collector, and
//! a slow-query flight recorder.
//!
//! Aggregate metrics (the [`crate::registry`]) answer "how fast is the
//! system"; this module answers "*why was this one request slow*". A
//! [`TraceCtx`] is minted at the request's entry point (head-based
//! sampling: the decision is made once and inherited by everything
//! downstream) and rides inside every network envelope the request causes,
//! so causality survives server→worker hops, scatter/gather fan-outs, and
//! insertion-queue detours during shard migration. Each component wraps its
//! stage in a named span ([`Tracer::span`]), optionally annotated with
//! `key:value` details (shard id, items scanned, batch size); completed
//! spans land in a bounded, 16-shard collector (the same thread-ordinal
//! design as the event ring, so recording never contends in steady state).
//!
//! When the *root* span finishes, the trace is assembled into a tree and,
//! if it exceeded the slow threshold, pushed into the **flight recorder** —
//! a bounded ring of the most recent slow traces, retrievable after the
//! fact (`Cluster::slow_traces()` upstream) without having had any
//! per-request logging enabled.
//!
//! The unsampled hot path is one relaxed load and one branch
//! ([`Tracer::sample_root`] with sampling off); everything below only runs
//! for sampled requests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::events::thread_ordinal;

/// Number of collector shards (same rationale as the event ring).
const SHARDS: usize = 16;

std::thread_local! {
    /// `(trace_id, span_id)` of the innermost [`SpanGuard`] open on this
    /// thread — backtrace-lite context for lock-order violations. `(0, 0)`
    /// when no span is open.
    static CURRENT_SPAN: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// The innermost traced span open on the calling thread, as
/// `(trace_id, span_id)`; `None` when the thread is not inside a sampled
/// span. Used by the lock-order checker to tie a violation to the request
/// that triggered it.
pub fn current_span() -> Option<(u64, u64)> {
    let cur = CURRENT_SPAN.with(|c| c.get());
    if cur == (0, 0) {
        None
    } else {
        Some(cur)
    }
}

/// The propagated trace context: one context names one span. Children are
/// derived with [`Tracer::child`], which allocates a fresh span id and
/// records the parent edge — the paper-standard Dapper model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace this request belongs to (all spans share it).
    pub trace_id: u64,
    /// This context's own span.
    pub span_id: u64,
    /// The span that caused this one (0 at the root).
    pub parent_span_id: u64,
    /// Head-based sampling decision, inherited by every child. Unsampled
    /// contexts are never created by [`Tracer::sample_root`]; the flag
    /// exists so embedders can thread a "definitely off" context.
    pub sampled: bool,
}

/// One completed (named, timed, annotated) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Owning trace.
    pub trace_id: u64,
    /// This span's id (unique within the tracer).
    pub span_id: u64,
    /// Causal parent (0 for the root).
    pub parent_span_id: u64,
    /// Stage name, e.g. `"server_route"`, `"net_hop"`, `"tree_exec"`.
    pub name: String,
    /// Start, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// End, microseconds since the tracer's epoch.
    pub end_us: u64,
    /// Free-form `key:value` annotations (shard id, items scanned, …).
    pub annotations: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Look up one annotation by key.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// An assembled trace: every collected span of one `trace_id`, in canonical
/// `(start_us, span_id)` order (the root first when spans nest properly).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The trace id.
    pub trace_id: u64,
    /// Spans in canonical order.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    fn canonicalize(&mut self) {
        self.spans.sort_by_key(|s| (s.start_us, s.span_id));
    }

    /// The root span: the span whose parent is 0 (or whose parent was never
    /// collected), earliest-starting if several qualify.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .find(|s| {
                s.parent_span_id == 0
                    || !self.spans.iter().any(|p| p.span_id == s.parent_span_id)
            })
            .or(self.spans.first())
    }

    /// Direct children of `span_id`, in canonical order.
    pub fn children_of(&self, span_id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent_span_id == span_id).collect()
    }

    /// Render an indented span tree (one line per span) for terminals.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let Some(root) = self.root() else { return out };
        out.push_str(&format!("trace {} ({} us, {} spans)\n", self.trace_id, root.duration_us(), self.spans.len()));
        self.render_span(&mut out, root, 1);
        out
    }

    fn render_span(&self, out: &mut String, span: &SpanRecord, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&span.name);
        for (k, v) in &span.annotations {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push_str(&format!(" ({} us)\n", span.duration_us()));
        for child in self.children_of(span.span_id) {
            self.render_span(out, child, depth + 1);
        }
    }

    /// Lossless internal wire format (length-prefixed; see [`Trace::decode`]).
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(buf: &mut Vec<u8>, s: &str) {
            buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        let mut buf = Vec::with_capacity(64 + self.spans.len() * 64);
        buf.extend_from_slice(&self.trace_id.to_be_bytes());
        buf.extend_from_slice(&(self.spans.len() as u32).to_be_bytes());
        for s in &self.spans {
            buf.extend_from_slice(&s.span_id.to_be_bytes());
            buf.extend_from_slice(&s.parent_span_id.to_be_bytes());
            buf.extend_from_slice(&s.start_us.to_be_bytes());
            buf.extend_from_slice(&s.end_us.to_be_bytes());
            put_str(&mut buf, &s.name);
            buf.extend_from_slice(&(s.annotations.len() as u32).to_be_bytes());
            for (k, v) in &s.annotations {
                put_str(&mut buf, k);
                put_str(&mut buf, v);
            }
        }
        buf
    }

    /// Inverse of [`Trace::encode`].
    pub fn decode(data: &[u8]) -> Result<Trace, String> {
        struct Cur<'a>(&'a [u8]);
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
                if self.0.len() < n {
                    return Err("truncated trace blob".into());
                }
                let (head, tail) = self.0.split_at(n);
                self.0 = tail;
                Ok(head)
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn str(&mut self) -> Result<String, String> {
                let n = self.u32()? as usize;
                String::from_utf8(self.take(n)?.to_vec()).map_err(|e| e.to_string())
            }
        }
        let mut cur = Cur(data);
        let trace_id = cur.u64()?;
        let n = cur.u32()? as usize;
        let mut spans = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let span_id = cur.u64()?;
            let parent_span_id = cur.u64()?;
            let start_us = cur.u64()?;
            let end_us = cur.u64()?;
            let name = cur.str()?;
            let an = cur.u32()? as usize;
            let mut annotations = Vec::with_capacity(an.min(1 << 12));
            for _ in 0..an {
                let k = cur.str()?;
                let v = cur.str()?;
                annotations.push((k, v));
            }
            spans.push(SpanRecord { trace_id, span_id, parent_span_id, name, start_us, end_us, annotations });
        }
        if !cur.0.is_empty() {
            return Err("trailing bytes after trace blob".into());
        }
        Ok(Trace { trace_id, spans })
    }
}

/// Sizing and switches for one [`Tracer`].
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Head-based sampling rate: sample one root in every `sample` requests
    /// (`0` = tracing off, `1` = every request). With `0` the entire record
    /// path is one relaxed load + branch.
    pub sample: u32,
    /// Root spans at least this long enter the flight recorder.
    pub slow_threshold: Duration,
    /// Completed spans retained across the collector shards.
    pub span_capacity: usize,
    /// Slow traces retained by the flight recorder.
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample: 0,
            slow_threshold: Duration::from_millis(100),
            span_capacity: 8192,
            slow_capacity: 32,
        }
    }
}

struct TracerInner {
    epoch: Instant,
    /// `0` disables sampling entirely (the common production-off state).
    sample_every: AtomicU32,
    sample_tick: AtomicU64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    slow_threshold_ns: AtomicU64,
    /// Per-shard bounded rings of completed spans.
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    cap_per_shard: usize,
    /// Spans evicted by ring overflow.
    dropped: AtomicU64,
    /// The flight recorder: most recent slow traces, oldest evicted.
    slow: Mutex<VecDeque<Trace>>,
    slow_cap: usize,
}

/// The tracing engine. Cheap to clone; clones share all state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl Tracer {
    /// Build a tracer.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                sample_every: AtomicU32::new(cfg.sample),
                sample_tick: AtomicU64::new(0),
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                slow_threshold_ns: AtomicU64::new(
                    cfg.slow_threshold.as_nanos().min(u128::from(u64::MAX)) as u64,
                ),
                shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
                cap_per_shard: (cfg.span_capacity / SHARDS).max(4),
                dropped: AtomicU64::new(0),
                slow: Mutex::new(VecDeque::new()),
                slow_cap: cfg.slow_capacity.max(1),
            }),
        }
    }

    /// Change the sampling rate at runtime (`0` = off, `n` = 1-in-`n`).
    pub fn set_sample_every(&self, n: u32) {
        self.inner.sample_every.store(n, Ordering::Relaxed);
    }

    /// Current sampling rate.
    pub fn sample_every(&self) -> u32 {
        self.inner.sample_every.load(Ordering::Relaxed)
    }

    /// Change the slow-trace threshold at runtime.
    pub fn set_slow_threshold(&self, d: Duration) {
        self.inner
            .slow_threshold_ns
            .store(d.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }

    /// Microseconds since this tracer's epoch.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Head-based sampling decision for a new request. **This is the hot
    /// path**: with sampling off it is one relaxed load and one branch.
    #[inline]
    pub fn sample_root(&self) -> Option<TraceCtx> {
        let every = self.inner.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let tick = self.inner.sample_tick.fetch_add(1, Ordering::Relaxed);
        if !tick.is_multiple_of(u64::from(every)) {
            return None;
        }
        Some(TraceCtx {
            trace_id: self.inner.next_trace.fetch_add(1, Ordering::Relaxed),
            span_id: self.inner.next_span.fetch_add(1, Ordering::Relaxed),
            parent_span_id: 0,
            sampled: true,
        })
    }

    /// Derive a child context (fresh span id, parent edge to `ctx`).
    #[inline]
    pub fn child(&self, ctx: &TraceCtx) -> TraceCtx {
        TraceCtx {
            trace_id: ctx.trace_id,
            span_id: self.inner.next_span.fetch_add(1, Ordering::Relaxed),
            parent_span_id: ctx.span_id,
            sampled: ctx.sampled,
        }
    }

    /// Open the span named by `ctx` (one context = one span). Records on
    /// drop; annotate along the way.
    pub fn span(&self, ctx: &TraceCtx, name: &'static str) -> SpanGuard {
        let prev_span = CURRENT_SPAN.with(|c| c.replace((ctx.trace_id, ctx.span_id)));
        SpanGuard {
            tracer: self.clone(),
            ctx: *ctx,
            name,
            start: Instant::now(),
            start_us: self.now_us(),
            annotations: Vec::new(),
            armed: true,
            prev_span,
        }
    }

    /// Record a span whose interval was measured externally (e.g. the time
    /// an envelope spent in a receive queue). Allocates its own span id as
    /// a child of `parent`.
    pub fn record_manual(
        &self,
        parent: &TraceCtx,
        name: &str,
        start_us: u64,
        end_us: u64,
        annotations: Vec<(String, String)>,
    ) {
        self.record(SpanRecord {
            trace_id: parent.trace_id,
            span_id: self.inner.next_span.fetch_add(1, Ordering::Relaxed),
            parent_span_id: parent.span_id,
            name: name.to_string(),
            start_us,
            end_us,
            annotations,
        });
    }

    fn record(&self, span: SpanRecord) {
        let inner = &*self.inner;
        let slot = thread_ordinal() % SHARDS;
        let mut ring = inner.shards[slot].lock().unwrap();
        if ring.len() >= inner.cap_per_shard {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Spans evicted by collector overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot every retained span, in canonical order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            all.extend(shard.lock().unwrap().iter().cloned());
        }
        all.sort_by_key(|s| (s.start_us, s.span_id));
        all
    }

    /// Assemble every retained span of one trace. `None` when the collector
    /// holds nothing for it (never sampled, or fully evicted).
    pub fn assemble(&self, trace_id: u64) -> Option<Trace> {
        let mut spans = Vec::new();
        for shard in &self.inner.shards {
            spans.extend(shard.lock().unwrap().iter().filter(|s| s.trace_id == trace_id).cloned());
        }
        if spans.is_empty() {
            return None;
        }
        let mut trace = Trace { trace_id, spans };
        trace.canonicalize();
        Some(trace)
    }

    /// Called by the component that owns the root span once it has finished:
    /// if the root took at least the slow threshold, the assembled trace
    /// enters the flight recorder.
    pub fn complete_root(&self, ctx: &TraceCtx, root_duration: Duration) {
        let threshold = self.inner.slow_threshold_ns.load(Ordering::Relaxed);
        let dur = root_duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        if dur < threshold {
            return;
        }
        if let Some(trace) = self.assemble(ctx.trace_id) {
            let mut slow = self.inner.slow.lock().unwrap();
            if slow.len() >= self.inner.slow_cap {
                slow.pop_front();
            }
            slow.push_back(trace);
        }
    }

    /// The flight recorder's contents, oldest first.
    pub fn slow_traces(&self) -> Vec<Trace> {
        self.inner.slow.lock().unwrap().iter().cloned().collect()
    }
}

/// A drop-recording span from [`Tracer::span`]: covers every early-return
/// path of a handler; call [`SpanGuard::finish`] to record eagerly and get
/// the duration (the root span needs it for the slow-trace decision).
pub struct SpanGuard {
    tracer: Tracer,
    ctx: TraceCtx,
    name: &'static str,
    start: Instant,
    start_us: u64,
    annotations: Vec<(String, String)>,
    armed: bool,
    /// The thread's previous [`current_span`], restored when this records.
    prev_span: (u64, u64),
}

impl SpanGuard {
    /// Attach one `key:value` annotation.
    pub fn annotate(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.annotations.push((key.into(), value.into()));
    }

    /// The context this span records under.
    pub fn ctx(&self) -> &TraceCtx {
        &self.ctx
    }

    /// Record now and return the measured duration.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.record_now();
        dur
    }

    fn record_now(&mut self) {
        if !self.armed {
            return;
        }
        self.armed = false;
        CURRENT_SPAN.with(|c| c.set(self.prev_span));
        self.tracer.record(SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span_id: self.ctx.parent_span_id,
            name: self.name.to_string(),
            start_us: self.start_us,
            end_us: self.tracer.now_us(),
            annotations: std::mem::take(&mut self.annotations),
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always_on() -> Tracer {
        Tracer::new(TraceConfig {
            sample: 1,
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        })
    }

    #[test]
    fn sampling_off_yields_no_contexts() {
        let t = Tracer::new(TraceConfig::default());
        assert_eq!(t.sample_every(), 0);
        for _ in 0..100 {
            assert!(t.sample_root().is_none());
        }
        assert!(t.spans().is_empty());
    }

    #[test]
    fn one_in_n_sampling_rate() {
        let t = Tracer::new(TraceConfig { sample: 4, ..TraceConfig::default() });
        let sampled = (0..400).filter(|_| t.sample_root().is_some()).count();
        assert_eq!(sampled, 100);
    }

    #[test]
    fn spans_assemble_into_a_tree() {
        let t = always_on();
        let root = t.sample_root().unwrap();
        {
            let mut g = t.span(&root, "server_route");
            g.annotate("server", "s0");
            let hop = t.child(&root);
            {
                let mut h = t.span(&hop, "net_hop");
                h.annotate("dest", "w0");
                t.record_manual(&hop, "worker_queue", 1, 2, vec![("worker".into(), "w0".into())]);
            }
        }
        let trace = t.assemble(root.trace_id).expect("trace assembled");
        assert_eq!(trace.spans.len(), 3);
        let r = trace.root().unwrap();
        assert_eq!(r.name, "server_route");
        assert_eq!(r.parent_span_id, 0);
        assert_eq!(r.annotation("server"), Some("s0"));
        let hops = trace.children_of(r.span_id);
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].name, "net_hop");
        let leaves = trace.children_of(hops[0].span_id);
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].name, "worker_queue");
        assert!(trace.render_tree().contains("net_hop dest=w0"));
    }

    #[test]
    fn flight_recorder_keeps_slow_traces_bounded() {
        let t = Tracer::new(TraceConfig {
            sample: 1,
            slow_threshold: Duration::ZERO,
            slow_capacity: 2,
            ..TraceConfig::default()
        });
        let mut ids = Vec::new();
        for _ in 0..4 {
            let root = t.sample_root().unwrap();
            let g = t.span(&root, "op");
            let d = g.finish();
            t.complete_root(&root, d);
            ids.push(root.trace_id);
        }
        let slow = t.slow_traces();
        assert_eq!(slow.len(), 2, "ring bounded");
        assert_eq!(slow[0].trace_id, ids[2], "oldest evicted");
        assert_eq!(slow[1].trace_id, ids[3]);
    }

    #[test]
    fn slow_threshold_filters_fast_roots() {
        let t = Tracer::new(TraceConfig {
            sample: 1,
            slow_threshold: Duration::from_secs(1),
            ..TraceConfig::default()
        });
        let root = t.sample_root().unwrap();
        let d = t.span(&root, "op").finish();
        t.complete_root(&root, d);
        assert!(t.slow_traces().is_empty(), "fast trace must not enter the recorder");
        t.set_slow_threshold(Duration::ZERO);
        let root2 = t.sample_root().unwrap();
        let d2 = t.span(&root2, "op").finish();
        t.complete_root(&root2, d2);
        assert_eq!(t.slow_traces().len(), 1);
    }

    #[test]
    fn collector_overflow_drops_oldest_and_counts() {
        let t = Tracer::new(TraceConfig {
            sample: 1,
            span_capacity: 64, // 4 per shard
            ..TraceConfig::default()
        });
        let root = t.sample_root().unwrap();
        for _ in 0..100 {
            t.record_manual(&root, "tick", 0, 1, Vec::new());
        }
        let spans = t.spans();
        assert!(spans.len() <= 64);
        assert_eq!(spans.len() as u64 + t.dropped(), 100);
    }

    #[test]
    fn internal_encode_round_trips() {
        let t = always_on();
        let root = t.sample_root().unwrap();
        {
            let mut g = t.span(&root, "op");
            g.annotate("k", "v with spaces\nand newline");
        }
        let trace = t.assemble(root.trace_id).unwrap();
        let back = Trace::decode(&trace.encode()).unwrap();
        assert_eq!(back, trace);
        assert!(Trace::decode(&trace.encode()[..4]).is_err());
    }
}
