//! Hierarchical IDs: paths through a dimension hierarchy.

use crate::schema::Schema;

/// A hierarchical ID in one dimension: the path of child indices from the
/// (implicit) ALL root down to some level.
///
/// An empty path denotes the ALL root of the dimension; a path of length
/// `depth()` denotes a single leaf. Every path owns a contiguous inclusive
/// range of leaf ordinals (see [`DimPath::range`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimPath {
    /// Dimension index within the schema.
    pub dim: usize,
    /// Child indices, coarsest level first.
    pub components: Vec<u64>,
}

impl DimPath {
    /// The ALL root of dimension `dim`.
    pub fn root(dim: usize) -> Self {
        Self { dim, components: Vec::new() }
    }

    /// A path in dimension `dim` with the given components.
    pub fn new(dim: usize, components: Vec<u64>) -> Self {
        Self { dim, components }
    }

    /// The (1-based) level this path ends at; 0 for the root.
    #[inline]
    pub fn level(&self) -> usize {
        self.components.len()
    }

    /// Whether the path reaches the leaf level of its dimension.
    pub fn is_leaf(&self, schema: &Schema) -> bool {
        self.level() == schema.dim(self.dim).depth()
    }

    /// Inclusive leaf-ordinal range `[lo, hi]` covered by this path.
    pub fn range(&self, schema: &Schema) -> (u64, u64) {
        schema.dim(self.dim).prefix_range(&self.components)
    }

    /// The path one level up (`None` at the root).
    pub fn parent(&self) -> Option<Self> {
        if self.components.is_empty() {
            None
        } else {
            let mut c = self.components.clone();
            c.pop();
            Some(Self { dim: self.dim, components: c })
        }
    }

    /// The full leaf path that contains `ordinal`.
    pub fn leaf_of(schema: &Schema, dim: usize, ordinal: u64) -> Self {
        Self { dim, components: schema.dim(dim).components(ordinal) }
    }

    /// Whether `other`'s subtree is contained in (or equal to) this path's
    /// subtree. Both must be in the same dimension.
    pub fn contains(&self, schema: &Schema, other: &Self) -> bool {
        assert_eq!(self.dim, other.dim, "paths must share a dimension");
        let (alo, ahi) = self.range(schema);
        let (blo, bhi) = other.range(schema);
        alo <= blo && bhi <= ahi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::tpcds()
    }

    #[test]
    fn root_covers_everything() {
        let s = schema();
        let root = DimPath::root(3); // Date
        let (lo, hi) = root.range(&s);
        assert_eq!(lo, 0);
        assert_eq!(hi, s.dim(3).ordinal_end() - 1);
        assert_eq!(root.level(), 0);
        assert!(root.parent().is_none());
    }

    #[test]
    fn leaf_of_inverts_ordinal() {
        let s = schema();
        let ord = s.dim(3).ordinal(&[9, 6, 20]);
        let leaf = DimPath::leaf_of(&s, 3, ord);
        assert_eq!(leaf.components, vec![9, 6, 20]);
        assert!(leaf.is_leaf(&s));
        let (lo, hi) = leaf.range(&s);
        assert_eq!((lo, hi), (ord, ord));
    }

    #[test]
    fn containment_follows_prefixes() {
        let s = schema();
        let year = DimPath::new(3, vec![9]);
        let month = DimPath::new(3, vec![9, 6]);
        let other_month = DimPath::new(3, vec![8, 6]);
        assert!(year.contains(&s, &month));
        assert!(!month.contains(&s, &year));
        assert!(!year.contains(&s, &other_month));
        assert!(DimPath::root(3).contains(&s, &year));
        assert!(year.contains(&s, &year));
    }

    #[test]
    fn parent_walks_up() {
        let p = DimPath::new(0, vec![1, 2, 3]);
        let q = p.parent().unwrap();
        assert_eq!(q.components, vec![1, 2]);
        assert_eq!(q.parent().unwrap().components, vec![1]);
        assert_eq!(q.parent().unwrap().parent().unwrap(), DimPath::root(0));
    }
}
