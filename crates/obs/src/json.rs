//! A minimal JSON value model with an exactness-preserving parser, shared by
//! every hand-rolled exporter in the workspace (snapshot JSON, Perfetto
//! traces, and the core crate's `QueryPlan` encoding).
//!
//! Numbers keep their **lexeme** (the exact byte sequence from the input)
//! instead of eagerly converting to `f64`, so integers larger than 2^53 and
//! shortest-round-trip floats survive a parse → re-render cycle bit-exactly.

/// One parsed JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// A number, kept as its source lexeme for exactness.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered field list (duplicate keys keep first wins
    /// via [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up `key` in an object.
    pub fn get<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key {key}")),
            _ => Err(format!("not an object while looking up {key}")),
        }
    }

    /// The elements of an array.
    pub fn arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err("expected array".into()),
        }
    }

    /// The contents of a string.
    pub fn str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }

    /// Parse a number lexeme into any `FromStr` numeric type.
    pub fn num<T: std::str::FromStr>(&self) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self {
            Json::Num(s) => s.parse().map_err(|e| format!("bad number {s}: {e}")),
            _ => Err("expected number".into()),
        }
    }
}

/// Escape a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one complete JSON document. Trailing non-whitespace bytes are an
/// error — every caller is a validator, so partial parses must not pass.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes after JSON at {}", parser.pos));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of JSON".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = match self.value()? {
                        Json::Str(s) => s,
                        _ => return Err("object key must be a string".into()),
                    };
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        other => return Err(format!("bad object separator {:?}", other as char)),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        other => return Err(format!("bad array separator {:?}", other as char)),
                    }
                }
            }
            b'"' => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    let b = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated string".to_string())?;
                    self.pos += 1;
                    match b {
                        b'"' => return Ok(Json::Str(out)),
                        b'\\' => {
                            let esc = *self
                                .bytes
                                .get(self.pos)
                                .ok_or_else(|| "dangling escape".to_string())?;
                            self.pos += 1;
                            match esc {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                b'/' => out.push('/'),
                                b'n' => out.push('\n'),
                                b'r' => out.push('\r'),
                                b't' => out.push('\t'),
                                b'u' => {
                                    let hex = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| "short \\u escape".to_string())?;
                                    self.pos += 4;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                        16,
                                    )
                                    .map_err(|e| e.to_string())?;
                                    out.push(
                                        char::from_u32(code)
                                            .ok_or_else(|| "bad \\u escape".to_string())?,
                                    );
                                }
                                other => return Err(format!("bad escape \\{}", other as char)),
                            }
                        }
                        _ => {
                            // Re-sync to char boundary for multi-byte UTF-8.
                            let start = self.pos - 1;
                            let mut end = self.pos;
                            while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                                end += 1;
                            }
                            out.push_str(
                                std::str::from_utf8(&self.bytes[start..end])
                                    .map_err(|e| e.to_string())?,
                            );
                            self.pos = end;
                        }
                    }
                }
            }
            b'n' => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err("bad literal".into())
                }
            }
            _ => {
                let start = self.pos;
                while self.pos < self.bytes.len()
                    && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.pos += 1;
                }
                if start == self.pos {
                    return Err(format!("unexpected byte at {}", self.pos));
                }
                Ok(Json::Num(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?
                        .to_string(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexemes_survive_exactly() {
        let doc = r#"{"big": 18446744073709551615, "f": 0.1234567890123456789}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("big").unwrap().num::<u64>().unwrap(), u64::MAX);
        match v.get("f").unwrap() {
            Json::Num(lex) => assert_eq!(lex, "0.1234567890123456789"),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        assert!(parse("{} x").is_err());
        assert!(parse("{}").is_ok());
        assert!(parse("  [1, 2]\n").is_ok());
    }
}
