//! Cluster-wide observability integration: exact metric accounting, a
//! measured staleness distribution, and exporter round-trips — the
//! acceptance workload for the `volap-obs` layer (≥ 2 servers, ≥ 4 shards,
//! mixed inserts and queries).

use std::time::{Duration, Instant};

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};
use volap_obs::export;

fn eventually(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

#[test]
fn snapshot_accounts_for_a_mixed_workload_exactly() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2; // 4 shards
    cfg.manager_enabled = false; // stable shard set -> exact counters
    cfg.sync_period = Duration::from_millis(20);
    let cluster = Cluster::start(cfg);
    assert_eq!(cluster.shard_count(), 4);

    const ITEM_INSERTS: u64 = 300;
    const BULK_ITEMS: u64 = 200;
    const QUERIES: u64 = 40;
    // Per-item inserts spread over both servers.
    let mut gen = DataGen::new(&schema, 7, 1.2);
    for (i, item) in gen.items(ITEM_INSERTS as usize).into_iter().enumerate() {
        let c = cluster.client_on(i % 2);
        c.insert(&item).expect("insert");
    }
    // One bulk batch through each server.
    let mut gen = DataGen::new(&schema, 8, 1.2);
    cluster.client_on(0).bulk_insert(gen.items(BULK_ITEMS as usize / 2)).expect("bulk");
    cluster.client_on(1).bulk_insert(gen.items(BULK_ITEMS as usize / 2)).expect("bulk");
    // Queries spread over both servers.
    for i in 0..QUERIES {
        let c = cluster.client_on(i as usize % 2);
        let (agg, shards) = c.query(&QueryBox::all(&schema)).expect("query");
        assert_eq!(agg.count, ITEM_INSERTS + BULK_ITEMS);
        assert!(shards >= 1);
    }

    // Counters: exact accounting of the workload, summed across labels.
    let snap = cluster.snapshot();
    assert_eq!(snap.counter("volap_server_inserts_total"), ITEM_INSERTS + BULK_ITEMS);
    assert_eq!(snap.counter("volap_server_queries_total"), QUERIES);
    assert_eq!(snap.counter("volap_worker_inserts_total"), ITEM_INSERTS);
    assert_eq!(snap.counter("volap_worker_bulk_items_total"), BULK_ITEMS);
    assert!(snap.counter("volap_worker_queries_total") >= QUERIES);
    assert!(snap.counter("volap_image_merges_total") > 0);
    assert!(snap.counter("volap_net_messages_total") > 0);
    assert!(snap.counter("volap_net_bytes_total") > 0);
    assert_eq!(snap.counter("volap_net_timeouts_total"), 0);

    // Latency histograms: every timed operation recorded.
    assert_eq!(snap.histogram("volap_server_insert_seconds").unwrap().count, ITEM_INSERTS);
    assert_eq!(snap.histogram("volap_server_bulk_insert_seconds").unwrap().count, 2);
    assert_eq!(snap.histogram("volap_server_query_seconds").unwrap().count, QUERIES);
    assert_eq!(snap.histogram("volap_worker_insert_seconds").unwrap().count, ITEM_INSERTS);
    assert!(snap.histogram("volap_worker_query_seconds").unwrap().count >= QUERIES);
    let net_hist = snap.histogram("volap_net_request_seconds").unwrap();
    assert!(net_hist.count > 0 && net_hist.sum_seconds > 0.0);

    // Measured staleness: the workload expanded shard boxes on both
    // servers, so after a few sync periods each server has applied the
    // other's pushes and the probe holds real samples.
    assert!(
        eventually(Duration::from_secs(10), || cluster.obs().staleness().count() > 0),
        "staleness probe never recorded a remote apply"
    );
    let snap = cluster.snapshot();
    assert!(snap.staleness.count > 0);
    assert!(!snap.staleness.samples_seconds.is_empty());
    for (stale, frac) in snap.staleness.pbs_curve(8) {
        assert!(stale >= 0.0 && (0.0..=1.0).contains(&frac));
    }
    let probe_hist = snap.histogram("volap_staleness_seconds").unwrap();
    assert_eq!(probe_hist.count, snap.staleness.count);

    // Events: sync rounds were logged; box expansions exist.
    assert!(snap.events_of("image_sync").next().is_some(), "sync events logged");
    assert!(snap.counter("volap_server_box_expansions_total") > 0);

    // Both exporters round-trip this real snapshot.
    let json = export::to_json(&snap);
    assert_eq!(export::from_json(&json).expect("JSON parses"), snap);
    let prom = export::to_prometheus(&snap);
    assert_eq!(
        export::from_prometheus(&prom).expect("exposition parses"),
        snap.metrics_only()
    );
    cluster.shutdown();
}

#[test]
fn histograms_knob_disables_timing_but_not_counting() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.manager_enabled = false;
    cfg.obs_histograms = false;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 3, 1.0);
    for item in gen.items(50) {
        client.insert(&item).expect("insert");
    }
    client.query(&QueryBox::all(&schema)).expect("query");
    let snap = cluster.snapshot();
    assert_eq!(snap.counter("volap_server_inserts_total"), 50);
    assert_eq!(snap.counter("volap_server_queries_total"), 1);
    assert_eq!(snap.histogram("volap_server_insert_seconds").unwrap().count, 0);
    assert_eq!(snap.histogram("volap_server_query_seconds").unwrap().count, 0);
    cluster.shutdown();
}

#[test]
fn split_and_migration_events_reach_the_log() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 2;
    cfg.max_shard_items = 400; // force splits
    cfg.manager_period = Duration::from_millis(30);
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 9, 1.4);
    client.bulk_insert(gen.items(3000)).expect("bulk");
    assert!(
        eventually(Duration::from_secs(15), || cluster.balance_counts().0 >= 1),
        "manager never split"
    );
    let snap = cluster.snapshot();
    assert!(snap.events_of("shard_split").next().is_some(), "split event logged");
    assert!(snap.events_of("manager_split").next().is_some(), "manager decision logged");
    assert_eq!(snap.counter("volap_manager_splits_total"), cluster.balance_counts().0);
    assert!(snap.counter("volap_worker_splits_total") >= 1);
    assert!(snap.gauge("volap_worker_tree_node_splits") >= 0);
    cluster.shutdown();
}
