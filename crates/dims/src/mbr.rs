//! Minimum Bounding Rectangles over hierarchical leaf ordinals.

use crate::item::Item;
use crate::key::Key;
use crate::query::QueryBox;
use crate::schema::Schema;

/// A minimum bounding rectangle: one inclusive `[lo, hi]` interval per
/// dimension, or the distinguished empty box.
///
/// This is the R-tree key of the paper's tree family and the wire format of
/// shard bounding boxes in the global system image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mbr {
    /// Inclusive per-dimension intervals; `None` when the box is empty.
    ranges: Option<Box<[(u64, u64)]>>,
    dims: usize,
}

impl Mbr {
    /// The empty box for a `dims`-dimensional space.
    pub fn empty_with_dims(dims: usize) -> Self {
        Self { ranges: None, dims }
    }

    /// Build from explicit ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range is inverted.
    pub fn from_ranges(ranges: Vec<(u64, u64)>) -> Self {
        for &(lo, hi) in &ranges {
            assert!(lo <= hi, "MBR range must be non-empty");
        }
        let dims = ranges.len();
        Self { ranges: Some(ranges.into_boxed_slice()), dims }
    }

    /// The per-dimension intervals (`None` when empty).
    #[inline]
    pub fn ranges(&self) -> Option<&[(u64, u64)]> {
        self.ranges.as_deref()
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether this box intersects `other`.
    pub fn overlaps(&self, other: &Mbr) -> bool {
        match (&self.ranges, &other.ranges) {
            (Some(a), Some(b)) => a
                .iter()
                .zip(b.iter())
                .all(|(&(alo, ahi), &(blo, bhi))| alo <= bhi && blo <= ahi),
            _ => false,
        }
    }

    /// Grow to cover `other`.
    pub fn extend_mbr(&mut self, other: &Mbr) {
        let Some(b) = &other.ranges else { return };
        match &mut self.ranges {
            None => self.ranges = Some(b.clone()),
            Some(a) => {
                for (ra, &(blo, bhi)) in a.iter_mut().zip(b.iter()) {
                    ra.0 = ra.0.min(blo);
                    ra.1 = ra.1.max(bhi);
                }
            }
        }
    }
}

impl Key for Mbr {
    fn empty(schema: &Schema) -> Self {
        Self::empty_with_dims(schema.dims())
    }

    fn extend_item(&mut self, _schema: &Schema, item: &Item) -> bool {
        match &mut self.ranges {
            None => {
                self.ranges = Some(item.coords.iter().map(|&c| (c, c)).collect());
                true
            }
            Some(r) => {
                let mut changed = false;
                for (range, &c) in r.iter_mut().zip(item.coords.iter()) {
                    if c < range.0 {
                        range.0 = c;
                        changed = true;
                    }
                    if c > range.1 {
                        range.1 = c;
                        changed = true;
                    }
                }
                changed
            }
        }
    }

    fn extend_key(&mut self, _schema: &Schema, other: &Self) {
        self.extend_mbr(other);
    }

    fn is_empty(&self) -> bool {
        self.ranges.is_none()
    }

    fn overlaps_query(&self, q: &QueryBox) -> bool {
        match &self.ranges {
            None => false,
            Some(r) => r
                .iter()
                .zip(q.ranges.iter())
                .all(|(&(alo, ahi), &(qlo, qhi))| alo <= qhi && qlo <= ahi),
        }
    }

    fn covered_by_query(&self, q: &QueryBox) -> bool {
        match &self.ranges {
            None => true,
            Some(r) => r
                .iter()
                .zip(q.ranges.iter())
                .all(|(&(alo, ahi), &(qlo, qhi))| qlo <= alo && ahi <= qhi),
        }
    }

    fn contains_item(&self, item: &Item) -> bool {
        match &self.ranges {
            None => false,
            Some(r) => r
                .iter()
                .zip(item.coords.iter())
                .all(|(&(lo, hi), &c)| lo <= c && c <= hi),
        }
    }

    fn volume_frac(&self, schema: &Schema) -> f64 {
        match &self.ranges {
            None => 0.0,
            Some(r) => r
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| (hi - lo + 1) as f64 / schema.dim(d).ordinal_end() as f64)
                .product(),
        }
    }

    fn overlap_frac(&self, schema: &Schema, other: &Self) -> f64 {
        match (&self.ranges, &other.ranges) {
            (Some(a), Some(b)) => {
                let mut frac = 1.0;
                for (d, (&(alo, ahi), &(blo, bhi))) in a.iter().zip(b.iter()).enumerate() {
                    let lo = alo.max(blo);
                    let hi = ahi.min(bhi);
                    if lo > hi {
                        return 0.0;
                    }
                    frac *= (hi - lo + 1) as f64 / schema.dim(d).ordinal_end() as f64;
                }
                frac
            }
            _ => 0.0,
        }
    }

    fn to_mbr(&self, _schema: &Schema) -> Mbr {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::uniform(2, 2, 4) // 2 dims x 4 bits
    }

    fn item(s: &Schema, a: u64, b: u64) -> Item {
        let _ = s;
        Item::new(vec![a, b], 1.0)
    }

    #[test]
    fn grows_to_cover_items() {
        let s = schema();
        let mut m = Mbr::empty(&s);
        assert!(m.is_empty());
        assert!(m.extend_item(&s, &item(&s, 3, 7)));
        assert!(m.extend_item(&s, &item(&s, 9, 2)));
        assert!(!m.extend_item(&s, &item(&s, 5, 5)), "interior point changes nothing");
        assert_eq!(m.ranges().unwrap(), &[(3, 9), (2, 7)]);
        assert!(m.contains_item(&item(&s, 4, 4)));
        assert!(!m.contains_item(&item(&s, 2, 4)));
    }

    #[test]
    fn query_relations() {
        let s = schema();
        let mut m = Mbr::empty(&s);
        m.extend_item(&s, &item(&s, 4, 4));
        m.extend_item(&s, &item(&s, 6, 6));
        let covering = QueryBox::from_ranges(vec![(0, 15), (4, 6)]);
        let touching = QueryBox::from_ranges(vec![(6, 9), (0, 15)]);
        let disjoint = QueryBox::from_ranges(vec![(7, 9), (0, 15)]);
        assert!(m.covered_by_query(&covering));
        assert!(m.overlaps_query(&covering));
        assert!(m.overlaps_query(&touching));
        assert!(!m.covered_by_query(&touching));
        assert!(!m.overlaps_query(&disjoint));
    }

    #[test]
    fn volumes_are_normalized() {
        let s = schema();
        let mut m = Mbr::empty(&s);
        assert_eq!(m.volume_frac(&s), 0.0);
        m.extend_item(&s, &item(&s, 0, 0));
        m.extend_item(&s, &item(&s, 7, 15));
        // (8/16) * (16/16) = 0.5
        assert!((m.volume_frac(&s) - 0.5).abs() < 1e-12);
        let mut n = Mbr::empty(&s);
        n.extend_item(&s, &item(&s, 4, 8));
        n.extend_item(&s, &item(&s, 15, 15));
        // overlap dim0: [4,7] = 4/16; dim1: [8,15] = 8/16.
        assert!((m.overlap_frac(&s, &n) - (4.0 / 16.0) * (8.0 / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn enlargement_reflects_growth() {
        let s = schema();
        let mut m = Mbr::empty(&s);
        m.extend_item(&s, &item(&s, 4, 4));
        let inside = m.enlargement_frac(&s, &item(&s, 4, 4));
        let outside = m.enlargement_frac(&s, &item(&s, 8, 4));
        assert_eq!(inside, 0.0);
        assert!(outside > 0.0);
    }

    #[test]
    fn empty_relations() {
        let s = schema();
        let e = Mbr::empty(&s);
        let q = QueryBox::all(&s);
        assert!(!e.overlaps_query(&q));
        assert!(e.covered_by_query(&q), "vacuously covered");
        assert_eq!(e.overlap_frac(&s, &e), 0.0);
        assert!(!e.overlaps(&e));
    }
}
