//! The VOLAP shard data structures: PDC tree, Hilbert PDC tree, and
//! baselines.
//!
//! The paper's workers store every shard in one of five in-memory structures
//! (§III-D): a flat array (benchmark baseline), the PDC tree with MDS or MBR
//! keys, and the novel **Hilbert PDC tree** with MDS or MBR keys. Figure 5
//! additionally benchmarks conventional and Hilbert **R-trees**. All of them
//! are instances of one concurrent tree, [`ConcurrentTree`], generic over
//!
//! * the **key type** ([`volap_dims::Mbr`] for R-tree-style keys,
//!   [`volap_dims::Mds`] for DC/PDC-style hierarchy-aware keys), and
//! * the **insert policy** ([`InsertPolicy`]): geometric least-overlap
//!   descent with R-tree-style splits, or Hilbert-ordered descent (B+-tree
//!   style) with the paper's least-overlap linear split.
//!
//! Every directory node caches the [`volap_dims::Aggregate`] of its subtree,
//! so queries that fully cover a node stop there — the paper's "coverage
//! resilience".
//!
//! Concurrency: each node carries its own `RwLock`; inserts descend with
//! write-lock coupling (at most two node locks held, as in the PDC tree
//! paper) and split full nodes *preventively* on the way down, so no
//! operation ever needs to re-ascend. Queries take read locks one node at a
//! time. Many inserts and queries proceed in parallel.
//!
//! The [`ShardStore`] trait is the object-safe facade the distributed layer
//! uses; [`build_store`] constructs any of the variants by [`StoreKind`].
//!
//! # Example
//!
//! ```
//! use volap_dims::{Schema, Item, QueryBox};
//! use volap_tree::{build_store, StoreKind, TreeConfig};
//!
//! let schema = Schema::uniform(2, 2, 4);
//! let store = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
//! store.insert(&Item::new(vec![3, 5], 10.0));
//! store.insert(&Item::new(vec![9, 1], 32.0));
//! let agg = store.query(&QueryBox::all(&schema));
//! assert_eq!(agg.count, 2);
//! assert_eq!(agg.sum, 42.0);
//! ```

pub mod array;
pub mod leaf;
pub mod rollup;
pub mod serial;
pub mod split;
pub mod store;
pub mod tree;

pub use array::ArrayStore;
pub use leaf::{Column, ColumnStats, LeafColumns};
pub use rollup::RollupTable;
pub use split::SplitPlan;
pub use store::{build_store, deserialize_store, ShardStore, StoreKind, StoreStats};
pub use tree::{ConcurrentTree, InsertPolicy, QueryTrace, TreeConfig, DEFAULT_PAR_CUTOFF};
