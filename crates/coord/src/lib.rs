//! A versioned hierarchical coordination store with watches: the Zookeeper
//! substitute.
//!
//! VOLAP keeps its global *system image* in Zookeeper (§III-B): member
//! lists, configuration, and per-shard size / bounding box / worker address.
//! Servers cache a local image and rely on Zookeeper *watches* to learn of
//! changes "without wasteful polling"; workers publish shard statistics for
//! the manager's load-balancing decisions.
//!
//! [`CoordService`] reproduces the subset VOLAP uses:
//!
//! * slash-separated paths holding opaque byte payloads,
//! * per-node versions with optional compare-and-set,
//! * sequential node creation (for ID allocation),
//! * child listing by prefix, and
//! * prefix **watches** delivering [`WatchEvent`]s over a channel.
//!
//! Deviation from real Zookeeper: watches here are *persistent* rather than
//! one-shot (each registered watcher keeps receiving events until dropped).
//! VOLAP re-arms its one-shot watches immediately on every event, so the
//! persistent form is behaviour-equivalent and removes a class of
//! re-registration races.

use std::collections::BTreeMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use volap_obs::lock::{LockClass, ObsRwLock};

/// Coordination-store slice of the global lock hierarchy (DESIGN.md §15).
/// `create_sequential` holds the sequence counter while inserting into the
/// node map, so seq < nodes; every other pair is acquired sequentially via
/// scoped blocks. Watch notification always runs with the node map already
/// released, but watches still ranks last so a future combined path stays
/// legal.
static NEXT_SESSION_CLASS: LockClass = LockClass::new("coord.next_session", 70);
static SESSIONS_CLASS: LockClass = LockClass::new("coord.sessions", 71);
static SEQ_CLASS: LockClass = LockClass::new("coord.seq", 72);
static NODES_CLASS: LockClass = LockClass::new("coord.nodes", 73);
static WATCHES_CLASS: LockClass = LockClass::new("coord.watches", 74);

/// Errors returned by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// The path does not exist.
    NoNode(String),
    /// A `create` hit an existing path.
    NodeExists(String),
    /// A compare-and-set saw a different version.
    BadVersion {
        /// Path of the node.
        path: String,
        /// Version the caller expected.
        expected: u64,
        /// Version actually present.
        actual: u64,
    },
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node at {p}"),
            CoordError::NodeExists(p) => write!(f, "node already exists at {p}"),
            CoordError::BadVersion { path, expected, actual } => {
                write!(f, "bad version at {path}: expected {expected}, actual {actual}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// What happened to a watched path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Node created.
    Created,
    /// Node data changed.
    Changed,
    /// Node deleted.
    Deleted,
}

/// A change notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Affected path.
    pub path: String,
    /// Kind of change.
    pub kind: EventKind,
    /// Version after the change (0 for deletions).
    pub version: u64,
}

#[derive(Debug, Clone)]
struct Znode {
    data: Vec<u8>,
    version: u64,
    /// Owning session for ephemeral nodes (`None` = persistent).
    owner: Option<SessionId>,
}

/// Handle to a coordination session (Zookeeper-style). Ephemeral nodes
/// created under a session disappear when the session expires — the
/// liveness primitive behind worker membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

#[derive(Debug)]
struct SessionState {
    /// Instant of the last heartbeat.
    last_seen: std::time::Instant,
    ttl: std::time::Duration,
}

struct CoordInner {
    nodes: ObsRwLock<BTreeMap<String, Znode>>,
    watches: ObsRwLock<Vec<(String, Sender<WatchEvent>)>>,
    seq: ObsRwLock<u64>,
    sessions: ObsRwLock<std::collections::HashMap<SessionId, SessionState>>,
    next_session: ObsRwLock<u64>,
}

/// The coordination store. Cloneable handle; all clones share state.
#[derive(Clone)]
pub struct CoordService {
    inner: Arc<CoordInner>,
}

impl Default for CoordService {
    fn default() -> Self {
        Self::new()
    }
}

impl CoordService {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CoordInner {
                nodes: ObsRwLock::new(&NODES_CLASS, BTreeMap::new()),
                watches: ObsRwLock::new(&WATCHES_CLASS, Vec::new()),
                seq: ObsRwLock::new(&SEQ_CLASS, 0),
                sessions: ObsRwLock::new(&SESSIONS_CLASS, std::collections::HashMap::new()),
                next_session: ObsRwLock::new(&NEXT_SESSION_CLASS, 0),
            }),
        }
    }

    fn notify(&self, path: &str, kind: EventKind, version: u64) {
        let mut watches = self.inner.watches.write();
        watches.retain(|(prefix, tx)| {
            if path.starts_with(prefix.as_str()) {
                tx.send(WatchEvent { path: path.to_string(), kind, version }).is_ok()
            } else {
                true
            }
        });
    }

    /// Create a node. Fails if it exists.
    pub fn create(&self, path: &str, data: Vec<u8>) -> Result<u64, CoordError> {
        validate_path(path);
        {
            let mut nodes = self.inner.nodes.write();
            if nodes.contains_key(path) {
                return Err(CoordError::NodeExists(path.to_string()));
            }
            nodes.insert(path.to_string(), Znode { data, version: 1, owner: None });
        }
        self.notify(path, EventKind::Created, 1);
        Ok(1)
    }

    /// Create a node under `prefix` with a unique ascending sequence number
    /// appended (Zookeeper's sequential nodes); returns the full path.
    pub fn create_sequential(&self, prefix: &str, data: Vec<u8>) -> String {
        validate_path(prefix);
        let path = {
            let mut seq = self.inner.seq.write();
            *seq += 1;
            let path = format!("{prefix}{:010}", *seq);
            self.inner.nodes.write().insert(path.clone(), Znode { data, version: 1, owner: None });
            path
        };
        self.notify(&path, EventKind::Created, 1);
        path
    }

    /// Write a node, creating it if absent. With `expected_version`, the
    /// write succeeds only if the current version matches (compare-and-set).
    /// Returns the new version.
    pub fn set(
        &self,
        path: &str,
        data: Vec<u8>,
        expected_version: Option<u64>,
    ) -> Result<u64, CoordError> {
        validate_path(path);
        let (kind, version) = {
            let mut nodes = self.inner.nodes.write();
            match nodes.get_mut(path) {
                Some(z) => {
                    if let Some(ev) = expected_version {
                        if z.version != ev {
                            return Err(CoordError::BadVersion {
                                path: path.to_string(),
                                expected: ev,
                                actual: z.version,
                            });
                        }
                    }
                    z.data = data;
                    z.version += 1;
                    (EventKind::Changed, z.version)
                }
                None => {
                    if let Some(ev) = expected_version {
                        return Err(CoordError::BadVersion {
                            path: path.to_string(),
                            expected: ev,
                            actual: 0,
                        });
                    }
                    nodes.insert(path.to_string(), Znode { data, version: 1, owner: None });
                    (EventKind::Created, 1)
                }
            }
        };
        self.notify(path, kind, version);
        Ok(version)
    }

    /// Read a node's data and version.
    pub fn get(&self, path: &str) -> Option<(Vec<u8>, u64)> {
        self.inner.nodes.read().get(path).map(|z| (z.data.clone(), z.version))
    }

    /// Whether a node exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.nodes.read().contains_key(path)
    }

    /// Delete a node. Fails if absent.
    pub fn delete(&self, path: &str) -> Result<(), CoordError> {
        {
            let mut nodes = self.inner.nodes.write();
            if nodes.remove(path).is_none() {
                return Err(CoordError::NoNode(path.to_string()));
            }
        }
        self.notify(path, EventKind::Deleted, 0);
        Ok(())
    }

    /// All paths with the given prefix, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .nodes
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// All `(path, data, version)` triples with the given prefix.
    pub fn list_with_data(&self, prefix: &str) -> Vec<(String, Vec<u8>, u64)> {
        self.inner
            .nodes
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, z)| (k.clone(), z.data.clone(), z.version))
            .collect()
    }

    /// Register a persistent prefix watch. Events for every mutation under
    /// `prefix` arrive on the returned channel until the receiver is
    /// dropped.
    pub fn watch_prefix(&self, prefix: &str) -> Receiver<WatchEvent> {
        let (tx, rx) = unbounded();
        self.inner.watches.write().push((prefix.to_string(), tx));
        rx
    }

    /// Number of stored nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }

    /// Open a session with the given time-to-live. The session stays alive
    /// as long as [`CoordService::heartbeat`] is called within every `ttl`
    /// window; when it expires, all its ephemeral nodes are deleted (with
    /// watch events), exactly like a Zookeeper session loss.
    pub fn open_session(&self, ttl: std::time::Duration) -> SessionId {
        let id = {
            let mut next = self.inner.next_session.write();
            *next += 1;
            SessionId(*next)
        };
        self.inner
            .sessions
            .write()
            .insert(id, SessionState { last_seen: std::time::Instant::now(), ttl });
        id
    }

    /// Refresh a session's liveness. Returns `false` if the session is
    /// unknown or already expired.
    pub fn heartbeat(&self, id: SessionId) -> bool {
        self.reap_expired();
        match self.inner.sessions.write().get_mut(&id) {
            Some(st) => {
                st.last_seen = std::time::Instant::now();
                true
            }
            None => false,
        }
    }

    /// Whether a session is currently alive.
    pub fn session_alive(&self, id: SessionId) -> bool {
        self.reap_expired();
        self.inner.sessions.read().contains_key(&id)
    }

    /// Close a session explicitly, deleting its ephemeral nodes.
    pub fn close_session(&self, id: SessionId) {
        self.inner.sessions.write().remove(&id);
        self.delete_owned_by(id);
    }

    /// Create an ephemeral node owned by `session`. Fails like
    /// [`CoordService::create`] on existing paths, or with `NoNode` when
    /// the session is dead.
    pub fn create_ephemeral(
        &self,
        path: &str,
        data: Vec<u8>,
        session: SessionId,
    ) -> Result<u64, CoordError> {
        validate_path(path);
        self.reap_expired();
        if !self.inner.sessions.read().contains_key(&session) {
            return Err(CoordError::NoNode(format!("session {session:?} expired")));
        }
        {
            let mut nodes = self.inner.nodes.write();
            if nodes.contains_key(path) {
                return Err(CoordError::NodeExists(path.to_string()));
            }
            nodes.insert(path.to_string(), Znode { data, version: 1, owner: Some(session) });
        }
        self.notify(path, EventKind::Created, 1);
        Ok(1)
    }

    /// Expire sessions past their TTL and delete their ephemeral nodes.
    /// Called implicitly by session operations; callable explicitly by a
    /// housekeeping loop.
    pub fn reap_expired(&self) {
        let now = std::time::Instant::now();
        let dead: Vec<SessionId> = self
            .inner
            .sessions
            .read()
            .iter()
            .filter(|(_, st)| now.duration_since(st.last_seen) > st.ttl)
            .map(|(&id, _)| id)
            .collect();
        if dead.is_empty() {
            return;
        }
        {
            let mut sessions = self.inner.sessions.write();
            for id in &dead {
                sessions.remove(id);
            }
        }
        for id in dead {
            self.delete_owned_by(id);
        }
    }

    fn delete_owned_by(&self, id: SessionId) {
        let doomed: Vec<String> = {
            let nodes = self.inner.nodes.read();
            nodes
                .iter()
                .filter(|(_, z)| z.owner == Some(id))
                .map(|(k, _)| k.clone())
                .collect()
        };
        {
            let mut nodes = self.inner.nodes.write();
            for path in &doomed {
                nodes.remove(path);
            }
        }
        for path in doomed {
            self.notify(&path, EventKind::Deleted, 0);
        }
    }
}

fn validate_path(path: &str) {
    assert!(path.starts_with('/'), "paths must be absolute (start with '/'): {path:?}");
    assert!(!path.contains("//"), "paths must not contain empty segments: {path:?}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn create_get_set_delete() {
        let c = CoordService::new();
        assert_eq!(c.create("/a", b"1".to_vec()), Ok(1));
        assert_eq!(c.create("/a", b"2".to_vec()), Err(CoordError::NodeExists("/a".into())));
        assert_eq!(c.get("/a"), Some((b"1".to_vec(), 1)));
        assert_eq!(c.set("/a", b"2".to_vec(), None), Ok(2));
        assert_eq!(c.get("/a"), Some((b"2".to_vec(), 2)));
        assert!(c.exists("/a"));
        assert_eq!(c.delete("/a"), Ok(()));
        assert!(!c.exists("/a"));
        assert_eq!(c.delete("/a"), Err(CoordError::NoNode("/a".into())));
    }

    #[test]
    fn compare_and_set_guards_versions() {
        let c = CoordService::new();
        c.create("/cfg", b"x".to_vec()).unwrap();
        assert_eq!(c.set("/cfg", b"y".to_vec(), Some(1)), Ok(2));
        let err = c.set("/cfg", b"z".to_vec(), Some(1)).unwrap_err();
        assert_eq!(
            err,
            CoordError::BadVersion { path: "/cfg".into(), expected: 1, actual: 2 }
        );
        // CAS against a missing node also fails.
        assert!(matches!(
            c.set("/nope", vec![], Some(3)),
            Err(CoordError::BadVersion { actual: 0, .. })
        ));
    }

    #[test]
    fn set_upserts_without_version() {
        let c = CoordService::new();
        assert_eq!(c.set("/fresh", b"v".to_vec(), None), Ok(1));
        assert_eq!(c.get("/fresh"), Some((b"v".to_vec(), 1)));
    }

    #[test]
    fn sequential_nodes_ascend() {
        let c = CoordService::new();
        let p1 = c.create_sequential("/shards/shard-", vec![1]);
        let p2 = c.create_sequential("/shards/shard-", vec![2]);
        assert!(p1 < p2);
        assert_eq!(c.list("/shards/"), vec![p1, p2]);
    }

    #[test]
    fn list_filters_by_prefix() {
        let c = CoordService::new();
        c.create("/workers/w1", vec![]).unwrap();
        c.create("/workers/w2", vec![]).unwrap();
        c.create("/servers/s1", vec![]).unwrap();
        assert_eq!(c.list("/workers/"), vec!["/workers/w1".to_string(), "/workers/w2".to_string()]);
        assert_eq!(c.list_with_data("/servers/").len(), 1);
        assert_eq!(c.list("/nothing/"), Vec::<String>::new());
    }

    #[test]
    fn watches_deliver_all_kinds() {
        let c = CoordService::new();
        let rx = c.watch_prefix("/shards/");
        c.create("/shards/1", b"a".to_vec()).unwrap();
        c.set("/shards/1", b"b".to_vec(), None).unwrap();
        c.delete("/shards/1").unwrap();
        c.create("/other/1", vec![]).unwrap(); // must not be seen
        let events: Vec<WatchEvent> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).unwrap())
            .collect();
        assert_eq!(events[0].kind, EventKind::Created);
        assert_eq!(events[1].kind, EventKind::Changed);
        assert_eq!(events[1].version, 2);
        assert_eq!(events[2].kind, EventKind::Deleted);
        assert!(rx.try_recv().is_err(), "no cross-prefix leakage");
    }

    #[test]
    fn dropped_watchers_are_pruned() {
        let c = CoordService::new();
        let rx = c.watch_prefix("/x/");
        drop(rx);
        c.create("/x/1", vec![]).unwrap(); // prunes the dead watcher
        c.create("/x/2", vec![]).unwrap();
        assert_eq!(c.inner.watches.read().len(), 0);
    }

    #[test]
    fn concurrent_writers_are_serialized() {
        let c = CoordService::new();
        c.create("/counter", vec![0]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        loop {
                            let (data, v) = c.get("/counter").unwrap();
                            let mut next = data.clone();
                            next[0] = next[0].wrapping_add(1);
                            if c.set("/counter", next, Some(v)).is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let (_, version) = c.get("/counter").unwrap();
        assert_eq!(version, 801, "800 successful CAS writes after create");
    }

    #[test]
    #[should_panic(expected = "absolute")]
    fn rejects_relative_paths() {
        CoordService::new().create("oops", vec![]).unwrap();
    }

    #[test]
    fn ephemeral_nodes_die_with_their_session() {
        let c = CoordService::new();
        let rx = c.watch_prefix("/live/");
        let session = c.open_session(Duration::from_millis(60));
        c.create_ephemeral("/live/w0", b"hi".to_vec(), session).unwrap();
        assert!(c.exists("/live/w0"));
        assert!(c.session_alive(session));
        // Heartbeats keep it alive past the raw TTL.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(30));
            assert!(c.heartbeat(session));
        }
        assert!(c.exists("/live/w0"));
        // Stop heartbeating: the node disappears and a Deleted event fires.
        std::thread::sleep(Duration::from_millis(120));
        c.reap_expired();
        assert!(!c.exists("/live/w0"));
        assert!(!c.session_alive(session));
        assert!(!c.heartbeat(session), "expired sessions cannot be revived");
        let kinds: Vec<EventKind> = std::iter::from_fn(|| rx.try_recv().ok())
            .map(|e| e.kind)
            .collect();
        assert_eq!(kinds, vec![EventKind::Created, EventKind::Deleted]);
    }

    #[test]
    fn close_session_removes_nodes_immediately() {
        let c = CoordService::new();
        let s1 = c.open_session(Duration::from_secs(60));
        let s2 = c.open_session(Duration::from_secs(60));
        c.create_ephemeral("/m/a", vec![], s1).unwrap();
        c.create_ephemeral("/m/b", vec![], s2).unwrap();
        c.create("/m/p", vec![]).unwrap(); // persistent survives
        c.close_session(s1);
        assert!(!c.exists("/m/a"));
        assert!(c.exists("/m/b"), "other sessions unaffected");
        assert!(c.exists("/m/p"));
    }

    #[test]
    fn ephemeral_create_requires_live_session() {
        let c = CoordService::new();
        let s = c.open_session(Duration::from_secs(60));
        c.close_session(s);
        assert!(matches!(
            c.create_ephemeral("/x/a", vec![], s),
            Err(CoordError::NoNode(_))
        ));
        // Path collisions still reported.
        let s2 = c.open_session(Duration::from_secs(60));
        c.create("/x/b", vec![]).unwrap();
        assert!(matches!(
            c.create_ephemeral("/x/b", vec![], s2),
            Err(CoordError::NodeExists(_))
        ));
    }
}
