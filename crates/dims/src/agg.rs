//! Aggregate values cached in tree nodes and returned by queries.

/// A distributive aggregate: count, sum, min and max of the measure.
///
/// Every directory node of a PDC-family tree caches the aggregate of its
/// whole subtree; a query whose box fully covers a node's key consumes the
/// cached value instead of descending (the paper's "coverage resilience").
/// All four components merge associatively, so partial results from shards
/// and workers combine in any order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of items.
    pub count: u64,
    /// Sum of measures.
    pub sum: f64,
    /// Minimum measure (`f64::INFINITY` when empty).
    pub min: f64,
    /// Maximum measure (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Default for Aggregate {
    fn default() -> Self {
        Self::empty()
    }
}

impl Aggregate {
    /// The identity element.
    #[inline]
    pub const fn empty() -> Self {
        Self { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Aggregate of a single measure.
    #[inline]
    pub fn of(measure: f64) -> Self {
        Self { count: 1, sum: measure, min: measure, max: measure }
    }

    /// Whether any item has been folded in.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another aggregate in.
    #[inline]
    pub fn merge(&mut self, other: &Aggregate) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fold a single measure in.
    #[inline]
    pub fn add(&mut self, measure: f64) {
        self.count += 1;
        self.sum += measure;
        self.min = self.min.min(measure);
        self.max = self.max.max(measure);
    }

    /// Mean measure (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_identity() {
        let mut a = Aggregate::of(3.0);
        a.merge(&Aggregate::empty());
        assert_eq!(a, Aggregate::of(3.0));
        let mut e = Aggregate::empty();
        e.merge(&Aggregate::of(3.0));
        assert_eq!(e, Aggregate::of(3.0));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let items = [1.0, -2.5, 7.0, 0.0, 3.25];
        let mut left = Aggregate::empty();
        for m in items {
            left.add(m);
        }
        let mut right = Aggregate::empty();
        for m in items.iter().rev() {
            right.merge(&Aggregate::of(*m));
        }
        assert_eq!(left, right);
        assert_eq!(left.count, 5);
        assert_eq!(left.sum, 8.75);
        assert_eq!(left.min, -2.5);
        assert_eq!(left.max, 7.0);
        assert_eq!(left.mean(), Some(1.75));
    }

    #[test]
    fn empty_mean_is_none() {
        assert_eq!(Aggregate::empty().mean(), None);
        assert!(Aggregate::empty().is_empty());
    }
}
