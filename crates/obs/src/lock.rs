//! Lock telemetry + runtime lock-order checking: contention heat for every
//! mutex in the cluster.
//!
//! [`ObsMutex`] and [`ObsRwLock`] are drop-in wrappers over the
//! `parking_lot` primitives. Every lock site carries a static [`LockClass`]
//! — a name plus a documented **rank** in the global lock hierarchy (the
//! full table lives in DESIGN.md §15) — and records per class:
//!
//! * acquisition count,
//! * contended-acquisition count (the first `try_lock` failed),
//! * a wait-time log2 histogram (contended acquisitions only), and
//! * a hold-time log2 histogram (contended acquisitions only, unless
//!   [`set_always_time`] forces timing for every acquisition).
//!
//! The release-build fast path for an uncontended acquisition is two
//! relaxed loads, a `try_lock`, and **one relaxed counter increment** — no
//! `Instant::now()`, no registry lookup, no allocation. Stats live in
//! atomics embedded in each `static LockClass`, so locks constructed deep
//! inside the tree layer need no registry handle; `Obs::snapshot()` folds
//! every class that has ever been acquired into the snapshot as labeled
//! `volap_lock_*` metrics plus a structured `locks` section.
//!
//! Under `cfg(debug_assertions)` a thread-local held-lock stack enforces
//! the hierarchy lockbud-style: acquiring a lock whose rank is ≤ the
//! deepest held rank (same-class reacquisition of a
//! [`LockClass::new_chainable`] class excepted — hand-over-hand tree
//! descent) records a [`LockOrderViolation`] with both class names and
//! backtrace-lite context (thread ordinal and name, current traced span)
//! and, in the default [`CheckMode::Panic`], panics so tests fail loudly.
//! Release builds compile the checker out entirely.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::registry::{
    bucket_index, bucket_le_seconds, HistogramSnapshot, MetricId, ScalarSnapshot, HIST_BUCKETS,
};

// ---------------------------------------------------------------------------
// Global switches and registries (std primitives only: the lock layer must
// never recurse into itself)
// ---------------------------------------------------------------------------

/// Telemetry master switch. Off, every acquisition degrades to a plain
/// `parking_lot` call behind one relaxed load + branch (what `bench_lock`
/// measures as "raw").
static TELEMETRY: AtomicBool = AtomicBool::new(true);

/// Force hold-time timing for *every* acquisition (tests and benches that
/// want full hold histograms; production only times contended ones).
static ALWAYS_TIME: AtomicBool = AtomicBool::new(false);

/// Total order violations observed process-wide (exported as
/// `volap_lock_order_violations_total`).
static VIOLATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// Every class that has ever been acquired, registered on first use.
static CLASS_REGISTRY: Mutex<Vec<&'static LockClass>> = Mutex::new(Vec::new());

/// Recent violations (bounded; see [`take_violations`]).
static VIOLATIONS: Mutex<Vec<LockOrderViolation>> = Mutex::new(Vec::new());
#[cfg_attr(not(debug_assertions), allow(dead_code))]
const VIOLATIONS_CAP: usize = 256;

/// Optional observer invoked on every violation (the `Obs` core registers
/// one that records a `lock_order_violation` event into its event log).
#[allow(clippy::type_complexity)]
static HOOK: Mutex<Option<ViolationHook>> = Mutex::new(None);

/// Observer invoked on every recorded lock-order violation.
pub type ViolationHook = Box<dyn Fn(&LockOrderViolation) + Send + Sync>;

std::thread_local! {
    /// Cumulative nanoseconds this thread has spent blocked on contended
    /// instrumented locks. Sampled spans diff it around an operation to
    /// annotate `held_lock_wait_us`.
    static THREAD_WAIT_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Turn lock telemetry on or off process-wide (default: on). Off, every
/// wrapper call is a plain `parking_lot` acquisition behind one relaxed
/// load and branch — the "raw" baseline `bench_lock` compares against.
pub fn set_telemetry_enabled(on: bool) {
    TELEMETRY.store(on, Ordering::Relaxed);
}

/// Whether lock telemetry currently records.
pub fn telemetry_enabled() -> bool {
    TELEMETRY.load(Ordering::Relaxed)
}

/// Force hold-time timing for every acquisition instead of only contended
/// ones. Costs two `Instant::now()` calls per acquisition; meant for tests
/// and diagnostics, not production.
pub fn set_always_time(on: bool) {
    ALWAYS_TIME.store(on, Ordering::Relaxed);
}

/// Cumulative nanoseconds the *calling thread* has spent blocked on
/// contended instrumented locks. Monotone; diff around an operation to
/// attribute lock wait to it.
pub fn thread_wait_ns() -> u64 {
    THREAD_WAIT_NS.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// LockClass
// ---------------------------------------------------------------------------

/// Per-bucket stats block mirroring the registry's log2 histograms, but
/// const-initializable so it can live inside a `static LockClass`.
struct BucketBlock {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl BucketBlock {
    const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    #[inline]
    fn observe_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshot in the registry's cumulative-finite-buckets form.
    fn snapshot(&self, id: MetricId) -> HistogramSnapshot {
        let mut cum = 0u64;
        let mut buckets = Vec::with_capacity(HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS - 1 {
            cum += self.buckets[i].load(Ordering::Relaxed);
            buckets.push((bucket_le_seconds(i), cum));
        }
        HistogramSnapshot {
            id,
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            buckets,
        }
    }
}

/// The static identity of one family of locks: a name, a documented rank in
/// the global hierarchy, and embedded contention stats.
///
/// Declare one `static` per lock site (or per homogeneous family, e.g. all
/// tree nodes) and pass `&'static` references to [`ObsMutex::new`] /
/// [`ObsRwLock::new`]. Ranks must strictly increase along every legal
/// acquisition path; the only exception is a [`LockClass::new_chainable`]
/// class, which may be re-acquired while itself is the deepest held class
/// (hand-over-hand coupling along tree paths).
pub struct LockClass {
    name: &'static str,
    rank: u16,
    chainable: bool,
    registered: AtomicBool,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait: BucketBlock,
    hold: BucketBlock,
}

impl LockClass {
    /// A class at `rank` in the global hierarchy.
    pub const fn new(name: &'static str, rank: u16) -> Self {
        Self {
            name,
            rank,
            chainable: false,
            registered: AtomicBool::new(false),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait: BucketBlock::new(),
            hold: BucketBlock::new(),
        }
    }

    /// A class whose locks may be re-acquired while it is itself the deepest
    /// held class (same rank, same class): hand-over-hand lock coupling.
    pub const fn new_chainable(name: &'static str, rank: u16) -> Self {
        let mut c = Self::new(name, rank);
        c.chainable = true;
        c
    }

    /// The class name (e.g. `"tree.node"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The class's rank in the global lock hierarchy.
    pub fn rank(&self) -> u16 {
        self.rank
    }

    /// Acquisitions recorded so far (tests / diagnostics).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Contended acquisitions recorded so far (tests / diagnostics).
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Register this class in the global class list on first acquisition.
    #[inline]
    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            CLASS_REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).push(self);
        }
    }

    /// Telemetry for an acquisition whose `try_lock` succeeded: the
    /// release-build fast path.
    #[inline]
    fn note_uncontended(&'static self) -> Option<Instant> {
        self.register();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if ALWAYS_TIME.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Telemetry for an acquisition that had to block for `wait`.
    fn note_contended(&'static self, wait: Duration) -> Option<Instant> {
        self.register();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        self.contended.fetch_add(1, Ordering::Relaxed);
        let ns = wait.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.wait.observe_ns(ns);
        THREAD_WAIT_NS.with(|c| c.set(c.get().saturating_add(ns)));
        Some(Instant::now())
    }

    fn note_released(&'static self, acquired_at: Instant) {
        self.hold
            .observe_ns(acquired_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

impl fmt::Debug for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockClass")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("chainable", &self.chainable)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Lock-order checker (debug builds only)
// ---------------------------------------------------------------------------

/// What the order checker does when it finds a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Checker disabled: no held-stack maintenance at all.
    Off,
    /// Record the violation (global list + event hook) and continue.
    Record,
    /// Record, then panic — the default in debug builds so tests fail.
    Panic,
}

/// One detected lock-order violation, with backtrace-lite context.
#[derive(Debug, Clone, PartialEq)]
pub struct LockOrderViolation {
    /// Class being acquired (the out-of-order one).
    pub acquiring: &'static str,
    /// Rank of the class being acquired.
    pub acquiring_rank: u16,
    /// Deepest-ranked class already held by the thread.
    pub holding: &'static str,
    /// Rank of the deepest held class.
    pub holding_rank: u16,
    /// Ordinal of the offending thread (same numbering as the event ring).
    pub thread_ordinal: usize,
    /// Thread name, when set.
    pub thread_name: String,
    /// `(trace_id, span_id)` of the span open on this thread, if the
    /// operation was being traced.
    pub span: Option<(u64, u64)>,
}

impl fmt::Display for LockOrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock order violation: acquiring {} (rank {}) while holding {} (rank {}) on thread {} ({})",
            self.acquiring,
            self.acquiring_rank,
            self.holding,
            self.holding_rank,
            self.thread_ordinal,
            self.thread_name,
        )?;
        if let Some((t, s)) = self.span {
            write!(f, " in trace {t} span {s}")?;
        }
        Ok(())
    }
}

/// Total lock-order violations observed process-wide.
pub fn violation_count() -> u64 {
    VIOLATION_COUNT.load(Ordering::Relaxed)
}

/// Drain the recorded violations (bounded ring of the most recent 256).
pub fn take_violations() -> Vec<LockOrderViolation> {
    std::mem::take(&mut *VIOLATIONS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Install the process-wide violation observer (replaces any previous one).
/// The `Obs` core uses this to mirror violations into its event log.
pub fn set_violation_hook(hook: Option<ViolationHook>) {
    *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = hook;
}

#[cfg_attr(not(debug_assertions), allow(dead_code))]
fn report_violation(v: LockOrderViolation, panic_after: bool) {
    VIOLATION_COUNT.fetch_add(1, Ordering::Relaxed);
    {
        let mut log = VIOLATIONS.lock().unwrap_or_else(|e| e.into_inner());
        if log.len() >= VIOLATIONS_CAP {
            log.remove(0);
        }
        log.push(v.clone());
    }
    if let Some(hook) = &*HOOK.lock().unwrap_or_else(|e| e.into_inner()) {
        hook(&v);
    }
    if panic_after {
        panic!("{v}");
    }
}

#[cfg(debug_assertions)]
mod checker {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::AtomicU8;

    /// 0 = Off, 1 = Record, 2 = Panic. Debug builds default to Panic so the
    /// whole test suite runs under enforcement.
    static MODE: AtomicU8 = AtomicU8::new(2);

    std::thread_local! {
        static HELD: RefCell<Vec<(&'static LockClass, u64)>> =
            const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: Cell<u64> = const { Cell::new(1) };
    }

    pub fn set_mode(mode: CheckMode) {
        MODE.store(
            match mode {
                CheckMode::Off => 0,
                CheckMode::Record => 1,
                CheckMode::Panic => 2,
            },
            Ordering::Relaxed,
        );
    }

    pub fn mode() -> CheckMode {
        match MODE.load(Ordering::Relaxed) {
            0 => CheckMode::Off,
            1 => CheckMode::Record,
            _ => CheckMode::Panic,
        }
    }

    /// Order-check `class` against the thread's held stack, then push it.
    /// Returns the removal token (0 = checker off, nothing pushed).
    pub fn check_and_push(class: &'static LockClass) -> u64 {
        let mode = mode();
        if mode == CheckMode::Off {
            return 0;
        }
        let deepest: Option<(&'static LockClass, u16)> = HELD.with(|h| {
            h.borrow()
                .iter()
                .map(|&(c, _)| (c, c.rank))
                .max_by_key(|&(_, r)| r)
        });
        if let Some((held, held_rank)) = deepest {
            let chained = class.chainable && std::ptr::eq(class, held);
            if class.rank < held_rank || (class.rank == held_rank && !chained) {
                report_violation(
                    LockOrderViolation {
                        acquiring: class.name,
                        acquiring_rank: class.rank,
                        holding: held.name,
                        holding_rank: held_rank,
                        thread_ordinal: crate::events::thread_ordinal(),
                        thread_name: std::thread::current()
                            .name()
                            .unwrap_or("<unnamed>")
                            .to_string(),
                        span: crate::trace::current_span(),
                    },
                    mode == CheckMode::Panic,
                );
            }
        }
        push(class)
    }

    /// Push without an order check — non-blocking `try_*` acquisitions
    /// cannot create a wait cycle by themselves, but what they hold still
    /// constrains later blocking acquisitions.
    pub fn push(class: &'static LockClass) -> u64 {
        if mode() == CheckMode::Off {
            return 0;
        }
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        HELD.with(|h| h.borrow_mut().push((class, token)));
        token
    }

    /// Remove by token; guards drop in arbitrary order (retained-path
    /// inserts release leaf-first, hand-over-hand releases parent-first).
    pub fn exit(token: u64) {
        if token == 0 {
            return;
        }
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().position(|&(_, t)| t == token) {
                held.swap_remove(pos);
            }
        });
    }

    /// Current held-stack depth of this thread (tests).
    pub fn held_depth() -> usize {
        HELD.with(|h| h.borrow().len())
    }
}

/// Set the lock-order checker's mode. Debug builds default to
/// [`CheckMode::Panic`]; release builds compile the checker out and ignore
/// this entirely. Process-global (the `VolapConfig::lock_check` knob sets
/// it at cluster start).
pub fn set_check_mode(mode: CheckMode) {
    #[cfg(debug_assertions)]
    checker::set_mode(mode);
    #[cfg(not(debug_assertions))]
    let _ = mode;
}

/// The checker's current mode ([`CheckMode::Off`] in release builds).
pub fn check_mode() -> CheckMode {
    #[cfg(debug_assertions)]
    {
        checker::mode()
    }
    #[cfg(not(debug_assertions))]
    {
        CheckMode::Off
    }
}

/// Depth of the calling thread's held-lock stack (0 when the checker is off
/// or in release builds). Test-support.
pub fn held_depth() -> usize {
    #[cfg(debug_assertions)]
    {
        checker::held_depth()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(debug_assertions)]
#[inline]
fn checker_check_and_push(class: &'static LockClass) -> u64 {
    checker::check_and_push(class)
}

#[cfg(not(debug_assertions))]
#[inline]
fn checker_check_and_push(_class: &'static LockClass) -> u64 {
    0
}

#[cfg(debug_assertions)]
#[inline]
fn checker_push(class: &'static LockClass) -> u64 {
    checker::push(class)
}

#[cfg(not(debug_assertions))]
#[inline]
fn checker_push(_class: &'static LockClass) -> u64 {
    0
}

#[cfg(debug_assertions)]
#[inline]
fn checker_exit(token: u64) {
    checker::exit(token);
}

#[cfg(not(debug_assertions))]
#[inline]
fn checker_exit(_token: u64) {}

// ---------------------------------------------------------------------------
// Hold token: telemetry + checker bookkeeping released on guard drop
// ---------------------------------------------------------------------------

/// Bookkeeping attached to every guard: records hold time (when timed) and
/// pops the checker's held stack when the guard drops. Declared after the
/// raw guard in each wrapper so the lock is released first.
struct HoldToken {
    class: &'static LockClass,
    acquired_at: Option<Instant>,
    checker_token: u64,
}

impl Drop for HoldToken {
    fn drop(&mut self) {
        if let Some(at) = self.acquired_at {
            self.class.note_released(at);
        }
        checker_exit(self.checker_token);
    }
}

/// Shared acquire protocol: order-check, then fast-path `try` acquire (one
/// relaxed increment), falling back to a timed blocking acquire.
#[inline]
fn instrumented_acquire<G>(
    class: &'static LockClass,
    try_acquire: impl FnOnce() -> Option<G>,
    acquire: impl FnOnce() -> G,
) -> (G, HoldToken) {
    let checker_token = checker_check_and_push(class);
    if !TELEMETRY.load(Ordering::Relaxed) {
        return (acquire(), HoldToken { class, acquired_at: None, checker_token });
    }
    match try_acquire() {
        Some(guard) => {
            let acquired_at = class.note_uncontended();
            (guard, HoldToken { class, acquired_at, checker_token })
        }
        None => {
            let t0 = Instant::now();
            let guard = acquire();
            let acquired_at = class.note_contended(t0.elapsed());
            (guard, HoldToken { class, acquired_at, checker_token })
        }
    }
}

/// Telemetry for a successful public `try_*` acquisition (no order check:
/// non-blocking acquisitions cannot form a wait cycle by themselves).
#[inline]
fn instrumented_try<G>(class: &'static LockClass, guard: G) -> (G, HoldToken) {
    let checker_token = checker_push(class);
    let acquired_at = if TELEMETRY.load(Ordering::Relaxed) {
        class.note_uncontended()
    } else {
        None
    };
    (guard, HoldToken { class, acquired_at, checker_token })
}

// ---------------------------------------------------------------------------
// ObsMutex
// ---------------------------------------------------------------------------

/// An instrumented drop-in replacement for `parking_lot::Mutex`, tagged
/// with a static [`LockClass`].
pub struct ObsMutex<T: ?Sized> {
    class: &'static LockClass,
    inner: parking_lot::Mutex<T>,
}

impl<T> ObsMutex<T> {
    /// A new instrumented mutex belonging to `class`.
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        Self { class, inner: parking_lot::Mutex::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> ObsMutex<T> {
    /// The lock's class.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Acquire, recording telemetry and enforcing the lock hierarchy.
    pub fn lock(&self) -> ObsMutexGuard<'_, T> {
        let (guard, hold) =
            instrumented_acquire(self.class, || self.inner.try_lock(), || self.inner.lock());
        ObsMutexGuard { guard, _hold: hold }
    }

    /// Non-blocking acquire. Exempt from the order check (cannot block),
    /// but a held try-guard still constrains later blocking acquisitions.
    pub fn try_lock(&self) -> Option<ObsMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        let (guard, hold) = instrumented_try(self.class, guard);
        Some(ObsMutexGuard { guard, _hold: hold })
    }

    /// Uncontended access through exclusive borrow (no telemetry).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for ObsMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsMutex")
            .field("class", &self.class.name)
            .field("data", &self.inner)
            .finish()
    }
}

/// Guard from [`ObsMutex::lock`]. Field order releases the lock before the
/// hold token records.
pub struct ObsMutexGuard<'a, T: ?Sized> {
    guard: parking_lot::MutexGuard<'a, T>,
    _hold: HoldToken,
}

impl<T: ?Sized> Deref for ObsMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for ObsMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// ---------------------------------------------------------------------------
// ObsRwLock
// ---------------------------------------------------------------------------

/// An instrumented drop-in replacement for `parking_lot::RwLock`, tagged
/// with a static [`LockClass`]. Readers and writers share one class.
pub struct ObsRwLock<T: ?Sized> {
    class: &'static LockClass,
    inner: parking_lot::RwLock<T>,
}

impl<T> ObsRwLock<T> {
    /// A new instrumented reader-writer lock belonging to `class`.
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        Self { class, inner: parking_lot::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Acquire an owned write guard through an `Arc` (the `arc_lock`
    /// pattern): the guard keeps the lock alive and can be moved across
    /// scopes — hand-over-hand write coupling down a tree.
    pub fn write_arc(this: &Arc<Self>) -> ObsArcRwLockWriteGuard<T> {
        let arc = Arc::clone(this);
        let (guard, hold) = instrumented_acquire(
            arc.class,
            || arc.inner.try_write(),
            || arc.inner.write(),
        );
        // SAFETY: the guard borrows from the `RwLock` inside `arc`, which is
        // heap-allocated and kept alive by the `Arc` stored alongside it.
        // `ObsArcRwLockWriteGuard::drop` releases the guard before the `Arc`,
        // so the borrow never outlives the allocation; the `'static`
        // lifetime is never exposed to callers.
        let guard: parking_lot::RwLockWriteGuard<'static, T> =
            unsafe { std::mem::transmute::<parking_lot::RwLockWriteGuard<'_, T>, _>(guard) };
        ObsArcRwLockWriteGuard { guard: ManuallyDrop::new(guard), _hold: hold, _arc: arc }
    }
}

impl<T: ?Sized> ObsRwLock<T> {
    /// The lock's class.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Acquire shared, recording telemetry and enforcing the hierarchy.
    pub fn read(&self) -> ObsRwLockReadGuard<'_, T> {
        let (guard, hold) =
            instrumented_acquire(self.class, || self.inner.try_read(), || self.inner.read());
        ObsRwLockReadGuard { guard, _hold: hold }
    }

    /// Acquire exclusive, recording telemetry and enforcing the hierarchy.
    pub fn write(&self) -> ObsRwLockWriteGuard<'_, T> {
        let (guard, hold) =
            instrumented_acquire(self.class, || self.inner.try_write(), || self.inner.write());
        ObsRwLockWriteGuard { guard, _hold: hold }
    }

    /// Non-blocking shared acquire (order-check exempt, like
    /// [`ObsMutex::try_lock`]).
    pub fn try_read(&self) -> Option<ObsRwLockReadGuard<'_, T>> {
        let guard = self.inner.try_read()?;
        let (guard, hold) = instrumented_try(self.class, guard);
        Some(ObsRwLockReadGuard { guard, _hold: hold })
    }

    /// Uncontended access through exclusive borrow (no telemetry).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for ObsRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsRwLock")
            .field("class", &self.class.name)
            .field("data", &self.inner)
            .finish()
    }
}

/// Shared guard from [`ObsRwLock::read`].
pub struct ObsRwLockReadGuard<'a, T: ?Sized> {
    guard: parking_lot::RwLockReadGuard<'a, T>,
    _hold: HoldToken,
}

impl<T: ?Sized> Deref for ObsRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard from [`ObsRwLock::write`].
pub struct ObsRwLockWriteGuard<'a, T: ?Sized> {
    guard: parking_lot::RwLockWriteGuard<'a, T>,
    _hold: HoldToken,
}

impl<T: ?Sized> Deref for ObsRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for ObsRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Owned write guard from [`ObsRwLock::write_arc`].
pub struct ObsArcRwLockWriteGuard<T: ?Sized + 'static> {
    guard: ManuallyDrop<parking_lot::RwLockWriteGuard<'static, T>>,
    _hold: HoldToken,
    _arc: Arc<ObsRwLock<T>>,
}

impl<T: ?Sized> Deref for ObsArcRwLockWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for ObsArcRwLockWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for ObsArcRwLockWriteGuard<T> {
    fn drop(&mut self) {
        // SAFETY: `guard` is dropped exactly once, here, before the `Arc`
        // (and the hold token) keeping its referent alive.
        unsafe { ManuallyDrop::drop(&mut self.guard) };
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Per-class summary carried in `Snapshot::locks` (the full wait/hold
/// distributions ride alongside as labeled `volap_lock_*_seconds`
/// histograms).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LockClassSnapshot {
    /// Class name.
    pub class: String,
    /// Rank in the global hierarchy.
    pub rank: u16,
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to block.
    pub contended: u64,
    /// Observations in the wait histogram.
    pub wait_count: u64,
    /// Total blocked time, seconds.
    pub wait_sum_seconds: f64,
    /// Observations in the hold histogram.
    pub hold_count: u64,
    /// Total timed hold duration, seconds.
    pub hold_sum_seconds: f64,
}

impl LockClassSnapshot {
    /// Contended fraction of all acquisitions (0 when never acquired).
    pub fn contention_frac(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

/// Visit every registered class without allocating:
/// `(name, acquisitions, contended, wait_sum_ns)` per class, in
/// registration order. The history sampler turns the deltas into per-class
/// contention-fraction series each interval, so this path must stay cheap —
/// it holds the class-registry mutex only for the duration of the relaxed
/// loads (that mutex is otherwise touched once per class, at first
/// acquisition).
pub fn visit_classes(mut f: impl FnMut(&'static str, u64, u64, u64)) {
    for class in CLASS_REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        f(
            class.name,
            class.acquisitions.load(Ordering::Relaxed),
            class.contended.load(Ordering::Relaxed),
            class.wait.sum_ns.load(Ordering::Relaxed),
        );
    }
}

/// Snapshot every class acquired so far (sorted by rank, then name) and
/// append the metric renditions — `volap_lock_acquisitions_total{class=..}`,
/// `volap_lock_contended_total{class=..}`, `volap_lock_wait_seconds{..}`,
/// `volap_lock_hold_seconds{..}`, and the plain
/// `volap_lock_order_violations_total` — onto the given metric lists.
pub fn export_into(
    counters: &mut Vec<ScalarSnapshot<u64>>,
    histograms: &mut Vec<HistogramSnapshot>,
) -> Vec<LockClassSnapshot> {
    let mut classes: Vec<&'static LockClass> =
        CLASS_REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clone();
    classes.sort_by_key(|c| (c.rank, c.name));
    let mut out = Vec::with_capacity(classes.len());
    for class in &classes {
        counters.push(ScalarSnapshot {
            id: MetricId::labeled("volap_lock_acquisitions_total", "class", class.name),
            value: class.acquisitions.load(Ordering::Relaxed),
        });
    }
    for class in &classes {
        counters.push(ScalarSnapshot {
            id: MetricId::labeled("volap_lock_contended_total", "class", class.name),
            value: class.contended.load(Ordering::Relaxed),
        });
    }
    counters.push(ScalarSnapshot {
        id: MetricId::plain("volap_lock_order_violations_total"),
        value: VIOLATION_COUNT.load(Ordering::Relaxed),
    });
    for class in &classes {
        histograms.push(
            class.hold.snapshot(MetricId::labeled("volap_lock_hold_seconds", "class", class.name)),
        );
    }
    for class in &classes {
        histograms.push(
            class.wait.snapshot(MetricId::labeled("volap_lock_wait_seconds", "class", class.name)),
        );
    }
    for class in classes {
        let wait = class.wait.snapshot(MetricId::plain(""));
        let hold = class.hold.snapshot(MetricId::plain(""));
        out.push(LockClassSnapshot {
            class: class.name.to_string(),
            rank: class.rank,
            acquisitions: class.acquisitions.load(Ordering::Relaxed),
            contended: class.contended.load(Ordering::Relaxed),
            wait_count: wait.count,
            wait_sum_seconds: wait.sum_seconds,
            hold_count: hold.count,
            hold_sum_seconds: hold.sum_seconds,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mode-mutating tests share one serial section and restore Panic.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    // Only the debug_assertions-gated checker tests construct this.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    struct ModeGuard;
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    impl ModeGuard {
        fn set(mode: CheckMode) -> Self {
            set_check_mode(mode);
            ModeGuard
        }
    }
    impl Drop for ModeGuard {
        fn drop(&mut self) {
            set_check_mode(CheckMode::Panic);
        }
    }

    #[test]
    fn telemetry_counts_acquisitions_and_contention() {
        static C: LockClass = LockClass::new("test.telemetry", 9001);
        let m = Arc::new(ObsMutex::new(&C, 0u64));
        for _ in 0..10 {
            *m.lock() += 1;
        }
        assert_eq!(*m.lock(), 10);
        assert!(C.acquisitions() >= 11);
        // Force contention: hold the lock while another thread blocks on it.
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            *m2.lock() += 1;
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        t.join().unwrap();
        assert!(C.contended() >= 1, "blocked acquisition must count as contended");
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        let locks = export_into(&mut counters, &mut histograms);
        let me = locks.iter().find(|l| l.class == "test.telemetry").unwrap();
        assert_eq!(me.rank, 9001);
        assert!(me.acquisitions >= 12);
        assert!(me.wait_count >= 1, "contended wait must reach the histogram");
        assert!(me.wait_sum_seconds > 0.0);
        assert!(me.hold_count >= 1, "contended acquisitions time their hold");
        assert!(counters
            .iter()
            .any(|c| c.id.name == "volap_lock_acquisitions_total"
                && c.id.label.as_deref_pair() == Some(("class", "test.telemetry"))));
    }

    // Helper so the label assertion above reads sanely.
    trait DerefPair {
        fn as_deref_pair(&self) -> Option<(&str, &str)>;
    }
    impl DerefPair for Option<(String, String)> {
        fn as_deref_pair(&self) -> Option<(&str, &str)> {
            self.as_ref().map(|(k, v)| (k.as_str(), v.as_str()))
        }
    }

    #[test]
    fn rank_respecting_nesting_is_allowed() {
        static LO: LockClass = LockClass::new("test.lo", 9100);
        static HI: LockClass = LockClass::new("test.hi", 9101);
        let lo = ObsMutex::new(&LO, ());
        let hi = ObsRwLock::new(&HI, ());
        let _g1 = lo.lock();
        let _g2 = hi.read();
        let _g3 = hi.try_read();
        assert!(held_depth() == 0 || held_depth() == 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn inverted_acquisition_panics_by_default() {
        let _s = serial();
        static LO: LockClass = LockClass::new("test.inv_lo", 9110);
        static HI: LockClass = LockClass::new("test.inv_hi", 9111);
        let lo = ObsMutex::new(&LO, ());
        let hi = ObsMutex::new(&HI, ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _hi = hi.lock();
            let _lo = lo.lock(); // rank 9110 while holding 9111: must fire
        }));
        assert!(result.is_err(), "inversion must panic under CheckMode::Panic");
        let viols = take_violations();
        let v = viols.iter().find(|v| v.acquiring == "test.inv_lo").unwrap();
        assert_eq!(v.holding, "test.inv_hi");
        assert!(v.acquiring_rank < v.holding_rank);
        assert_eq!(held_depth(), 0, "unwound guards must clear the held stack");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn record_mode_logs_without_panicking() {
        let _s = serial();
        let _m = ModeGuard::set(CheckMode::Record);
        static LO: LockClass = LockClass::new("test.rec_lo", 9120);
        static HI: LockClass = LockClass::new("test.rec_hi", 9121);
        let before = violation_count();
        let lo = ObsMutex::new(&LO, ());
        let hi = ObsMutex::new(&HI, ());
        {
            let _hi = hi.lock();
            let _lo = lo.lock();
        }
        assert!(violation_count() > before);
        let viols = take_violations();
        assert!(viols.iter().any(|v| v.acquiring == "test.rec_lo" && v.holding == "test.rec_hi"));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn chainable_class_self_nests_but_equal_rank_cross_class_fires() {
        let _s = serial();
        let _m = ModeGuard::set(CheckMode::Record);
        static NODE: LockClass = LockClass::new_chainable("test.chain", 9130);
        static PEER: LockClass = LockClass::new("test.chain_peer", 9130);
        let a = Arc::new(ObsRwLock::new(&NODE, 1));
        let b = Arc::new(ObsRwLock::new(&NODE, 2));
        let before = violation_count();
        // Hand-over-hand: acquire child while holding parent, release parent.
        let mut cur = ObsRwLock::write_arc(&a);
        *cur += 10;
        let next = ObsRwLock::write_arc(&b);
        cur = next;
        assert_eq!(*cur, 2);
        drop(cur);
        assert_eq!(violation_count(), before, "chainable self-nesting is legal");
        // An equal-rank acquisition of a *different* class is not.
        let peer = ObsMutex::new(&PEER, ());
        {
            let _n = a.read();
            let _p = peer.lock();
        }
        assert!(violation_count() > before);
        take_violations();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn out_of_order_guard_drops_keep_the_stack_consistent() {
        static A: LockClass = LockClass::new("test.ooo_a", 9140);
        static B: LockClass = LockClass::new("test.ooo_b", 9141);
        static C: LockClass = LockClass::new("test.ooo_c", 9142);
        let (a, b, c) = (ObsMutex::new(&A, ()), ObsMutex::new(&B, ()), ObsMutex::new(&C, ()));
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        drop(gb); // middle guard first (SpanGuard-style early drop)
        drop(ga); // then the bottom
        if check_mode() != CheckMode::Off {
            assert_eq!(held_depth(), 1, "only C should remain held");
        }
        drop(gc);
        assert_eq!(held_depth(), 0);
    }

    #[test]
    fn telemetry_switch_disables_recording() {
        let _s = serial();
        static C: LockClass = LockClass::new("test.switch", 9150);
        let m = ObsMutex::new(&C, ());
        drop(m.lock());
        let after_on = C.acquisitions();
        assert!(after_on >= 1);
        set_telemetry_enabled(false);
        drop(m.lock());
        assert_eq!(C.acquisitions(), after_on, "switched off: no counting");
        set_telemetry_enabled(true);
    }

    #[test]
    fn always_time_populates_hold_histogram_without_contention() {
        let _s = serial();
        static C: LockClass = LockClass::new("test.timed", 9160);
        set_always_time(true);
        let m = ObsMutex::new(&C, ());
        {
            let _g = m.lock();
            std::thread::sleep(Duration::from_millis(2));
        }
        set_always_time(false);
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        let locks = export_into(&mut counters, &mut histograms);
        let me = locks.iter().find(|l| l.class == "test.timed").unwrap();
        assert!(me.hold_count >= 1);
        assert!(me.hold_sum_seconds >= 0.001);
    }

    #[test]
    fn thread_wait_counter_accumulates_on_contention() {
        static C: LockClass = LockClass::new("test.wait_tls", 9170);
        let m = Arc::new(ObsMutex::new(&C, ()));
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let before = thread_wait_ns();
            let _g = m2.lock();
            thread_wait_ns() - before
        });
        std::thread::sleep(Duration::from_millis(15));
        drop(g);
        let waited = t.join().unwrap();
        assert!(waited > 5_000_000, "blocked thread must accumulate wait ns, got {waited}");
    }
}
