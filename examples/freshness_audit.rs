//! Freshness audit: measure real cross-server staleness, then extrapolate
//! with the §IV-F PBS simulation.
//!
//! Part 1 drives a live two-server cluster: one session inserts, a session
//! on the *other* server polls until the inserts become visible, recording
//! the delay. Part 2 feeds the measured insert-latency distribution and
//! expansion probability into [`volap::FreshnessSim`] to produce the
//! paper's Figure-10 curves at the paper's own scale (3 s sync, 50 k
//! inserts/s).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example freshness_audit
//! ```

use std::time::{Duration, Instant};

use volap::{Cluster, FreshnessSim, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};

fn main() {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 3;
    cfg.servers = 2;
    cfg.sync_period = Duration::from_millis(100);
    let sync = cfg.sync_period;
    let cluster = Cluster::start(cfg);
    let writer = cluster.client_on(0);
    let reader = cluster.client_on(1);
    let mut gen = DataGen::new(&schema, 11, 1.5);

    println!("== part 1: live cross-server staleness (sync period {sync:?}) ==");
    let mut latencies = Vec::new();
    for item in gen.items(3_000) {
        let t = Instant::now();
        writer.insert(&item).expect("insert");
        latencies.push(t.elapsed().as_secs_f64());
    }
    let q = QueryBox::all(&schema);
    let (base, _) = reader.query(&q).expect("query");
    let mut seen = base.count;
    let mut delays = Vec::new();
    for _ in 0..20 {
        let batch = gen.items(25);
        for it in &batch {
            writer.insert(it).expect("insert");
        }
        let target = seen + batch.len() as u64;
        let t = Instant::now();
        loop {
            let (agg, _) = reader.query(&q).expect("query");
            if agg.count >= target {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        delays.push(t.elapsed());
        seen = target;
    }
    delays.sort();
    println!(
        "visibility delay over 20 probes: median {:?}, p90 {:?}, max {:?}",
        delays[delays.len() / 2],
        delays[delays.len() * 9 / 10],
        delays.last().unwrap()
    );
    let expansion_prob = cluster.expansion_prob();
    println!("measured expansion probability: {expansion_prob:.5}");
    cluster.shutdown();

    println!("\n== part 2: PBS simulation at paper scale (3 s sync, 50k inserts/s) ==");
    let sim = FreshnessSim {
        insert_rate: 50_000.0,
        coverage: 0.5,
        sync_period: 3.0,
        apply_latency: 0.01,
        expansion_prob,
        insert_latency_samples: latencies,
    };
    println!("{:>12} {:>18}", "elapsed (s)", "avg missed inserts");
    for e in [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0] {
        println!("{e:>12.2} {:>18.4}", sim.avg_missed(e, 200_000, 1));
    }
    println!("\nP[k missed] at elapsed 0.25 / 1 / 2 s:");
    println!("{:>3} {:>12} {:>12} {:>12}", "k", "0.25s", "1s", "2s");
    let p25 = sim.missed_pmf(0.25, 4, 200_000, 2);
    let p1 = sim.missed_pmf(1.0, 4, 200_000, 3);
    let p2 = sim.missed_pmf(2.0, 4, 200_000, 4);
    for k in 1..=4 {
        println!("{k:>3} {:>12.6} {:>12.6} {:>12.6}", p25[k], p1[k], p2[k]);
    }
    println!(
        "\nmax observed visibility delay over 1M simulated inserts: {:.3} s \
         (paper: consistency always < 3 s)",
        sim.max_visibility(1_000_000, 5)
    );
}
