//! Workload generation for the VOLAP experiments.
//!
//! The paper evaluates on TPC-DS data (Figure 1's hierarchies) with
//! randomly generated queries that "span a wide range of coverages, and
//! specify values at various levels in all dimensions"; queries are then
//! *binned by their true coverage* — the fraction of the database a query
//! aggregates (§IV). This crate reproduces that pipeline synthetically:
//!
//! * [`DataGen`] — deterministic item generator over any [`Schema`], with a
//!   Zipf-like per-level skew so that hierarchy prefixes hold realistic,
//!   unequal shares of the data (what makes medium/high coverage queries
//!   exist at all).
//! * [`QueryGen`] — query generator that anchors prefixes on sampled data
//!   items (so queries always hit populated subtrees) and varies the
//!   constrained levels.
//! * [`coverage`] / [`CoverageBand`] — true-coverage measurement and the
//!   paper's low / medium / high binning (< 33 %, 33–66 %, > 66 %), plus
//!   fine-grained bins for the Figure-9 heat maps.
//! * [`Op`] / [`mixed_stream`] — interleaved insert/query streams for the
//!   workload-mix experiments (Figure 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use volap_dims::{DimPath, Item, QueryBox, Schema};

/// Deterministic, skewed item generator.
///
/// Each hierarchy child at every level is drawn from a truncated power-law:
/// child `i` has probability proportional to `1 / (i + 1)^skew`. `skew = 0`
/// is uniform; `1.5` (the default used by the experiments) concentrates
/// roughly a third of the mass in the first child, mimicking the hot
/// products / hot stores shape of retail data.
pub struct DataGen {
    schema: Schema,
    rng: StdRng,
    /// Per dimension, per level: cumulative child-probability table.
    tables: Vec<Vec<Vec<f64>>>,
}

impl DataGen {
    /// Create a generator with the given seed and skew exponent.
    pub fn new(schema: &Schema, seed: u64, skew: f64) -> Self {
        assert!(skew >= 0.0, "skew must be non-negative");
        let tables = schema
            .dimensions()
            .iter()
            .map(|dim| {
                dim.levels
                    .iter()
                    .map(|level| {
                        let mut cum = Vec::with_capacity(level.fanout as usize);
                        let mut total = 0.0;
                        for i in 0..level.fanout {
                            total += 1.0 / ((i + 1) as f64).powf(skew);
                            cum.push(total);
                        }
                        for c in &mut cum {
                            *c /= total;
                        }
                        cum
                    })
                    .collect()
            })
            .collect();
        Self { schema: schema.clone(), rng: StdRng::seed_from_u64(seed), tables }
    }

    /// The schema items are generated for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generate one item.
    pub fn item(&mut self) -> Item {
        let dims = self.schema.dims();
        let mut coords = Vec::with_capacity(dims);
        for d in 0..dims {
            let dim = self.schema.dim(d);
            let mut components = Vec::with_capacity(dim.depth());
            for l in 0..dim.depth() {
                let table = &self.tables[d][l];
                let u: f64 = self.rng.gen();
                let child = table.partition_point(|&c| c < u).min(table.len() - 1);
                components.push(child as u64);
            }
            coords.push(dim.ordinal(&components));
        }
        // Log-normal-ish positive measure (e.g. a sale price).
        let m: f64 = self.rng.gen::<f64>() * 2.0 - 1.0;
        Item::new(coords, (m * 1.5).exp() * 25.0)
    }

    /// Generate `n` items.
    pub fn items(&mut self, n: usize) -> Vec<Item> {
        (0..n).map(|_| self.item()).collect()
    }
}

/// Fraction of `items` that fall inside `q` — the paper's *query coverage*.
pub fn coverage(items: &[Item], q: &QueryBox) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    let hit = items.iter().filter(|it| q.contains_item(it)).count();
    hit as f64 / items.len() as f64
}

/// The paper's coverage bands: low (< 33 %), medium (33–66 %), high (> 66 %).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoverageBand {
    /// Below 33 % of the database.
    Low,
    /// Between 33 % and 66 %.
    Medium,
    /// Above 66 %.
    High,
}

impl CoverageBand {
    /// Classify a coverage fraction.
    pub fn of(frac: f64) -> Self {
        if frac < 1.0 / 3.0 {
            CoverageBand::Low
        } else if frac <= 2.0 / 3.0 {
            CoverageBand::Medium
        } else {
            CoverageBand::High
        }
    }

    /// All bands in order.
    pub fn all() -> [CoverageBand; 3] {
        [CoverageBand::Low, CoverageBand::Medium, CoverageBand::High]
    }
}

impl std::fmt::Display for CoverageBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoverageBand::Low => "low",
            CoverageBand::Medium => "medium",
            CoverageBand::High => "high",
        })
    }
}

/// Random query generator.
///
/// Every query names, per dimension, either the ALL root or a prefix (at a
/// random level) of a data item sampled from the database — anchoring on
/// real items is what lets generated queries cover populated subtrees
/// instead of empty space.
pub struct QueryGen {
    schema: Schema,
    rng: StdRng,
    /// Probability that a dimension is left unconstrained (ALL root).
    pub root_prob: f64,
}

impl QueryGen {
    /// Create a query generator.
    pub fn new(schema: &Schema, seed: u64, root_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&root_prob));
        Self { schema: schema.clone(), rng: StdRng::seed_from_u64(seed), root_prob }
    }

    /// Generate one query anchored on `sample` (non-empty).
    pub fn query(&mut self, sample: &[Item]) -> QueryBox {
        assert!(!sample.is_empty(), "query generation needs sample items");
        let anchor = &sample[self.rng.gen_range(0..sample.len())];
        let dims = self.schema.dims();
        let paths: Vec<DimPath> = (0..dims)
            .map(|d| {
                if self.rng.gen::<f64>() < self.root_prob {
                    DimPath::root(d)
                } else {
                    let full = anchor.path(&self.schema, d);
                    let depth = full.components.len();
                    let level = self.rng.gen_range(1..=depth);
                    DimPath::new(d, full.components[..level].to_vec())
                }
            })
            .collect();
        QueryBox::from_paths(&self.schema, &paths)
    }

    /// Generate queries until each of the three coverage bands holds
    /// `per_band` queries (measured against `sample`), or `max_attempts`
    /// generations have been made. Returns `[low, medium, high]`.
    pub fn binned(
        &mut self,
        sample: &[Item],
        per_band: usize,
        max_attempts: usize,
    ) -> [Vec<QueryBox>; 3] {
        let mut bins: [Vec<QueryBox>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..max_attempts {
            if bins.iter().all(|b| b.len() >= per_band) {
                break;
            }
            let q = self.query(sample);
            let band = CoverageBand::of(coverage(sample, &q));
            let idx = band as usize;
            if bins[idx].len() < per_band {
                bins[idx].push(q);
            }
        }
        bins
    }

    /// Fine-grained coverage bins for the Figure-9 heat maps: `nbins`
    /// equal-width coverage buckets over (0, 1], each holding up to
    /// `per_bin` queries with their measured coverage. Zero-coverage
    /// queries are discarded.
    pub fn fine_binned(
        &mut self,
        sample: &[Item],
        nbins: usize,
        per_bin: usize,
        max_attempts: usize,
    ) -> Vec<Vec<(f64, QueryBox)>> {
        let mut bins = vec![Vec::new(); nbins];
        for _ in 0..max_attempts {
            if bins.iter().all(|b: &Vec<(f64, QueryBox)>| b.len() >= per_bin) {
                break;
            }
            let q = self.query(sample);
            let c = coverage(sample, &q);
            if c <= 0.0 {
                continue;
            }
            let idx = ((c * nbins as f64) as usize).min(nbins - 1);
            if bins[idx].len() < per_bin {
                bins[idx].push((c, q));
            }
        }
        bins
    }
}

/// One operation of a client stream.
#[derive(Debug, Clone)]
pub enum Op {
    /// Insert a new item.
    Insert(Item),
    /// Run an aggregate query.
    Query(QueryBox),
}

/// Build an interleaved operation stream with the given insert fraction
/// (the paper's *workload mix*), drawing queries uniformly from `queries`.
pub fn mixed_stream(
    gen: &mut DataGen,
    queries: &[QueryBox],
    insert_pct: f64,
    n: usize,
    seed: u64,
) -> Vec<Op> {
    assert!((0.0..=1.0).contains(&insert_pct));
    assert!(
        insert_pct >= 1.0 - f64::EPSILON || !queries.is_empty(),
        "need queries for a mixed stream"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < insert_pct {
                Op::Insert(gen.item())
            } else {
                Op::Query(queries[rng.gen_range(0..queries.len())].clone())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_are_valid_and_deterministic() {
        let schema = Schema::tpcds();
        let mut g1 = DataGen::new(&schema, 42, 1.5);
        let mut g2 = DataGen::new(&schema, 42, 1.5);
        let a = g1.items(200);
        let b = g2.items(200);
        assert_eq!(a, b, "same seed, same stream");
        for it in &a {
            assert!(it.validate(&schema));
            assert!(it.measure > 0.0);
        }
        let mut g3 = DataGen::new(&schema, 43, 1.5);
        assert_ne!(a, g3.items(200), "different seed, different stream");
    }

    #[test]
    fn skew_concentrates_mass() {
        let schema = Schema::uniform(1, 1, 16);
        let mut skewed = DataGen::new(&schema, 7, 2.0);
        let mut uniform = DataGen::new(&schema, 7, 0.0);
        let count_zero = |items: &[Item]| items.iter().filter(|i| i.coords[0] == 0).count();
        let s = skewed.items(4000);
        let u = uniform.items(4000);
        assert!(count_zero(&s) > 2 * count_zero(&u), "skew must concentrate on child 0");
        let uz = count_zero(&u) as f64 / 4000.0;
        assert!((uz - 1.0 / 16.0).abs() < 0.03, "uniform should spread evenly, got {uz}");
    }

    #[test]
    fn queries_have_positive_coverage() {
        let schema = Schema::tpcds();
        let mut dg = DataGen::new(&schema, 1, 1.5);
        let sample = dg.items(2000);
        let mut qg = QueryGen::new(&schema, 2, 0.6);
        for _ in 0..50 {
            let q = qg.query(&sample);
            assert!(coverage(&sample, &q) > 0.0, "anchored queries must hit data");
        }
    }

    #[test]
    fn binning_fills_all_bands() {
        let schema = Schema::tpcds();
        let mut dg = DataGen::new(&schema, 1, 1.5);
        let sample = dg.items(3000);
        let mut qg = QueryGen::new(&schema, 3, 0.7);
        let bins = qg.binned(&sample, 10, 50_000);
        for (band, bin) in CoverageBand::all().iter().zip(&bins) {
            assert!(bin.len() >= 10, "band {band} only has {} queries", bin.len());
            for q in bin {
                assert_eq!(CoverageBand::of(coverage(&sample, q)), *band);
            }
        }
    }

    #[test]
    fn band_classification_boundaries() {
        assert_eq!(CoverageBand::of(0.0), CoverageBand::Low);
        assert_eq!(CoverageBand::of(0.32), CoverageBand::Low);
        assert_eq!(CoverageBand::of(0.34), CoverageBand::Medium);
        assert_eq!(CoverageBand::of(0.66), CoverageBand::Medium);
        assert_eq!(CoverageBand::of(0.67), CoverageBand::High);
        assert_eq!(CoverageBand::of(1.0), CoverageBand::High);
    }

    #[test]
    fn mixed_stream_respects_ratio() {
        let schema = Schema::tpcds();
        let mut dg = DataGen::new(&schema, 5, 1.5);
        let sample = dg.items(500);
        let mut qg = QueryGen::new(&schema, 6, 0.6);
        let queries: Vec<QueryBox> = (0..20).map(|_| qg.query(&sample)).collect();
        let stream = mixed_stream(&mut dg, &queries, 0.25, 4000, 9);
        let inserts = stream.iter().filter(|op| matches!(op, Op::Insert(_))).count();
        let frac = inserts as f64 / stream.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "got insert fraction {frac}");
    }

    #[test]
    fn pure_insert_stream_needs_no_queries() {
        let schema = Schema::uniform(2, 2, 4);
        let mut dg = DataGen::new(&schema, 5, 0.0);
        let stream = mixed_stream(&mut dg, &[], 1.0, 100, 1);
        assert!(stream.iter().all(|op| matches!(op, Op::Insert(_))));
    }

    #[test]
    fn fine_bins_are_ordered() {
        let schema = Schema::tpcds();
        let mut dg = DataGen::new(&schema, 8, 1.5);
        let sample = dg.items(2000);
        let mut qg = QueryGen::new(&schema, 9, 0.7);
        let bins = qg.fine_binned(&sample, 10, 3, 30_000);
        for (i, bin) in bins.iter().enumerate() {
            for (c, _) in bin {
                let lo = i as f64 / 10.0;
                let hi = (i + 1) as f64 / 10.0;
                assert!(*c > lo - 1e-9 && *c <= hi + 1e-9, "coverage {c} outside bin {i}");
            }
        }
        // At least the low bins must fill for this workload.
        assert!(!bins[0].is_empty() || !bins[1].is_empty());
    }
}
