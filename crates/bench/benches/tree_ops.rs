//! Criterion microbenchmarks: shard data-structure operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use volap_data::{DataGen, QueryGen};
use volap_dims::Schema;
use volap_tree::{build_store, StoreKind, TreeConfig};

fn bench_inserts(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 1, 1.5);
    let items = gen.items(20_000);
    let mut group = c.benchmark_group("insert");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    for kind in [
        StoreKind::Array,
        StoreKind::PdcMbr,
        StoreKind::PdcMds,
        StoreKind::HilbertPdcMds,
        StoreKind::HilbertRTree,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &items, |b, items| {
            b.iter(|| {
                let store = build_store(kind, &schema, &TreeConfig::default());
                for it in items {
                    store.insert(it);
                }
                store.len()
            })
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 2, 1.5);
    let items = gen.items(100_000);
    let sample = &items[..10_000];
    let mut qg = QueryGen::new(&schema, 3, 0.65);
    let queries: Vec<_> = (0..64).map(|_| qg.query(sample)).collect();
    let mut group = c.benchmark_group("query");
    group.throughput(Throughput::Elements(queries.len() as u64));
    for kind in [StoreKind::PdcMds, StoreKind::HilbertPdcMds, StoreKind::HilbertRTree] {
        let store = build_store(kind, &schema, &TreeConfig::default());
        store.bulk_insert(items.clone());
        group.bench_with_input(BenchmarkId::new("seq", kind), &queries, |b, queries| {
            b.iter(|| {
                let mut total = 0u64;
                for q in queries {
                    total = total.wrapping_add(store.query(q).count);
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("par", kind), &queries, |b, queries| {
            b.iter(|| {
                let mut total = 0u64;
                for q in queries {
                    total = total.wrapping_add(store.query_par(q).count);
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 4, 1.5);
    let items = gen.items(50_000);
    let mut group = c.benchmark_group("bulk_load");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    group.bench_function("hilbert_pdc_mds", |b| {
        b.iter(|| {
            let store = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
            store.bulk_insert(items.clone());
            store.len()
        })
    });
    group.finish();
}

fn bench_split_and_serialize(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 5, 1.5);
    let store = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
    store.bulk_insert(gen.items(50_000));
    let mut group = c.benchmark_group("balance_ops");
    group.sample_size(10);
    group.bench_function("split_query+split_50k", |b| {
        b.iter(|| {
            let plan = store.split_query().expect("splittable");
            let (l, r) = store.split(&plan);
            l.len() + r.len()
        })
    });
    group.bench_function("serialize_50k", |b| b.iter(|| store.serialize().len()));
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_queries, bench_bulk_load, bench_split_and_serialize);
criterion_main!(benches);
