//! Offline shim for the `bytes` crate.
//!
//! Provides the subset the workspace codecs use: the [`Buf`] / [`BufMut`]
//! traits with big-endian fixed-width accessors (matching the real crate's
//! network byte order), plus owned [`Bytes`] / [`BytesMut`] buffers. There is
//! no zero-copy sharing here — `Bytes` is a plain owned buffer with a cursor —
//! but the wire format produced and parsed is byte-identical to upstream.

use std::ops::{Deref, DerefMut};

/// Read-side cursor over a byte buffer, big-endian accessors.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// The unread portion of the buffer as a contiguous slice.
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

/// Write-side growable buffer, big-endian appenders.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Owned immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            pos: 0,
        }
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self::from_vec(data)
    }
}

/// Owned growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_roundtrip() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0x01020304);
        buf.put_u64(0x0102030405060708);
        buf.put_f64(1.5);
        buf.put_slice(b"xyz");
        // Big-endian layout matches the real bytes crate.
        assert_eq!(&buf[1..3], &[0x01, 0x02]);

        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u16(), 0x0102);
        assert_eq!(rd.get_u32(), 0x01020304);
        assert_eq!(rd.get_u64(), 0x0102030405060708);
        assert_eq!(rd.get_f64(), 1.5);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn bytes_cursor_and_slice_index() {
        let mut bm = BytesMut::with_capacity(16);
        bm.put_u64(42);
        bm.put_u16(3);
        let mut b = Bytes::copy_from_slice(&bm.to_vec());
        assert_eq!(b.remaining(), 10);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u16(), 3);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_indexing_after_advance() {
        let data = [1u8, 2, 3, 4];
        let mut rd: &[u8] = &data;
        rd.advance(1);
        assert_eq!(rd[..2].to_vec(), vec![2, 3]);
    }
}
