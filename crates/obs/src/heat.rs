//! Per-shard heat tracking: exponentially-weighted moving averages of
//! insert/query rates plus the shard's normalized box volume.
//!
//! Workers own the raw per-shard activity counters (two relaxed atomics
//! bumped on the hot path, gated behind [`HeatMap::enabled`] so a disabled
//! map costs one load and a branch). The worker's periodic stats publisher
//! folds counter deltas into [`RateEwma`]s and publishes one [`HeatEntry`]
//! per live shard into the shared [`HeatMap`]; the manager and `volap-stat
//! --heat` read the merged view to explain *where* load concentrates.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One shard's published heat.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HeatEntry {
    /// Shard id.
    pub shard: u64,
    /// Owning worker name.
    pub worker: String,
    /// Items stored at publish time.
    pub items: u64,
    /// Total inserts absorbed since the shard appeared on this worker.
    pub inserts_total: u64,
    /// Total queries that scanned this shard since it appeared here.
    pub queries_total: u64,
    /// EWMA insert rate, items/second.
    pub insert_rate: f64,
    /// EWMA query rate, scans/second.
    pub query_rate: f64,
    /// Normalized volume of the shard's bounding box in `[0, 1]`.
    pub volume_frac: f64,
}

/// A half-life EWMA over a rate: after one silent half-life the estimate
/// decays to exactly half. Fed with `(events, elapsed)` deltas, so callers
/// only keep monotonic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RateEwma {
    rate: f64,
    primed: bool,
}

impl RateEwma {
    /// Fold `events` observed over `dt` into the estimate, with decay
    /// parameterized by `halflife`. The first observation seeds the rate
    /// directly (no warm-up bias toward zero).
    pub fn update(&mut self, events: u64, dt: Duration, halflife: Duration) {
        let dt_s = dt.as_secs_f64();
        if dt_s <= 0.0 {
            return;
        }
        self.update_value(events as f64 / dt_s, dt, halflife);
    }

    /// Fold an already-computed instantaneous value into the estimate — the
    /// generalization [`update`](Self::update) is built on. The health
    /// watchdog uses this to keep EWMA baselines over arbitrary series
    /// values (quantiles, fractions), not just event counts.
    pub fn update_value(&mut self, value: f64, dt: Duration, halflife: Duration) {
        let dt_s = dt.as_secs_f64();
        if dt_s <= 0.0 || !value.is_finite() {
            return;
        }
        if !self.primed {
            self.rate = value;
            self.primed = true;
            return;
        }
        let hl = halflife.as_secs_f64().max(f64::MIN_POSITIVE);
        // alpha = 1 - 2^(-dt/hl): one half-life of silence halves the rate.
        let alpha = 1.0 - (-dt_s / hl * std::f64::consts::LN_2).exp();
        self.rate += alpha * (value - self.rate);
    }

    /// Whether any observation has been folded in yet.
    pub fn primed(&self) -> bool {
        self.primed
    }

    /// The current estimate, events/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

struct HeatMapInner {
    enabled: AtomicBool,
    entries: Mutex<BTreeMap<u64, HeatEntry>>,
}

/// The cluster-wide shard heat view. Cheap to clone (shared); publish and
/// retire come from worker stats threads, snapshots from readers.
#[derive(Clone)]
pub struct HeatMap {
    inner: Arc<HeatMapInner>,
}

impl HeatMap {
    /// A heat map, initially enabled or not (the `VolapConfig::heat_enabled`
    /// knob upstream).
    pub fn new(enabled: bool) -> Self {
        Self {
            inner: Arc::new(HeatMapInner {
                enabled: AtomicBool::new(enabled),
                entries: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether hot-path activity counting should happen at all. This is the
    /// single branch the non-introspected path pays.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Toggle heat tracking at runtime (benches flip this between rounds).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Publish (insert or replace) one shard's heat.
    pub fn publish(&self, entry: HeatEntry) {
        self.inner.entries.lock().unwrap().insert(entry.shard, entry);
    }

    /// Remove a shard's entry, but only if `worker` still owns it — after a
    /// migration the destination's publish must not be erased by the
    /// source's retire racing in late.
    pub fn retire(&self, shard: u64, worker: &str) {
        let mut entries = self.inner.entries.lock().unwrap();
        if entries.get(&shard).is_some_and(|e| e.worker == worker) {
            entries.remove(&shard);
        }
    }

    /// All entries, ordered by shard id.
    pub fn snapshot(&self) -> Vec<HeatEntry> {
        self.inner.entries.lock().unwrap().values().cloned().collect()
    }

    /// Visit every entry in shard order without cloning (the history
    /// sampler folds these into spread/imbalance series every interval).
    pub fn visit(&self, mut f: impl FnMut(&HeatEntry)) {
        for e in self.inner.entries.lock().unwrap().values() {
            f(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_then_halves_per_silent_halflife() {
        let hl = Duration::from_secs(2);
        let mut e = RateEwma::default();
        e.update(100, Duration::from_secs(1), hl); // seeds at 100/s
        assert_eq!(e.rate(), 100.0);
        e.update(0, hl, hl); // one silent half-life
        assert!((e.rate() - 50.0).abs() < 1e-9, "got {}", e.rate());
        e.update(0, hl, hl);
        assert!((e.rate() - 25.0).abs() < 1e-9, "got {}", e.rate());
    }

    #[test]
    fn ewma_converges_toward_steady_rate() {
        let hl = Duration::from_millis(500);
        let mut e = RateEwma::default();
        for _ in 0..64 {
            e.update(50, Duration::from_millis(100), hl); // 500/s steady
        }
        assert!((e.rate() - 500.0).abs() < 1.0, "got {}", e.rate());
    }

    #[test]
    fn zero_dt_is_ignored() {
        let mut e = RateEwma::default();
        e.update(10, Duration::ZERO, Duration::from_secs(1));
        assert_eq!(e.rate(), 0.0);
    }

    #[test]
    fn publish_retire_and_ownership_guard() {
        let map = HeatMap::new(true);
        map.publish(HeatEntry { shard: 3, worker: "w0".into(), ..Default::default() });
        map.publish(HeatEntry { shard: 1, worker: "w1".into(), ..Default::default() });
        assert_eq!(map.snapshot().iter().map(|e| e.shard).collect::<Vec<_>>(), vec![1, 3]);
        // Migration: w1 now owns shard 3; w0's late retire must be a no-op.
        map.publish(HeatEntry { shard: 3, worker: "w1".into(), ..Default::default() });
        map.retire(3, "w0");
        assert_eq!(map.snapshot().len(), 2);
        map.retire(3, "w1");
        assert_eq!(map.snapshot().iter().map(|e| e.shard).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn disabled_flag_round_trips() {
        let map = HeatMap::new(false);
        assert!(!map.enabled());
        map.set_enabled(true);
        assert!(map.enabled());
    }
}
