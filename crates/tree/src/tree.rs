//! The concurrent tree underlying every PDC-family variant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use volap_dims::{Aggregate, HilbertMapper, Item, Key, Mbr, QueryBox, Schema};
use volap_hilbert::BigIndex;
use volap_obs::lock::{LockClass, ObsArcRwLockWriteGuard, ObsMutex, ObsRwLock};

use crate::leaf::{ColumnStats, LeafColumns};
use crate::rollup::RollupTable;

/// The tree layer's slice of the global lock hierarchy (DESIGN.md §15).
/// The root pointer is taken before any node; node locks are chainable
/// (hand-over-hand coupling holds parent + child of the same class); the
/// stack pool and parallel-query sink are leaves of the order.
static TREE_ROOT_CLASS: LockClass = LockClass::new("tree.root", 50);
pub(crate) static TREE_NODE_CLASS: LockClass = LockClass::new_chainable("tree.node", 51);
static STACK_POOL_CLASS: LockClass = LockClass::new("tree.stack_pool", 52);
static QUERY_OUT_CLASS: LockClass = LockClass::new("tree.query_out", 53);

/// Sizing and fill parameters shared by all tree variants.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum items per leaf node.
    pub leaf_cap: usize,
    /// Maximum children per directory node.
    pub dir_cap: usize,
    /// Minimum fraction of a node kept on each side of a split.
    pub min_fill: f64,
    /// Whether queries may answer covered subtrees from cached node
    /// aggregates. `true` for the whole DC/PDC-tree lineage; `false` models
    /// the paper's *conventional* R-tree baselines (Figure 5), which must
    /// visit every item a query covers.
    pub aggregate_cache: bool,
    /// Whether leaf coordinate columns choose dictionary/bit-packed
    /// encodings at build and split time (see [`crate::leaf`]). Purely a
    /// memory/scan-speed trade; results are identical either way.
    pub column_compression: bool,
    /// How many coarse hierarchy levels to materialize as per-cell rollup
    /// aggregates (see [`crate::rollup`]). `0` disables rollups; queries
    /// aligned at a materialized level skip the tree walk entirely.
    pub rollup_levels: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            leaf_cap: 64,
            dir_cap: 16,
            min_fill: 0.35,
            aggregate_cache: true,
            column_compression: true,
            rollup_levels: 0,
        }
    }
}

impl TreeConfig {
    pub(crate) fn min_leaf(&self) -> usize {
        ((self.leaf_cap as f64 * self.min_fill) as usize).max(1)
    }
    pub(crate) fn min_dir(&self) -> usize {
        ((self.dir_cap as f64 * self.min_fill) as usize).max(1)
    }
}

/// How inserts pick their path and how nodes split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPolicy {
    /// R-tree/PDC-tree style: descend into the child whose key grows with
    /// the least overlap against its siblings; split along the widest
    /// dimension. Insert cost grows with dimensionality.
    Geometric,
    /// Hilbert PDC / Hilbert R-tree style: children are ordered by their
    /// maximum Hilbert value (LHV); descend like a B+-tree on the item's
    /// compact Hilbert key and split at the least-overlap index (paper
    /// §III-D). `expand` applies the Figure-3 level expansion before the
    /// Hilbert mapping (true for Hilbert PDC, false for Hilbert R-tree).
    Hilbert {
        /// Apply the Figure-3 hierarchical level expansion.
        expand: bool,
    },
}

/// One item as stored in a leaf.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub coords: Box<[u64]>,
    pub measure: f64,
    /// Compact Hilbert key; `None` under the geometric policy.
    pub hkey: Option<BigIndex>,
}

impl Entry {
    fn to_item(&self) -> Item {
        Item { coords: self.coords.clone(), measure: self.measure }
    }
}

/// A directory slot: the child's key and maximum Hilbert value (LHV) live
/// in the parent (R-tree style), so routing never locks children.
pub(crate) struct DirEntry<K> {
    pub key: K,
    pub lhv: Option<BigIndex>,
    pub node: Arc<Node<K>>,
}

impl<K: Key> Clone for DirEntry<K> {
    fn clone(&self) -> Self {
        Self { key: self.key.clone(), lhv: self.lhv.clone(), node: Arc::clone(&self.node) }
    }
}

pub(crate) enum NodeChildren<K> {
    Dir(Vec<DirEntry<K>>),
    Leaf(LeafColumns),
}

pub(crate) struct NodeInner<K> {
    /// Cached aggregate of the whole subtree (the PDC tree's core trick).
    pub agg: Aggregate,
    pub children: NodeChildren<K>,
}

/// A tree node: a lock around its contents. Inserts use write-lock coupling
/// (at most parent + child held); queries take read locks one at a time.
pub(crate) type Node<K> = ObsRwLock<NodeInner<K>>;

pub(crate) fn new_leaf<K: Key>(entries: LeafColumns, agg: Aggregate) -> Arc<Node<K>> {
    Arc::new(ObsRwLock::new(&TREE_NODE_CLASS, NodeInner { agg, children: NodeChildren::Leaf(entries) }))
}

pub(crate) fn new_dir<K: Key>(entries: Vec<DirEntry<K>>, agg: Aggregate) -> Arc<Node<K>> {
    Arc::new(ObsRwLock::new(&TREE_NODE_CLASS, NodeInner { agg, children: NodeChildren::Dir(entries) }))
}

/// Shortest run for which a materialized key union pays for itself: below
/// this, each path node extends its slot key per item directly.
const RUN_KEY_MIN: usize = 4;

/// Reusable buffers for the batch-insert run descent, so steady-state
/// batching performs no per-run allocation.
struct RunScratch<K: Key> {
    /// Retained write guards, root first.
    path: Vec<ObsArcRwLockWriteGuard<NodeInner<K>>>,
    /// Chosen child index per directory level of `path`.
    slots: Vec<usize>,
}

/// Per-query traversal statistics (used by the Figure 4/9 experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Nodes whose lock was taken.
    pub nodes_visited: u64,
    /// Directory entries answered from the cached aggregate.
    pub covered_hits: u64,
    /// Leaf items tested individually.
    pub items_scanned: u64,
    /// Directory entries pruned (no overlap).
    pub pruned: u64,
    /// Queries answered entirely from a materialized level rollup (no tree
    /// walk at all).
    pub rollup_hits: u64,
}

impl QueryTrace {
    /// Combine counters from another (partial) traversal. All fields are
    /// order-independent sums, so parallel per-task traces merge into
    /// exactly the trace a sequential traversal of the same tree produces.
    pub fn merge(&mut self, other: &QueryTrace) {
        self.nodes_visited += other.nodes_visited;
        self.covered_hits += other.covered_hits;
        self.items_scanned += other.items_scanned;
        self.pruned += other.pruned;
        self.rollup_hits += other.rollup_hits;
    }
}

/// Default subtree size (cached item count) above which [`ConcurrentTree::query_par`]
/// forks a directory child into its own task. Subtrees below the cutoff are
/// walked inline by whichever task reaches them, so small trees never pay
/// task-spawn overhead.
pub const DEFAULT_PAR_CUTOFF: u64 = 8192;

/// A concurrent multi-dimensional aggregate index with cached per-node
/// aggregates: the PDC-tree family member selected by the key type `K` and
/// the [`InsertPolicy`].
pub struct ConcurrentTree<K: Key> {
    schema: Schema,
    cfg: TreeConfig,
    policy: InsertPolicy,
    mapper: Option<HilbertMapper>,
    root: ObsRwLock<Arc<Node<K>>>,
    len: AtomicU64,
    /// Cumulative node splits (root, preventive, and overflow), for
    /// observability: split rate is the structural cost of ingest.
    node_splits: AtomicU64,
    /// Recycled traversal stacks for the sequential query path, so steady-
    /// state queries allocate nothing (one stack replaces the per-directory
    /// `Vec` the recursive walk used to build).
    stack_pool: ObsMutex<Vec<Vec<Arc<Node<K>>>>>,
    /// Materialized hierarchy-level rollups (`None` unless
    /// `cfg.rollup_levels > 0` and the schema passes the width gate).
    rollup: Option<RollupTable>,
}

impl<K: Key> ConcurrentTree<K> {
    /// Create an empty tree.
    pub fn new(schema: Schema, policy: InsertPolicy, cfg: TreeConfig) -> Self {
        assert!(cfg.leaf_cap >= 4, "leaf capacity too small");
        assert!(cfg.dir_cap >= 4, "directory capacity too small");
        let mapper = match policy {
            InsertPolicy::Geometric => None,
            InsertPolicy::Hilbert { expand } => Some(HilbertMapper::new(&schema, expand)),
        };
        let rollup = (cfg.rollup_levels > 0)
            .then(|| RollupTable::new(&schema, cfg.rollup_levels))
            .filter(|r| !r.is_inert());
        Self {
            root: ObsRwLock::new(
                &TREE_ROOT_CLASS,
                new_leaf(LeafColumns::new(schema.dims()), Aggregate::empty()),
            ),
            schema,
            cfg,
            policy,
            mapper,
            len: AtomicU64::new(0),
            node_splits: AtomicU64::new(0),
            stack_pool: ObsMutex::new(&STACK_POOL_CLASS, Vec::new()),
            rollup,
        }
    }

    /// The schema this tree indexes.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The insert policy.
    pub fn policy(&self) -> InsertPolicy {
        self.policy
    }

    /// Number of items.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative count of node splits performed by inserts.
    pub fn node_splits(&self) -> u64 {
        self.node_splits.load(Ordering::Relaxed)
    }

    pub(crate) fn entry_of(&self, item: &Item) -> Entry {
        Entry {
            hkey: self.mapper.as_ref().map(|m| m.key_of_coords(&item.coords)),
            coords: item.coords.clone(),
            measure: item.measure,
        }
    }

    fn is_full(&self, inner: &NodeInner<K>) -> bool {
        match &inner.children {
            NodeChildren::Leaf(e) => e.len() >= self.cfg.leaf_cap,
            NodeChildren::Dir(e) => e.len() >= self.cfg.dir_cap,
        }
    }

    /// Insert one item. Thread-safe; may run concurrently with queries and
    /// other inserts. Node aggregates along the path are updated on the way
    /// down, so a concurrent query may transiently observe the aggregate
    /// before the item reaches its leaf — completed inserts are always
    /// visible to later queries.
    pub fn insert(&self, item: &Item) {
        debug_assert_eq!(item.coords.len(), self.schema.dims());
        if let Some(r) = &self.rollup {
            r.add(&item.coords, item.measure);
        }
        let entry = self.entry_of(item);
        self.insert_entry(item, entry);
    }

    /// Fold `items` into the rollup table (if any). Maintenance lives at the
    /// public insert/bulk-load boundary only — never inside `insert_entry`,
    /// which batch fallbacks re-enter — so every item is counted exactly
    /// once.
    pub(crate) fn rollup_add_items(&self, items: &[Item]) {
        if let Some(r) = &self.rollup {
            for it in items {
                r.add(&it.coords, it.measure);
            }
        }
    }

    /// The per-item insert path, with the entry (and its Hilbert key)
    /// already computed — shared by [`Self::insert`] and the batch path's
    /// split fallback, which must not recompute keys.
    fn insert_entry(&self, item: &Item, entry: Entry) {
        'retry: loop {
            let root_arc = Arc::clone(&self.root.read());
            let mut cur = ObsRwLock::write_arc(&root_arc);
            if self.is_full(&cur) {
                drop(cur);
                self.split_root(&root_arc);
                continue 'retry;
            }
            cur.agg.add(entry.measure);
            loop {
                let next = match &mut cur.children {
                    NodeChildren::Leaf(entries) => {
                        match &entry.hkey {
                            Some(h) => {
                                let pos = entries.hkey_partition_point(h);
                                entries.insert(pos, entry);
                            }
                            None => entries.push(entry),
                        }
                        self.len.fetch_add(1, Ordering::AcqRel);
                        return;
                    }
                    NodeChildren::Dir(entries) => loop {
                        let idx = self.choose_child(entries, &entry);
                        let child_arc = Arc::clone(&entries[idx].node);
                        let child_guard = ObsRwLock::write_arc(&child_arc);
                        if self.is_full(&child_guard) {
                            // Preventive split: replace the slot with two
                            // fresh nodes and re-choose. The old node is
                            // left untouched so in-flight readers keep a
                            // complete snapshot.
                            let (left, right) = self.split_node(&child_guard);
                            drop(child_guard);
                            entries[idx] = left;
                            entries.insert(idx + 1, right);
                            continue;
                        }
                        // Route through this child: grow its key (and LHV)
                        // in the parent slot before handing the lock over.
                        entries[idx].key.extend_item(&self.schema, item);
                        if let Some(h) = &entry.hkey {
                            match &mut entries[idx].lhv {
                                Some(l) if *h <= *l => {}
                                slot => *slot = Some(h.clone()),
                            }
                        }
                        break child_guard;
                    },
                };
                let mut next = next;
                next.agg.add(entry.measure);
                cur = next; // parent guard released here
            }
        }
    }

    /// Insert a batch of items. Equivalent to calling [`Self::insert`] on
    /// each item, but amortized: all Hilbert keys are computed up front
    /// (through one reusable key scratch), the batch is sorted by key, and
    /// key-adjacent runs descend the tree once per run instead of once per
    /// item, updating the aggregates and keys of each path node once per
    /// run.
    ///
    /// Thread-safe and linearizable per run: a run's descent retains the
    /// write guards of its whole path and applies no mutation until the
    /// leaf has fixed the run size, so concurrent queries never observe a
    /// partially applied run, and concurrent inserts order before or after
    /// it exactly as with per-item inserts. Encountering a full node
    /// mid-descent falls back to the per-item path (which performs the
    /// preventive split) for the head of the run, then resumes batching.
    ///
    /// The geometric policy has no key order to exploit and degenerates to
    /// the per-item loop.
    pub fn insert_batch(&self, items: &[Item]) {
        self.rollup_add_items(items);
        let use_runs = self.mapper.is_some() && items.len() >= 2;
        if !use_runs {
            for it in items {
                debug_assert_eq!(it.coords.len(), self.schema.dims());
                let entry = self.entry_of(it);
                self.insert_entry(it, entry);
            }
            return;
        }
        let mut keys = self.mapper.as_ref().unwrap().batch();
        let mut keyed: Vec<(BigIndex, u32)> = items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                debug_assert_eq!(it.coords.len(), self.schema.dims());
                (keys.key(it), i as u32)
            })
            .collect();
        keyed.sort_unstable();
        // Scratch reused across runs so steady-state batching allocates
        // nothing per run.
        let mut scratch = RunScratch { path: Vec::new(), slots: Vec::new() };
        let mut start = 0;
        while start < keyed.len() {
            start += self.insert_run(items, &mut keyed, start, &mut scratch);
        }
    }

    /// Insert one key-adjacent run starting at `keyed[start]` with a single
    /// locked descent; returns how many items were consumed (≥ 1).
    ///
    /// The descent retains the write guard of every node on the path. At
    /// each directory it narrows the run to the keys the chosen child's LHV
    /// routes to it; at the leaf it caps the run at the leaf's free space.
    /// Only then — run size final, whole path still locked — does it apply
    /// the aggregate, key, and LHV updates for exactly the inserted items,
    /// and it applies them once per path node (the run's aggregate and key
    /// union are built once and merged in), not once per item per node.
    /// Updating top-down during the descent instead would over-count
    /// ancestors whenever the run shrinks further down (min/max cannot be
    /// un-merged from an aggregate).
    fn insert_run(
        &self,
        items: &[Item],
        keyed: &mut [(BigIndex, u32)],
        start: usize,
        scratch: &mut RunScratch<K>,
    ) -> usize {
        'retry: loop {
            let root_arc = Arc::clone(&self.root.read());
            let root_guard = ObsRwLock::write_arc(&root_arc);
            if self.is_full(&root_guard) {
                drop(root_guard);
                self.split_root(&root_arc);
                continue 'retry;
            }
            let path = &mut scratch.path;
            path.clear();
            path.push(root_guard);
            // Chosen child index per directory level of `path`.
            let slots = &mut scratch.slots;
            slots.clear();
            let mut run_end = keyed.len();
            loop {
                let step = match &path.last().unwrap().children {
                    NodeChildren::Leaf(_) => None,
                    NodeChildren::Dir(entries) => {
                        let h = &keyed[start].0;
                        let idx = entries
                            .iter()
                            .position(|e| e.lhv.as_ref().is_some_and(|l| l >= h))
                            .unwrap_or(entries.len() - 1);
                        // Keys above this child's LHV route to a later
                        // sibling — unless this is the last child, which
                        // takes everything that reaches it.
                        if idx + 1 < entries.len() {
                            if let Some(l) = entries[idx].lhv.as_ref() {
                                run_end =
                                    start + keyed[start..run_end].partition_point(|(k, _)| k <= l);
                                debug_assert!(run_end > start, "chosen child must accept the run head");
                            }
                        }
                        Some((idx, Arc::clone(&entries[idx].node)))
                    }
                };
                let Some((idx, child_arc)) = step else { break };
                let child_guard = ObsRwLock::write_arc(&child_arc);
                if self.is_full(&child_guard) {
                    // Full child mid-descent. Nothing has been mutated yet,
                    // so retreat entirely and push the head of the run
                    // through the per-item path, which performs the
                    // preventive split; the batch loop then resumes.
                    drop(child_guard);
                    path.clear();
                    let i = keyed[start].1 as usize;
                    let entry = Entry {
                        coords: items[i].coords.clone(),
                        measure: items[i].measure,
                        hkey: Some(std::mem::take(&mut keyed[start].0)),
                    };
                    self.insert_entry(&items[i], entry);
                    return 1;
                }
                slots.push(idx);
                path.push(child_guard);
            }
            // Reached a non-full leaf: the run size is now final.
            let leaf_len = match &path.last().unwrap().children {
                NodeChildren::Leaf(l) => l.len(),
                NodeChildren::Dir(_) => unreachable!(),
            };
            let k = (run_end - start).min(self.cfg.leaf_cap - leaf_len);
            debug_assert!(k >= 1);
            // Build the run's aggregate once; every path node merges it in
            // one step instead of once per item. The key union is only
            // materialized for longer runs — for a handful of items,
            // extending each slot key directly is cheaper than building and
            // merging an intermediate key.
            let mut run_agg = Aggregate::empty();
            for &(_, i) in keyed[start..start + k].iter() {
                run_agg.add(items[i as usize].measure);
            }
            let run_key = (k >= RUN_KEY_MIN).then(|| {
                let mut union = K::empty(&self.schema);
                for &(_, i) in keyed[start..start + k].iter() {
                    union.extend_item(&self.schema, &items[i as usize]);
                }
                union
            });
            let run_max = keyed[start + k - 1].0.clone();
            for (depth, guard) in path.iter_mut().enumerate() {
                guard.agg.merge(&run_agg);
                if let NodeChildren::Dir(entries) = &mut guard.children {
                    let idx = slots[depth];
                    match &run_key {
                        Some(union) => entries[idx].key.extend_key(&self.schema, union),
                        None => {
                            for &(_, i) in keyed[start..start + k].iter() {
                                entries[idx].key.extend_item(&self.schema, &items[i as usize]);
                            }
                        }
                    }
                    match &mut entries[idx].lhv {
                        Some(l) if run_max <= *l => {}
                        slot => *slot = Some(run_max.clone()),
                    }
                }
            }
            if let NodeChildren::Leaf(leaf) = &mut path.last_mut().unwrap().children {
                leaf.insert_run(items, &mut keyed[start..start + k]);
            }
            path.clear(); // release leaf-to-root, after all updates
            self.len.fetch_add(k as u64, Ordering::AcqRel);
            return k;
        }
    }

    /// Split a full root by building two fresh children and swapping the
    /// root pointer. The old root stays intact for concurrent readers.
    fn split_root(&self, old_root: &Arc<Node<K>>) {
        let mut rp = self.root.write();
        if !Arc::ptr_eq(&rp, old_root) {
            return; // someone else already replaced it
        }
        let guard = old_root.read();
        if !self.is_full(&guard) {
            return; // someone else already split it
        }
        let (left, right) = self.split_node(&guard);
        let agg = guard.agg;
        drop(guard);
        *rp = new_dir(vec![left, right], agg);
    }

    /// Partition a full node's contents into two fresh nodes, choosing the
    /// split point that minimizes overlap between the resulting keys
    /// (paper §III-D). Returns the two parent slots.
    fn split_node(&self, inner: &NodeInner<K>) -> (DirEntry<K>, DirEntry<K>) {
        self.node_splits.fetch_add(1, Ordering::Relaxed);
        match &inner.children {
            NodeChildren::Leaf(cols) if self.mapper.is_some() => {
                // Hilbert rows are already key-ordered: choose the split over
                // the rows in place and duplicate each side with a few column
                // memcpys, instead of materializing an interchange Entry and
                // a full key per row. Splits sit on both ingest hot paths, so
                // this is where allocation pressure matters most.
                let n = cols.len();
                let mut scratch = Item { coords: vec![0u64; self.schema.dims()].into(), measure: 0.0 };
                let split = self.best_split_rows(n, self.cfg.min_leaf(), |key, i| {
                    cols.read_row_into(i, &mut scratch);
                    key.extend_item(&self.schema, &scratch);
                });
                (
                    self.make_hilbert_leaf_slot(cols.clone_range(0..split)),
                    self.make_hilbert_leaf_slot(cols.clone_range(split..n)),
                )
            }
            NodeChildren::Leaf(entries) => {
                // Geometric policy: rows carry no global order, so sort
                // interchange entries along the longest dimension first.
                let mut sorted: Vec<Entry> = entries.to_entries();
                sort_entries_geometric(&self.schema, &mut sorted);
                let keys: Vec<K> = sorted
                    .iter()
                    .map(|e| K::from_item(&self.schema, &e.to_item()))
                    .collect();
                let split = self.best_split_rows(keys.len(), self.cfg.min_leaf(), |acc, i| {
                    acc.extend_key(&self.schema, &keys[i]);
                });
                let right_entries = sorted.split_off(split);
                (self.make_leaf_slot(sorted), self.make_leaf_slot(right_entries))
            }
            NodeChildren::Dir(entries) => {
                let mut sorted: Vec<DirEntry<K>> = entries.clone();
                if self.mapper.is_none() {
                    sort_dir_geometric(&self.schema, &mut sorted);
                }
                let split = self.best_split_rows(sorted.len(), self.cfg.min_dir(), |acc, i| {
                    acc.extend_key(&self.schema, &sorted[i].key);
                });
                let right_entries = sorted.split_off(split);
                (self.make_dir_slot(sorted), self.make_dir_slot(right_entries))
            }
        }
    }

    pub(crate) fn make_leaf_slot(&self, entries: Vec<Entry>) -> DirEntry<K> {
        let mut key = K::empty(&self.schema);
        let mut agg = Aggregate::empty();
        let mut lhv: Option<BigIndex> = None;
        for e in &entries {
            key.extend_item(&self.schema, &e.to_item());
            agg.add(e.measure);
            if let Some(h) = &e.hkey {
                match &mut lhv {
                    Some(l) if *h <= *l => {}
                    slot => *slot = Some(h.clone()),
                }
            }
        }
        let mut cols = LeafColumns::from_entries(self.schema.dims(), entries);
        if self.cfg.column_compression {
            cols.encode();
        }
        DirEntry { key, lhv, node: new_leaf(cols, agg) }
    }

    /// Parent slot for an already-key-sorted columnar leaf (Hilbert policy):
    /// the LHV is simply the last row's key, and the slot key is built by
    /// streaming rows through one reused coordinate buffer.
    fn make_hilbert_leaf_slot(&self, mut cols: LeafColumns) -> DirEntry<K> {
        if self.cfg.column_compression {
            cols.encode();
        }
        let n = cols.len();
        let mut key = K::empty(&self.schema);
        let mut agg = Aggregate::empty();
        let mut scratch = Item { coords: vec![0u64; self.schema.dims()].into(), measure: 0.0 };
        for i in 0..n {
            cols.read_row_into(i, &mut scratch);
            key.extend_item(&self.schema, &scratch);
            agg.add(scratch.measure);
        }
        let lhv = n.checked_sub(1).and_then(|i| cols.hkey(i).cloned());
        debug_assert!(lhv.is_some(), "hilbert leaf split produced an empty or keyless side");
        DirEntry { key, lhv, node: new_leaf(cols, agg) }
    }

    pub(crate) fn make_dir_slot(&self, entries: Vec<DirEntry<K>>) -> DirEntry<K> {
        let mut key = K::empty(&self.schema);
        let mut agg = Aggregate::empty();
        let mut lhv: Option<BigIndex> = None;
        for e in &entries {
            key.extend_key(&self.schema, &e.key);
            agg.merge(&e.node.read().agg);
            if let Some(h) = &e.lhv {
                match &mut lhv {
                    Some(l) if *h <= *l => {}
                    slot => *slot = Some(h.clone()),
                }
            }
        }
        DirEntry { key, lhv, node: new_dir(entries, agg) }
    }

    /// Least-overlap split index over an ordered sequence of `n` rows, where
    /// `extend(acc, i)` folds row `i`'s key into an accumulator: evaluates
    /// every legal split in linear time via prefix/suffix key unions and
    /// returns the index minimizing overlap between the two sides (balance
    /// breaks ties). Taking an accessor instead of `&[K]` lets the Hilbert
    /// leaf path split without materializing a key per row.
    fn best_split_rows(
        &self,
        n: usize,
        min_fill: usize,
        mut extend: impl FnMut(&mut K, usize),
    ) -> usize {
        debug_assert!(n >= 2);
        let min = min_fill.min(n / 2).max(1);
        let lo = min;
        let hi = n - min;
        // Only splits in [lo, hi] are legal, so only those key unions are
        // ever compared: run one accumulator through the mandatory head
        // (tail), and materialize clones for the candidate window alone.
        // prefix[i - lo] = union of rows 0..i, for i in lo..=hi.
        let mut acc = K::empty(&self.schema);
        for i in 0..lo {
            extend(&mut acc, i);
        }
        let mut prefix = Vec::with_capacity(hi - lo + 1);
        for i in lo..hi {
            prefix.push(acc.clone());
            extend(&mut acc, i);
        }
        prefix.push(acc);
        // suffix[i - lo] = union of rows i..n, for i in lo..=hi.
        let mut acc = K::empty(&self.schema);
        for i in hi..n {
            extend(&mut acc, i);
        }
        let mut suffix = Vec::with_capacity(hi - lo + 1);
        for i in (lo..hi).rev() {
            suffix.push(acc.clone());
            extend(&mut acc, i);
        }
        suffix.push(acc);
        suffix.reverse();
        let mut best = lo;
        let mut best_cost = (f64::INFINITY, usize::MAX);
        for i in lo..=hi {
            let overlap = prefix[i - lo].overlap_frac(&self.schema, &suffix[i - lo]);
            let balance = (2 * i).abs_diff(n);
            if (overlap, balance) < best_cost {
                best_cost = (overlap, balance);
                best = i;
            }
        }
        best
    }

    fn choose_child(&self, entries: &[DirEntry<K>], entry: &Entry) -> usize {
        debug_assert!(!entries.is_empty());
        match &entry.hkey {
            Some(h) => {
                // Hilbert descent: first child whose LHV bounds the key.
                entries
                    .iter()
                    .position(|e| e.lhv.as_ref().is_some_and(|l| l >= h))
                    .unwrap_or(entries.len() - 1)
            }
            None => {
                let item = entry.to_item();
                // Prefer a child that already contains the item (smallest
                // volume wins), mirroring R*-style descent.
                let mut best_contained: Option<(usize, f64)> = None;
                for (i, e) in entries.iter().enumerate() {
                    if e.key.contains_item(&item) {
                        let v = e.key.volume_frac(&self.schema);
                        if best_contained.is_none_or(|(_, bv)| v < bv) {
                            best_contained = Some((i, v));
                        }
                    }
                }
                if let Some((i, _)) = best_contained {
                    return i;
                }
                // Otherwise minimize the overlap increase against siblings
                // ("the high global cost of overlap dominates", §III-C).
                let mut best = 0usize;
                let mut best_cost = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
                for (i, e) in entries.iter().enumerate() {
                    let mut grown = e.key.clone();
                    grown.extend_item(&self.schema, &item);
                    let mut inc = 0.0;
                    for (j, other) in entries.iter().enumerate() {
                        if i != j {
                            inc += grown.overlap_frac(&self.schema, &other.key)
                                - e.key.overlap_frac(&self.schema, &other.key);
                        }
                    }
                    let enlarge = grown.volume_frac(&self.schema) - e.key.volume_frac(&self.schema);
                    let vol = e.key.volume_frac(&self.schema);
                    let cost = (inc, enlarge, vol);
                    if cost < best_cost {
                        best_cost = cost;
                        best = i;
                    }
                }
                best
            }
        }
    }

    /// Aggregate every item inside `q`.
    pub fn query(&self, q: &QueryBox) -> Aggregate {
        self.query_traced(q).0
    }

    /// Aggregate with traversal statistics.
    ///
    /// Single-threaded: walks the tree with an explicit stack recycled
    /// across calls, so the steady state performs no allocation at all.
    pub fn query_traced(&self, q: &QueryBox) -> (Aggregate, QueryTrace) {
        debug_assert_eq!(q.dims(), self.schema.dims());
        if let Some((agg, trace)) = self.rollup_answer(q) {
            return (agg, trace);
        }
        let mut agg = Aggregate::empty();
        let mut trace = QueryTrace::default();
        let mut stack = self.stack_pool.lock().pop().unwrap_or_default();
        stack.push(Arc::clone(&self.root.read()));
        while let Some(node) = stack.pop() {
            self.visit_node(&node, q, &mut agg, &mut trace, &mut stack);
        }
        let mut pool = self.stack_pool.lock();
        if pool.len() < 8 {
            pool.push(stack);
        }
        (agg, trace)
    }

    /// Try to answer `q` from the materialized rollups: succeeds only for
    /// constrained boxes aligned at a materialized level (unconstrained
    /// queries stay on the cheaper root-aggregate coverage path). A hit
    /// skips the tree walk entirely, so the only non-zero counter is
    /// `rollup_hits`.
    fn rollup_answer(&self, q: &QueryBox) -> Option<(Aggregate, QueryTrace)> {
        let agg = self.rollup.as_ref()?.try_answer(q)?;
        Some((agg, QueryTrace { rollup_hits: 1, ..QueryTrace::default() }))
    }

    /// Process one node: scan it if a leaf, otherwise prune / consume cached
    /// aggregates and push the children that still need a visit onto
    /// `descend`. Shared by the sequential and parallel query paths.
    fn visit_node(
        &self,
        node: &Arc<Node<K>>,
        q: &QueryBox,
        agg: &mut Aggregate,
        trace: &mut QueryTrace,
        descend: &mut Vec<Arc<Node<K>>>,
    ) {
        trace.nodes_visited += 1;
        let guard = node.read();
        match &guard.children {
            NodeChildren::Leaf(entries) => {
                trace.items_scanned += entries.len() as u64;
                entries.scan(q, agg);
            }
            NodeChildren::Dir(entries) => {
                for e in entries {
                    if !e.key.overlaps_query(q) {
                        trace.pruned += 1;
                    } else if self.cfg.aggregate_cache && e.key.covered_by_query(q) {
                        // Coverage resilience: consume the cached aggregate.
                        trace.covered_hits += 1;
                        agg.merge(&e.node.read().agg);
                    } else {
                        descend.push(Arc::clone(&e.node));
                    }
                }
            }
        }
    }

    /// Aggregate every item inside `q`, fanning large subtrees out over the
    /// global rayon pool. Equivalent to [`ConcurrentTree::query`].
    pub fn query_par(&self, q: &QueryBox) -> Aggregate {
        self.query_par_traced(q).0
    }

    /// Parallel query with traversal statistics (see
    /// [`ConcurrentTree::query_par_with`]; uses [`DEFAULT_PAR_CUTOFF`]).
    pub fn query_par_traced(&self, q: &QueryBox) -> (Aggregate, QueryTrace) {
        self.query_par_with(q, DEFAULT_PAR_CUTOFF)
    }

    /// Parallel query with an explicit task-size cutoff: while walking, any
    /// directory child that must be descended and whose cached aggregate
    /// counts at least `cutoff` items is spawned as its own task; smaller
    /// subtrees are walked inline. Each task accumulates into a private
    /// `(Aggregate, QueryTrace)` and merges it into the shared result once,
    /// when the task ends — one lock acquisition per task instead of
    /// contention on every leaf.
    ///
    /// Trees smaller than `2 * cutoff` take the sequential path outright, so
    /// small trees pay no scope-setup overhead.
    pub fn query_par_with(&self, q: &QueryBox, cutoff: u64) -> (Aggregate, QueryTrace) {
        debug_assert_eq!(q.dims(), self.schema.dims());
        if let Some((agg, trace)) = self.rollup_answer(q) {
            return (agg, trace);
        }
        let cutoff = cutoff.max(1);
        if self.len() < cutoff.saturating_mul(2) {
            return self.query_traced(q);
        }
        let root = Arc::clone(&self.root.read());
        let out = ObsMutex::new(&QUERY_OUT_CLASS, (Aggregate::empty(), QueryTrace::default()));
        rayon::scope(|s| self.par_task(s, root, q, cutoff, &out));
        out.into_inner()
    }

    /// One parallel-query task: walk `node`'s subtree inline, forking
    /// children above the cutoff onto the rayon scope.
    fn par_task<'s>(
        &'s self,
        s: &rayon::Scope<'s>,
        node: Arc<Node<K>>,
        q: &'s QueryBox,
        cutoff: u64,
        out: &'s ObsMutex<(Aggregate, QueryTrace)>,
    ) {
        let mut agg = Aggregate::empty();
        let mut trace = QueryTrace::default();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            trace.nodes_visited += 1;
            let guard = n.read();
            match &guard.children {
                NodeChildren::Leaf(entries) => {
                    trace.items_scanned += entries.len() as u64;
                    entries.scan(q, &mut agg);
                }
                NodeChildren::Dir(entries) => {
                    for e in entries {
                        if !e.key.overlaps_query(q) {
                            trace.pruned += 1;
                        } else if self.cfg.aggregate_cache && e.key.covered_by_query(q) {
                            trace.covered_hits += 1;
                            agg.merge(&e.node.read().agg);
                        } else {
                            let child = Arc::clone(&e.node);
                            if child.read().agg.count >= cutoff {
                                s.spawn(move |s| self.par_task(s, child, q, cutoff, out));
                            } else {
                                stack.push(child);
                            }
                        }
                    }
                }
            }
        }
        let mut merged = out.lock();
        merged.0.merge(&agg);
        merged.1.merge(&trace);
    }

    /// Bounding rectangle of the whole tree.
    pub fn mbr(&self) -> Mbr {
        let root = Arc::clone(&self.root.read());
        let guard = root.read();
        match &guard.children {
            NodeChildren::Leaf(entries) => {
                let mut m = Mbr::empty_with_dims(self.schema.dims());
                for i in 0..entries.len() {
                    m.extend_item(&self.schema, &entries.item(i));
                }
                m
            }
            NodeChildren::Dir(entries) => {
                let mut m = Mbr::empty_with_dims(self.schema.dims());
                for e in entries {
                    m.extend_mbr(&e.key.to_mbr(&self.schema));
                }
                m
            }
        }
    }

    /// Aggregate of the whole tree (root cache).
    pub fn total(&self) -> Aggregate {
        self.root.read().read().agg
    }

    /// Snapshot every item (used by splits, migration and tests).
    pub fn items(&self) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.len() as usize);
        let root = Arc::clone(&self.root.read());
        self.collect_items(&root, &mut out);
        out
    }

    fn collect_items(&self, node: &Arc<Node<K>>, out: &mut Vec<Item>) {
        let guard = node.read();
        match &guard.children {
            NodeChildren::Leaf(entries) => {
                entries.append_items(out);
            }
            NodeChildren::Dir(entries) => {
                let children: Vec<_> = entries.iter().map(|e| Arc::clone(&e.node)).collect();
                drop(guard);
                for c in children {
                    self.collect_items(&c, out);
                }
            }
        }
    }

    /// Structural statistics (node counts, height).
    pub fn structure(&self) -> TreeStructure {
        let root = Arc::clone(&self.root.read());
        let mut s = TreeStructure::default();
        self.walk_structure(&root, 1, &mut s);
        s
    }

    fn walk_structure(&self, node: &Arc<Node<K>>, depth: u32, s: &mut TreeStructure) {
        s.height = s.height.max(depth);
        let guard = node.read();
        match &guard.children {
            NodeChildren::Leaf(entries) => {
                s.leaves += 1;
                s.leaf_entries += entries.len() as u64;
                entries.column_stats(&mut s.col_stats);
            }
            NodeChildren::Dir(entries) => {
                s.dirs += 1;
                s.dir_entries += entries.len() as u64;
                let children: Vec<_> = entries.iter().map(|e| Arc::clone(&e.node)).collect();
                drop(guard);
                for c in children {
                    self.walk_structure(&c, depth + 1, s);
                }
            }
        }
    }

    /// Replace the contents of this (empty) tree with a pre-built root.
    /// Used by bulk loading; panics if the tree is non-empty.
    pub(crate) fn install_bulk(&self, root: Arc<Node<K>>, count: u64) {
        let mut rp = self.root.write();
        assert_eq!(self.len(), 0, "bulk install requires an empty tree");
        *rp = root;
        self.len.store(count, Ordering::Release);
    }

    pub(crate) fn cfg(&self) -> &TreeConfig {
        &self.cfg
    }

    pub(crate) fn mapper(&self) -> Option<&HilbertMapper> {
        self.mapper.as_ref()
    }

    #[cfg(test)]
    pub(crate) fn root_arc(&self) -> Arc<Node<K>> {
        Arc::clone(&self.root.read())
    }
}

/// Structural statistics of a tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStructure {
    /// Number of directory nodes.
    pub dirs: u64,
    /// Number of leaf nodes.
    pub leaves: u64,
    /// Total directory entries.
    pub dir_entries: u64,
    /// Total stored items.
    pub leaf_entries: u64,
    /// Tree height (1 = a single leaf).
    pub height: u32,
    /// Leaf column encoding footprint, accumulated over every leaf.
    pub col_stats: ColumnStats,
}

/// Sort leaf entries along the dimension with the widest coordinate spread
/// (classic linear split axis choice).
fn sort_entries_geometric(schema: &Schema, entries: &mut [Entry]) {
    let dims = schema.dims();
    let mut best_dim = 0usize;
    let mut best_spread = -1.0f64;
    for d in 0..dims {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in entries.iter() {
            lo = lo.min(e.coords[d]);
            hi = hi.max(e.coords[d]);
        }
        let spread = (hi.saturating_sub(lo)) as f64 / schema.dim(d).ordinal_end() as f64;
        if spread > best_spread {
            best_spread = spread;
            best_dim = d;
        }
    }
    entries.sort_by_key(|e| e.coords[best_dim]);
}

/// Sort directory entries by their key hull's center along the widest axis.
fn sort_dir_geometric<K: Key>(schema: &Schema, entries: &mut Vec<DirEntry<K>>) {
    let dims = schema.dims();
    let hulls: Vec<Mbr> = entries.iter().map(|e| e.key.to_mbr(schema)).collect();
    let mut best_dim = 0usize;
    let mut best_spread = -1.0f64;
    for d in 0..dims {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for h in &hulls {
            if let Some(r) = h.ranges() {
                lo = lo.min(r[d].0);
                hi = hi.max(r[d].1);
            }
        }
        if lo == u64::MAX {
            continue;
        }
        let spread = (hi - lo) as f64 / schema.dim(d).ordinal_end() as f64;
        if spread > best_spread {
            best_spread = spread;
            best_dim = d;
        }
    }
    let mut indexed: Vec<(u64, DirEntry<K>)> = entries
        .drain(..)
        .zip(hulls)
        .map(|(e, h)| {
            let center = h.ranges().map_or(0, |r| r[best_dim].0 / 2 + r[best_dim].1 / 2);
            (center, e)
        })
        .collect();
    indexed.sort_by_key(|(c, _)| *c);
    entries.extend(indexed.into_iter().map(|(_, e)| e));
}

#[cfg(test)]
mod tests {
    use super::*;
    use volap_dims::Mds;

    fn small_cfg() -> TreeConfig {
        TreeConfig { leaf_cap: 8, dir_cap: 4, ..TreeConfig::default() }
    }

    fn items_grid(schema: &Schema, n: u64) -> Vec<Item> {
        // Deterministic pseudo-random items via a simple LCG.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        (0..n)
            .map(|i| {
                let coords: Vec<u64> = (0..schema.dims())
                    .map(|d| next() % schema.dim(d).ordinal_end())
                    .collect();
                Item::new(coords, (i % 100) as f64)
            })
            .collect()
    }

    #[test]
    fn insert_then_total_matches() {
        let schema = Schema::uniform(3, 2, 8);
        for policy in [InsertPolicy::Geometric, InsertPolicy::Hilbert { expand: true }] {
            let tree: ConcurrentTree<Mds> = ConcurrentTree::new(schema.clone(), policy, small_cfg());
            let items = items_grid(&schema, 500);
            let mut expect = Aggregate::empty();
            for it in &items {
                tree.insert(it);
                expect.add(it.measure);
            }
            assert_eq!(tree.len(), 500);
            let total = tree.total();
            assert_eq!(total.count, expect.count);
            assert!((total.sum - expect.sum).abs() < 1e-6);
            assert_eq!(total.min, expect.min);
            assert_eq!(total.max, expect.max);
        }
    }

    #[test]
    fn queries_match_brute_force() {
        let schema = Schema::uniform(3, 2, 8);
        let items = items_grid(&schema, 800);
        let queries = [
            QueryBox::all(&schema),
            QueryBox::from_ranges(vec![(0, 20), (0, 63), (0, 63)]),
            QueryBox::from_ranges(vec![(10, 40), (5, 35), (0, 63)]),
            QueryBox::from_ranges(vec![(63, 63), (63, 63), (63, 63)]),
        ];
        for policy in [
            InsertPolicy::Geometric,
            InsertPolicy::Hilbert { expand: true },
            InsertPolicy::Hilbert { expand: false },
        ] {
            let mbr_tree: ConcurrentTree<Mbr> = ConcurrentTree::new(schema.clone(), policy, small_cfg());
            let mds_tree: ConcurrentTree<Mds> = ConcurrentTree::new(schema.clone(), policy, small_cfg());
            for it in &items {
                mbr_tree.insert(it);
                mds_tree.insert(it);
            }
            for q in &queries {
                let mut expect = Aggregate::empty();
                for it in items.iter().filter(|it| q.contains_item(it)) {
                    expect.add(it.measure);
                }
                for (name, got) in [("mbr", mbr_tree.query(q)), ("mds", mds_tree.query(q))] {
                    assert_eq!(got.count, expect.count, "{name} {policy:?} count mismatch");
                    assert!((got.sum - expect.sum).abs() < 1e-6, "{name} {policy:?} sum mismatch");
                }
            }
        }
    }

    #[test]
    fn full_coverage_uses_cached_aggregates() {
        let schema = Schema::uniform(2, 2, 16);
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, small_cfg());
        for it in items_grid(&schema, 2000) {
            tree.insert(&it);
        }
        let (_, trace) = tree.query_traced(&QueryBox::all(&schema));
        // The whole-database query must be answered at the root's children.
        assert!(trace.covered_hits >= 1);
        assert_eq!(trace.items_scanned, 0, "full coverage must not scan leaves");
    }

    #[test]
    fn rollup_answers_aligned_queries_without_walking() {
        let schema = Schema::uniform(3, 2, 8);
        let cfg = TreeConfig { rollup_levels: 2, ..small_cfg() };
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, cfg);
        let items = items_grid(&schema, 1500);
        // Mix single and batch inserts: both maintain the rollup exactly
        // once per item (the batch path's split fallback must not re-add).
        for it in &items[..500] {
            tree.insert(it);
        }
        tree.insert_batch(&items[500..]);
        let q = QueryBox::from_ranges(vec![(8, 15), (0, 63), (16, 31)]);
        let mut expect = Aggregate::empty();
        for it in items.iter().filter(|it| q.contains_item(it)) {
            expect.add(it.measure);
        }
        let (agg, trace) = tree.query_traced(&q);
        assert_eq!(trace.rollup_hits, 1);
        assert_eq!(trace.nodes_visited, 0, "a rollup hit never walks the tree");
        assert_eq!(trace.items_scanned, 0);
        assert_eq!(agg.count, expect.count);
        assert!((agg.sum - expect.sum).abs() < 1e-6);
        assert_eq!(agg.min, expect.min);
        assert_eq!(agg.max, expect.max);
        // The parallel entry point short-circuits identically.
        let (pagg, ptrace) = tree.query_par_with(&q, 1);
        assert_eq!(ptrace.rollup_hits, 1);
        assert_eq!(pagg.count, expect.count);
        // Unconstrained queries stay on the root-aggregate coverage path.
        let (_, full) = tree.query_traced(&QueryBox::all(&schema));
        assert_eq!(full.rollup_hits, 0);
    }

    #[test]
    fn structure_is_balanced_by_construction() {
        let schema = Schema::uniform(2, 2, 16);
        for policy in [InsertPolicy::Geometric, InsertPolicy::Hilbert { expand: true }] {
            let tree: ConcurrentTree<Mbr> = ConcurrentTree::new(schema.clone(), policy, small_cfg());
            for it in items_grid(&schema, 3000) {
                tree.insert(&it);
            }
            let s = tree.structure();
            assert_eq!(s.leaf_entries, 3000);
            assert!(s.height >= 2);
            // Preventive splits keep every node within capacity.
            assert!(s.leaf_entries <= s.leaves * small_cfg().leaf_cap as u64);
        }
    }

    #[test]
    fn concurrent_inserts_and_queries_are_safe() {
        let schema = Schema::uniform(3, 2, 8);
        let tree: Arc<ConcurrentTree<Mds>> = Arc::new(ConcurrentTree::new(
            schema.clone(),
            InsertPolicy::Hilbert { expand: true },
            small_cfg(),
        ));
        let items = items_grid(&schema, 4000);
        let n_threads = 4;
        let chunk = items.len() / n_threads;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let tree = Arc::clone(&tree);
                let slice = items[t * chunk..(t + 1) * chunk].to_vec();
                s.spawn(move || {
                    for it in slice {
                        tree.insert(&it);
                    }
                });
            }
            // Concurrent readers: must not deadlock or panic.
            let qtree = Arc::clone(&tree);
            let q = QueryBox::all(&schema);
            s.spawn(move || {
                for _ in 0..200 {
                    let _ = qtree.query(&q);
                }
            });
        });
        assert_eq!(tree.len(), items.len() as u64);
        let total = tree.query(&QueryBox::all(&schema));
        assert_eq!(total.count, items.len() as u64);
    }

    #[test]
    fn items_snapshot_roundtrips() {
        let schema = Schema::uniform(2, 3, 4);
        let tree: ConcurrentTree<Mbr> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Geometric, small_cfg());
        let mut items = items_grid(&schema, 300);
        for it in &items {
            tree.insert(it);
        }
        let mut got = tree.items();
        let key = |i: &Item| (i.coords.to_vec(), i.measure.to_bits());
        items.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(items, got);
    }

    #[test]
    fn hilbert_leaves_stay_sorted() {
        let schema = Schema::uniform(2, 2, 8);
        let tree: ConcurrentTree<Mbr> = ConcurrentTree::new(
            schema.clone(),
            InsertPolicy::Hilbert { expand: false },
            small_cfg(),
        );
        for it in items_grid(&schema, 1000) {
            tree.insert(&it);
        }
        // Walk leaves: within every leaf, entries must be sorted by hkey;
        // across directory levels, subtree maxima must be non-decreasing and
        // bounded by the stored LHV.
        fn walk(node: &Arc<Node<Mbr>>) -> Option<BigIndex> {
            let g = node.read();
            match &g.children {
                NodeChildren::Leaf(entries) => {
                    let keys: Vec<_> =
                        (0..entries.len()).map(|i| entries.hkey(i).cloned().unwrap()).collect();
                    for w in keys.windows(2) {
                        assert!(w[0] <= w[1], "leaf entries out of Hilbert order");
                    }
                    keys.last().cloned()
                }
                NodeChildren::Dir(entries) => {
                    let mut last: Option<BigIndex> = None;
                    for e in entries {
                        let sub_max = walk(&e.node);
                        if let (Some(prev), Some(cur)) = (&last, &sub_max) {
                            assert!(prev <= cur, "directory children out of LHV order");
                        }
                        if let Some(cur) = sub_max {
                            if let Some(lhv) = &e.lhv {
                                assert!(*lhv >= cur, "LHV does not bound subtree");
                            }
                            last = Some(cur);
                        }
                    }
                    last
                }
            }
        }
        walk(&tree.root_arc());
    }

    #[test]
    fn empty_tree_queries_are_empty() {
        let schema = Schema::uniform(2, 2, 8);
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, small_cfg());
        assert!(tree.is_empty());
        let agg = tree.query(&QueryBox::all(&schema));
        assert!(agg.is_empty());
        assert!(tree.mbr().is_empty());
    }
}
