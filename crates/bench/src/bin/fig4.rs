//! Figure 4: Hilbert PDC tree vs PDC tree query time for low / medium /
//! high coverage queries as the database grows.
//!
//! Paper setup: TPC-DS data, a single tree on one worker instance, sizes
//! 1–10 million. Scaled here to 1–10 × 100 k (`--quick`: × 10 k). Trees are
//! built by point insertion so each insertion policy shapes its own
//! structure, and queries are drawn from coverage bins measured against a
//! data sample, exactly as §IV describes.
//!
//! Expected shape: both trees fast at high coverage (cached aggregates);
//! Hilbert PDC significantly faster at low and medium coverage.

use std::time::Instant;

use volap_bench::{scaled, LatencyStats};
use volap_data::{CoverageBand, DataGen, QueryGen};
use volap_dims::Schema;
use volap_tree::{build_store, StoreKind, TreeConfig};

fn main() {
    let schema = Schema::tpcds();
    let step = scaled(100_000, 10_000);
    let steps = 10;
    let queries_per_band = scaled(40, 10);

    let mut gen = DataGen::new(&schema, 4001, 1.5);
    let all_items = gen.items(step * steps);
    let kinds = [StoreKind::HilbertPdcMds, StoreKind::PdcMds];
    let stores: Vec<_> = kinds
        .iter()
        .map(|&k| build_store(k, &schema, &TreeConfig::default()))
        .collect();

    println!("# Figure 4: query time vs database size (single tree, TPC-DS, {} dims)", schema.dims());
    println!(
        "{:<10} {:<22} {:<8} {:>12} {:>12} {:>10}",
        "size", "tree", "band", "mean_ms", "p95_ms", "checksum"
    );
    let mut inserted = 0usize;
    for s in 1..=steps {
        // Incremental load up to s*step items.
        let target = s * step;
        for it in &all_items[inserted..target] {
            for store in &stores {
                store.insert(it);
            }
        }
        inserted = target;
        // Bin queries against the current contents.
        let sample = &all_items[..target.min(20_000)];
        let mut qg = QueryGen::new(&schema, 5000 + s as u64, 0.65);
        let bins = qg.binned(sample, queries_per_band, 200_000);
        for (kind, store) in kinds.iter().zip(&stores) {
            for (band, queries) in CoverageBand::all().iter().zip(&bins) {
                if queries.is_empty() {
                    continue;
                }
                let mut lats = Vec::with_capacity(queries.len());
                let mut checksum = 0u64;
                for q in queries {
                    let t = Instant::now();
                    let agg = store.query(q);
                    lats.push(t.elapsed().as_secs_f64());
                    checksum = checksum.wrapping_add(agg.count);
                }
                let st = LatencyStats::from_samples(lats);
                println!(
                    "{:<10} {:<22} {:<8} {:>12.4} {:>12.4} {:>10}",
                    target,
                    kind.to_string(),
                    band.to_string(),
                    st.mean * 1e3,
                    st.p95 * 1e3,
                    checksum
                );
            }
        }
    }
    println!("# paper shape: Hilbert PDC <= PDC everywhere; largest gap at low/medium coverage");
}
