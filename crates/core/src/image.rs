//! The global system image: shard records in the coordination store.
//!
//! The image (§III-B) contains "lists of the current workers and servers,
//! configuration parameters, and for each shard its size, bounding box, and
//! the address of the worker where it is located". It lives under these
//! coordination paths:
//!
//! | path                 | payload                              |
//! |----------------------|--------------------------------------|
//! | `/workers/<name>`    | empty marker                         |
//! | `/servers/<name>`    | empty marker                         |
//! | `/shards/<id>`       | encoded [`ShardRecord`]              |
//! | `/meta/next_id`      | 8-byte shard-ID allocation counter   |

use bytes::{Buf, BufMut};
use volap_coord::{CoordError, CoordService};
use volap_dims::{Mbr, Schema};
use volap_obs::{Counter, Obs};

use crate::wire::{self, WireError};

/// Path prefix for shard records.
pub const SHARDS_PREFIX: &str = "/shards/";
/// Path prefix for worker membership.
pub const WORKERS_PREFIX: &str = "/workers/";
/// Path prefix for server membership.
pub const SERVERS_PREFIX: &str = "/servers/";
/// Shard-ID allocator path.
pub const NEXT_ID_PATH: &str = "/meta/next_id";

/// One shard's entry in the global image.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Shard ID.
    pub id: u64,
    /// Name (endpoint) of the worker holding the shard.
    pub worker: String,
    /// Item count at last publish.
    pub len: u64,
    /// Bounding box (union of worker-observed and server-predicted).
    pub mbr: Mbr,
}

impl ShardRecord {
    /// Coordination path of this record.
    pub fn path(id: u64) -> String {
        format!("{SHARDS_PREFIX}{id:020}")
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.put_u64(self.id);
        wire::put_str(&mut buf, &self.worker);
        buf.put_u64(self.len);
        wire::put_mbr(&mut buf, &self.mbr);
        buf
    }

    /// Decode from bytes.
    pub fn decode(schema: &Schema, mut data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 8 {
            return Err("shard record truncated".into());
        }
        let id = data.get_u64();
        let worker = wire::get_str(&mut data)?;
        if data.len() < 8 {
            return Err("shard record truncated after worker".into());
        }
        let len = data.get_u64();
        let mbr = wire::get_mbr(&mut data, schema)?;
        Ok(Self { id, worker, len, mbr })
    }
}

/// Typed facade over the coordination store for image operations.
///
/// Also the distribution channel for the deployment's observability core:
/// every component (server, worker, manager) receives the `ImageStore` at
/// spawn, so the [`Obs`] handle embedded here reaches them all without
/// widening any spawn signature.
#[derive(Clone)]
pub struct ImageStore {
    coord: CoordService,
    schema: Schema,
    obs: Obs,
    merges: Counter,
    cas_retries: Counter,
    removes: Counter,
}

impl ImageStore {
    /// Wrap a coordination service (with a default observability core).
    pub fn new(coord: CoordService, schema: Schema) -> Self {
        Self::with_obs(coord, schema, Obs::default())
    }

    /// Wrap a coordination service sharing an existing observability core.
    pub fn with_obs(coord: CoordService, schema: Schema, obs: Obs) -> Self {
        let reg = obs.registry();
        let merges = reg.counter("volap_image_merges_total");
        let cas_retries = reg.counter("volap_image_cas_retries_total");
        let removes = reg.counter("volap_image_removes_total");
        Self { coord, schema, obs, merges, cas_retries, removes }
    }

    /// The underlying coordination service.
    pub fn coord(&self) -> &CoordService {
        &self.coord
    }

    /// The deployment-wide observability core.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The global image generation: total mutations (merges + removals)
    /// applied to shard records. Monotonic; ANALYZE plans stamp it so a
    /// plan's routing decision can be ordered against image churn.
    pub fn generation(&self) -> u64 {
        self.merges.get() + self.removes.get()
    }

    /// Allocate `n` consecutive fresh shard IDs (CAS loop on the counter).
    pub fn alloc_ids(&self, n: u64) -> std::ops::Range<u64> {
        loop {
            match self.coord.get(NEXT_ID_PATH) {
                None => {
                    let mut buf = Vec::new();
                    buf.put_u64(n);
                    if self.coord.create(NEXT_ID_PATH, buf).is_ok() {
                        return 0..n;
                    }
                }
                Some((data, version)) => {
                    let mut r: &[u8] = &data;
                    let cur = if r.len() >= 8 { r.get_u64() } else { 0 };
                    let mut buf = Vec::new();
                    buf.put_u64(cur + n);
                    if self.coord.set(NEXT_ID_PATH, buf, Some(version)).is_ok() {
                        return cur..cur + n;
                    }
                }
            }
        }
    }

    /// Publish (upsert) a shard record, *merging* with any concurrent
    /// update: boxes union, the larger item count wins. Server-side box
    /// expansions and worker-side statistics thus never clobber each other.
    pub fn merge_shard(&self, rec: &ShardRecord) {
        let path = ShardRecord::path(rec.id);
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            match self.coord.get(&path) {
                None => {
                    // Only a publisher that actually owns the shard (names a
                    // worker) may create the record. A server pushing a box
                    // expansion for a shard that was just split/retired must
                    // not resurrect it as an ownerless ghost.
                    if rec.worker.is_empty() {
                        self.record_merge(attempts);
                        return;
                    }
                    if self.coord.create(&path, rec.encode()).is_ok() {
                        self.record_merge(attempts);
                        return;
                    }
                }
                Some((data, version)) => {
                    let merged = match ShardRecord::decode(&self.schema, &data) {
                        Ok(mut existing) => {
                            existing.mbr.extend_mbr(&rec.mbr);
                            existing.len = existing.len.max(rec.len);
                            // Worker address: the publisher of the record
                            // being merged wins only if it actually moved
                            // the shard (non-empty worker name).
                            if !rec.worker.is_empty() {
                                existing.worker = rec.worker.clone();
                            }
                            existing
                        }
                        Err(_) => rec.clone(),
                    };
                    if self.coord.set(&path, merged.encode(), Some(version)).is_ok() {
                        self.record_merge(attempts);
                        return;
                    }
                }
            }
        }
    }

    /// Account one completed merge and any CAS retries it needed.
    fn record_merge(&self, attempts: u64) {
        self.merges.inc();
        if attempts > 1 {
            self.cas_retries.add(attempts - 1);
        }
    }

    /// Overwrite a shard record unconditionally (used when a split replaces
    /// a shard).
    pub fn put_shard(&self, rec: &ShardRecord) {
        let _ = self.coord.set(&ShardRecord::path(rec.id), rec.encode(), None);
    }

    /// Remove a shard record.
    pub fn remove_shard(&self, id: u64) -> Result<(), CoordError> {
        let res = self.coord.delete(&ShardRecord::path(id));
        if res.is_ok() {
            self.removes.inc();
        }
        res
    }

    /// Read one shard record.
    pub fn shard(&self, id: u64) -> Option<ShardRecord> {
        let (data, _) = self.coord.get(&ShardRecord::path(id))?;
        ShardRecord::decode(&self.schema, &data).ok()
    }

    /// Read all shard records.
    pub fn shards(&self) -> Vec<ShardRecord> {
        self.coord
            .list_with_data(SHARDS_PREFIX)
            .into_iter()
            .filter_map(|(_, data, _)| ShardRecord::decode(&self.schema, &data).ok())
            .collect()
    }

    /// Register a worker persistently (bootstrap/testing path).
    pub fn add_worker(&self, name: &str) {
        let _ = self.coord.set(&format!("{WORKERS_PREFIX}{name}"), Vec::new(), None);
    }

    /// Register a worker under a coordination session: the membership node
    /// is ephemeral and vanishes when the worker stops heartbeating, which
    /// is how the manager learns of dead workers.
    pub fn add_worker_ephemeral(&self, name: &str, session: volap_coord::SessionId) {
        let path = format!("{WORKERS_PREFIX}{name}");
        let _ = self.coord.delete(&path); // replace any stale persistent node
        let _ = self.coord.create_ephemeral(&path, Vec::new(), session);
    }

    /// Registered worker names.
    pub fn workers(&self) -> Vec<String> {
        self.coord
            .list(WORKERS_PREFIX)
            .into_iter()
            .map(|p| p[WORKERS_PREFIX.len()..].to_string())
            .collect()
    }

    /// Register a server.
    pub fn add_server(&self, name: &str) {
        let _ = self.coord.set(&format!("{SERVERS_PREFIX}{name}"), Vec::new(), None);
    }

    /// Registered server names.
    pub fn servers(&self) -> Vec<String> {
        self.coord
            .list(SERVERS_PREFIX)
            .into_iter()
            .map(|p| p[SERVERS_PREFIX.len()..].to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volap_dims::Key;

    fn schema() -> Schema {
        Schema::uniform(2, 2, 8)
    }

    fn mbr_of(s: &Schema, lo: u64, hi: u64) -> Mbr {
        Mbr::from_ranges(vec![(lo, hi); s.dims()])
    }

    #[test]
    fn record_roundtrip() {
        let s = schema();
        let rec = ShardRecord { id: 7, worker: "worker-1".into(), len: 42, mbr: mbr_of(&s, 3, 9) };
        let back = ShardRecord::decode(&s, &rec.encode()).unwrap();
        assert_eq!(back, rec);
        let empty = ShardRecord { id: 8, worker: "w".into(), len: 0, mbr: Mbr::empty(&s) };
        assert_eq!(ShardRecord::decode(&s, &empty.encode()).unwrap(), empty);
        assert!(ShardRecord::decode(&s, &rec.encode()[..5]).is_err());
    }

    #[test]
    fn id_allocation_is_collision_free_under_contention() {
        let s = schema();
        let store = ImageStore::new(CoordService::new(), s);
        let ids: Vec<std::ops::Range<u64>> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let st = store.clone();
                    scope.spawn(move || st.alloc_ids(10))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<u64> = ids.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 80, "no duplicate IDs");
    }

    #[test]
    fn merge_unions_boxes_and_keeps_max_len() {
        let s = schema();
        let store = ImageStore::new(CoordService::new(), s.clone());
        store.merge_shard(&ShardRecord { id: 1, worker: "w1".into(), len: 10, mbr: mbr_of(&s, 0, 5) });
        store.merge_shard(&ShardRecord { id: 1, worker: String::new(), len: 4, mbr: mbr_of(&s, 8, 9) });
        let rec = store.shard(1).unwrap();
        assert_eq!(rec.worker, "w1", "empty worker must not clobber");
        assert_eq!(rec.len, 10);
        assert_eq!(rec.mbr, mbr_of(&s, 0, 9));
    }

    #[test]
    fn membership_lists() {
        let store = ImageStore::new(CoordService::new(), schema());
        store.add_worker("w2");
        store.add_worker("w1");
        store.add_server("s1");
        assert_eq!(store.workers(), vec!["w1", "w2"]);
        assert_eq!(store.servers(), vec!["s1"]);
    }

    #[test]
    fn shard_listing_and_removal() {
        let s = schema();
        let store = ImageStore::new(CoordService::new(), s.clone());
        for id in [3u64, 1, 2] {
            store.put_shard(&ShardRecord { id, worker: "w".into(), len: id, mbr: Mbr::empty(&s) });
        }
        let ids: Vec<u64> = store.shards().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3], "zero-padded paths keep numeric order");
        store.remove_shard(2).unwrap();
        assert_eq!(store.shards().len(), 2);
        assert!(store.shard(2).is_none());
    }
}
