//! Sequential vs parallel query execution on a single tree.
//!
//! Reports the same workload through `query` (one thread, recycled-stack
//! traversal) and `query_par` (rayon subtree fan-out) at a small and a large
//! tree size, so the speedup — and the small-tree overhead bound — are both
//! visible in one run. `bench_query` (in `src/bin/`) records the same
//! comparison into `BENCH_query.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use volap_data::{DataGen, QueryGen};
use volap_dims::{Mds, QueryBox, Schema};
use volap_tree::serial::bulk_load;
use volap_tree::{ConcurrentTree, InsertPolicy, TreeConfig};

fn workload(schema: &Schema, n: usize) -> (ConcurrentTree<Mds>, Vec<QueryBox>) {
    let mut gen = DataGen::new(schema, 11, 1.5);
    let items = gen.items(n);
    let sample = &items[..items.len().min(10_000)];
    let mut qg = QueryGen::new(schema, 13, 0.65);
    let queries: Vec<_> = (0..32).map(|_| qg.query(sample)).collect();
    let tree: ConcurrentTree<Mds> = ConcurrentTree::new(
        schema.clone(),
        InsertPolicy::Hilbert { expand: true },
        TreeConfig::default(),
    );
    bulk_load(&tree, items);
    (tree, queries)
}

fn bench_seq_vs_par(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut group = c.benchmark_group("query_seq_vs_par");
    group.sample_size(10);
    for n in [10_000usize, 500_000] {
        let (tree, queries) = workload(&schema, n);
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("seq", n), &queries, |b, queries| {
            b.iter(|| {
                let mut total = 0u64;
                for q in queries {
                    total = total.wrapping_add(tree.query(q).count);
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("par", n), &queries, |b, queries| {
            b.iter(|| {
                let mut total = 0u64;
                for q in queries {
                    total = total.wrapping_add(tree.query_par(q).count);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_vs_par);
criterion_main!(benches);
