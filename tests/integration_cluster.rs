//! End-to-end cluster tests: client operations through servers and workers.

use std::time::Duration;

use volap::{Cluster, VolapConfig};
use volap_data::{coverage, DataGen, QueryGen};
use volap_dims::{Aggregate, Item, QueryBox, Schema};

fn small_cfg(schema: Schema) -> VolapConfig {
    let mut cfg = VolapConfig::new(schema);
    cfg.workers = 3;
    cfg.servers = 2;
    cfg.worker_threads = 2;
    cfg.server_threads = 2;
    cfg.sync_period = Duration::from_millis(30);
    cfg.stats_period = Duration::from_millis(30);
    cfg.manager_period = Duration::from_millis(30);
    cfg.max_shard_items = 2_000;
    cfg.initial_shards_per_worker = 1;
    cfg
}

fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
    let mut a = Aggregate::empty();
    for it in items.iter().filter(|it| q.contains_item(it)) {
        a.add(it.measure);
    }
    a
}

/// Repeat an eventually-consistent assertion until it holds or times out.
fn eventually(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn inserts_are_immediately_visible_on_same_session() {
    let schema = Schema::tpcds();
    let cluster = Cluster::start(small_cfg(schema.clone()));
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 11, 1.5);
    let items = gen.items(500);
    for (i, it) in items.iter().enumerate() {
        client.insert(it).unwrap();
        // Session consistency: a query right after the insert through the
        // SAME server must include it.
        if i % 100 == 99 {
            let (agg, _) = client.query(&QueryBox::all(&schema)).unwrap();
            assert_eq!(agg.count, (i + 1) as u64, "own writes must be visible");
        }
    }
    cluster.shutdown();
}

#[test]
fn queries_match_brute_force_across_servers() {
    let schema = Schema::tpcds();
    let cluster = Cluster::start(small_cfg(schema.clone()));
    let writer = cluster.client_on(0);
    let reader = cluster.client_on(1);
    let mut gen = DataGen::new(&schema, 21, 1.5);
    let items = gen.items(3_000);
    for it in &items {
        writer.insert(it).unwrap();
    }
    // Cross-server visibility is bounded by the sync period.
    assert!(
        eventually(Duration::from_secs(10), || {
            let (agg, _) = reader.query(&QueryBox::all(&schema)).unwrap();
            agg.count == items.len() as u64
        }),
        "cross-server convergence timed out"
    );
    // Check several coverage-diverse queries for exact agreement.
    let mut qg = QueryGen::new(&schema, 5, 0.6);
    for _ in 0..25 {
        let q = qg.query(&items);
        let expect = brute(&items, &q);
        let ok = eventually(Duration::from_secs(5), || {
            let (got, _) = reader.query(&q).unwrap();
            got.count == expect.count && (got.sum - expect.sum).abs() < 1e-6
        });
        assert!(ok, "query result diverged (coverage {})", coverage(&items, &q));
    }
    cluster.shutdown();
}

#[test]
fn splits_preserve_all_data() {
    let schema = Schema::uniform(4, 2, 16);
    let mut cfg = small_cfg(schema.clone());
    cfg.max_shard_items = 500; // force many splits
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 31, 1.0);
    let items = gen.items(4_000);
    for it in &items {
        // Routing is eventually consistent while shards split underneath
        // the insert stream: retry transient errors like a real client.
        let ok = eventually(Duration::from_secs(5), || client.insert(it).is_ok());
        assert!(ok, "insert kept failing during splits");
    }
    // Wait for the manager to finish splitting.
    assert!(
        eventually(Duration::from_secs(15), || cluster.balance_counts().0 >= 3),
        "manager never split"
    );
    let (agg, shards) = client.query(&QueryBox::all(&schema)).unwrap();
    assert_eq!(agg.count, items.len() as u64, "no item lost through splits");
    assert!(shards >= 3, "whole-space query must touch the split shards");
    assert!(cluster.shard_count() > 3, "image must show the new shards");
    cluster.shutdown();
}

#[test]
fn empty_cluster_answers_empty() {
    let schema = Schema::uniform(2, 2, 8);
    let cluster = Cluster::start(small_cfg(schema.clone()));
    let client = cluster.client();
    let (agg, _) = client.query(&QueryBox::all(&schema)).unwrap();
    assert!(agg.is_empty());
    cluster.shutdown();
}

#[test]
fn concurrent_clients_do_not_lose_operations() {
    let schema = Schema::uniform(4, 2, 16);
    let cluster = Cluster::start(small_cfg(schema.clone()));
    let n_clients = 4;
    let per_client = 500;
    std::thread::scope(|s| {
        for c in 0..n_clients {
            let client = cluster.client();
            let schema = schema.clone();
            s.spawn(move || {
                let mut gen = DataGen::new(&schema, 100 + c as u64, 1.0);
                for it in gen.items(per_client) {
                    client.insert(&it).unwrap();
                }
            });
        }
    });
    let client = cluster.client();
    let total = (n_clients * per_client) as u64;
    assert!(
        eventually(Duration::from_secs(10), || {
            let (agg, _) = client.query(&QueryBox::all(&schema)).unwrap();
            agg.count == total
        }),
        "lost inserts under concurrency"
    );
    cluster.shutdown();
}

#[test]
fn client_bulk_insert_equals_point_inserts() {
    let schema = Schema::tpcds();
    let cluster = Cluster::start(small_cfg(schema.clone()));
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 51, 1.5);
    let items = gen.items(5_000);
    // Ship in 4 batches.
    for chunk in items.chunks(1_250) {
        client.bulk_insert(chunk.to_vec()).unwrap();
    }
    let (agg, _) = client.query(&QueryBox::all(&schema)).unwrap();
    assert_eq!(agg.count, items.len() as u64, "bulk path must not lose items");
    // Exact agreement with brute force on a drill-down query.
    let mut qg = QueryGen::new(&schema, 52, 0.6);
    for _ in 0..10 {
        let q = qg.query(&items);
        let expect = brute(&items, &q);
        let ok = eventually(Duration::from_secs(5), || {
            let (got, _) = client.query(&q).unwrap();
            got.count == expect.count
        });
        assert!(ok, "bulk-ingested data must answer queries exactly");
    }
    // Empty batches are fine.
    client.bulk_insert(Vec::new()).unwrap();
    cluster.shutdown();
}
