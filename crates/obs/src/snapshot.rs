//! A coherent point-in-time view of everything the observability core
//! knows: metrics, recent events, and measured staleness.

use crate::audit::BalanceDecision;
use crate::events::Event;
use crate::heat::HeatEntry;
use crate::lock::LockClassSnapshot;
use crate::registry::{HistogramSnapshot, ScalarSnapshot};
use crate::staleness::StalenessSnapshot;

/// One full observability snapshot. `PartialEq` + the exporter parsers in
/// [`crate::export`] give exact round-trip tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, sorted by id.
    pub counters: Vec<ScalarSnapshot<u64>>,
    /// All gauges, sorted by id.
    pub gauges: Vec<ScalarSnapshot<i64>>,
    /// All histograms, sorted by id (cumulative finite buckets).
    pub histograms: Vec<HistogramSnapshot>,
    /// Recent events in global sequence order.
    pub events: Vec<Event>,
    /// Per-shard heat, ordered by shard id.
    pub heat: Vec<HeatEntry>,
    /// Recent load-balance decisions in global sequence order.
    pub audit: Vec<BalanceDecision>,
    /// Per-class lock contention summaries, ordered by rank then name (the
    /// full wait/hold distributions are in `histograms` as
    /// `volap_lock_{wait,hold}_seconds{class=..}`).
    pub locks: Vec<LockClassSnapshot>,
    /// Measured image-staleness samples.
    pub staleness: StalenessSnapshot,
}

impl Snapshot {
    /// This snapshot with events, heat, audit, and staleness stripped — the
    /// subset the Prometheus text exposition can represent (raw samples and
    /// the structured logs have no exposition form; staleness *distribution*
    /// is still present as the `volap_staleness_seconds` histogram).
    pub fn metrics_only(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            events: Vec::new(),
            heat: Vec::new(),
            audit: Vec::new(),
            locks: Vec::new(),
            staleness: StalenessSnapshot::default(),
        }
    }

    /// Sum of all counters with this name, across labels.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.id.name == name).map(|c| c.value).sum()
    }

    /// Sum of all gauges with this name, across labels.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().filter(|g| g.id.name == name).map(|g| g.value).sum()
    }

    /// The first histogram with this name (unlabeled histograms are unique).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.id.name == name)
    }

    /// Events of one kind.
    pub fn events_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The lock-class summary with this name.
    pub fn lock_class(&self, name: &str) -> Option<&LockClassSnapshot> {
        self.locks.iter().find(|l| l.class == name)
    }
}
