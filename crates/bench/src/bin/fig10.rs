//! Figure 10: query freshness between sessions on different servers (PBS).
//!
//! As in §IV-F, this is a simulation driven by *measured* system behaviour:
//! we run a live two-server cluster to capture (1) the insert latency
//! distribution and (2) the probability that an insert expands a shard
//! bounding box (the only inserts that a stale remote image can miss),
//! then feed both into the Monte-Carlo PBS model at the paper's scale
//! (3-second sync period, 50 k inserts/s).
//!
//! Expected shape: (a) the average number of missed inserts drops to near
//! zero by 0.25 s of elapsed time; (b) the probability of k = 1…4 missed
//! inserts collapses between 0.25 s and 2 s; consistency is always reached
//! within the sync period (paper: < 3 s).

use std::time::Duration;

use volap::{Cluster, FreshnessSim, VolapConfig};
use volap_bench::{drive, quick_mode, scaled};
use volap_data::{DataGen, Op};
use volap_dims::Schema;

fn main() {
    let schema = Schema::tpcds();
    let preload = scaled(60_000, 8_000);
    let trials = scaled(500_000, 50_000);

    println!("# Figure 10: PBS freshness (measured parameters, simulated at paper scale)");
    if quick_mode() {
        println!("# (quick mode)");
    }
    // Phase 1: measure from a live cluster.
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 4;
    cfg.servers = 2;
    cfg.max_shard_items = scaled(10_000, 3_000) as u64;
    cfg.sync_period = Duration::from_millis(50);
    // Model a datacenter wire so measured insert latencies are on the same
    // scale as the paper's EC2 deployment (in-process channels alone would
    // be unrealistically fast).
    cfg.net_latency = Some(Duration::from_millis(1));
    let cluster = Cluster::start(cfg);
    let mut gen = DataGen::new(&schema, 10_100, 1.5);
    // Expansion probability of a *mature* database: measure over the last
    // 20% of the load only (young databases expand boxes constantly; the
    // rate decays as boxes converge to the populated space).
    let warm: Vec<Op> = gen.items(preload * 4 / 5).into_iter().map(Op::Insert).collect();
    let warm_res = drive(&cluster, 8, &warm);
    let tail_snapshot = cluster.expansion_counts();
    let tail_ops: Vec<Op> = gen.items(preload / 5).into_iter().map(Op::Insert).collect();
    let tail_res = drive(&cluster, 8, &tail_ops);
    let mut latencies = warm_res.insert_lat;
    latencies.extend(tail_res.insert_lat);
    let (ins_end, exp_end) = cluster.expansion_counts();
    let cumulative_prob = cluster.expansion_prob();
    let tail_ins = ins_end.saturating_sub(tail_snapshot.0).max(1);
    let tail_exp = exp_end.saturating_sub(tail_snapshot.1);
    let expansion_prob = tail_exp as f64 / tail_ins as f64;
    cluster.shutdown();
    println!(
        "# measured: {} insert-latency samples; expansion_prob cumulative = {cumulative_prob:.6}, \
mature tail (last 20% of load) = {expansion_prob:.6}",
        latencies.len()
    );
    println!("# (the rate decays with database size; the paper's 1-billion-item system sits far \
further down this curve)");

    let sim = FreshnessSim {
        insert_rate: 50_000.0,
        coverage: 0.5,
        sync_period: 3.0,
        apply_latency: 0.01,
        expansion_prob,
        insert_latency_samples: latencies,
    };

    // (a) average missed inserts vs elapsed time, under the measured tail
    // expansion rate and a rare-expansion sensitivity scenario.
    let mut rare = sim.clone();
    rare.expansion_prob = rare.expansion_prob.max(1e-5);
    println!("\n(a) avg missed inserts vs elapsed time (coverage 50%)");
    println!("{:>12} {:>18} {:>24}", "elapsed_s", "avg_missed", "avg_missed(rare-exp)");
    for e in [
        0.0, 0.01, 0.025, 0.05, 0.1, 0.15, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0,
    ] {
        println!(
            "{e:>12.3} {:>18.4} {:>24.6}",
            sim.avg_missed(e, trials, 1),
            rare.avg_missed(e, trials, 1)
        );
    }

    // (b) P[k missed] for k = 1..4 at several elapsed times x coverages.
    // Our in-process latency tail is ~10 ms where the paper's EC2 tail
    // reached ~0.25 s, so the interesting elapsed times scale down with it;
    // the 0.005 s column plays the role of the paper's 0.25 s one.
    println!("\n(b) P[k missed inserts] at elapsed 0.005 / 0.25 / 1 s");
    for coverage in [0.25, 0.5, 0.75, 1.0] {
        let mut s = sim.clone();
        s.coverage = coverage;
        let pa = s.missed_pmf(0.005, 4, trials, 2);
        let pb = s.missed_pmf(0.25, 4, trials, 3);
        let pc = s.missed_pmf(1.0, 4, trials, 4);
        println!("  coverage {:.0}%:", coverage * 100.0);
        println!("  {:>3} {:>12} {:>12} {:>12}", "k", "@0.005s", "@0.25s", "@1s");
        for k in 1..=4 {
            println!("  {k:>3} {:>12.6} {:>12.6} {:>12.6}", pa[k], pb[k], pc[k]);
        }
    }

    let max_v = sim.max_visibility(trials * 2, 5);
    let max_v_rare = rare.max_visibility(trials * 2, 5);
    println!(
        "\n# max visibility delay over {} simulated inserts: {max_v:.3} s \
(with rare expansions: {max_v_rare:.3} s)",
        trials * 2
    );
    println!("# paper: consistency between servers always observed in under 3 seconds");
}
