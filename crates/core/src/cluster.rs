//! The single-process cluster harness and client sessions.
//!
//! Assembles the full VOLAP deployment of Figure 2 — `m` servers, `p`
//! workers, a coordination store and the manager — inside one process,
//! connected by the [`volap_net`] fabric. Workers and servers run real
//! service threads and speak the real wire protocol; only the physical
//! network is simulated.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use volap_coord::CoordService;
use volap_dims::{Aggregate, Item, QueryBox, Schema};
use volap_net::{Endpoint, Network};
use volap_obs::lock::{CheckMode, LockClass, ObsMutex};
use volap_obs::{Obs, ObsConfig, Snapshot, Trace, TraceConfig, Tracer};

/// Handle list of the harness itself; held only for push/remove, never
/// while any component lock is taken, but it ranks lowest so it could be.
static WORKERS_CLASS: LockClass = LockClass::new("cluster.workers", 10);

use crate::config::VolapConfig;
use crate::image::ImageStore;
use crate::manager::{spawn_manager, ManagerHandle};
use crate::proto::{Request, Response};
use crate::server::{spawn_server, ServerHandle};
use crate::worker::{create_empty_shard, spawn_worker, WorkerHandle};

/// A running VOLAP deployment.
pub struct Cluster {
    net: Network,
    image: ImageStore,
    cfg: VolapConfig,
    workers: ObsMutex<Vec<WorkerHandle>>,
    servers: Vec<ServerHandle>,
    manager: Option<ManagerHandle>,
    sampler: Option<SamplerHandle>,
    bootstrap_ep: Endpoint,
    next_client: AtomicUsize,
    next_worker_id: AtomicUsize,
}

/// The continuous-telemetry sampler thread: every `history_interval` it
/// captures one history frame from the live registry and runs the SLO
/// health watchdog over it.
struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

impl SamplerHandle {
    fn spawn(obs: Obs, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_t = stop.clone();
        let join = std::thread::Builder::new()
            .name("volap-sampler".into())
            .spawn(move || {
                while crate::util::sleep_unless_stopped(interval, &stop_t) {
                    obs.sample_tick();
                }
            })
            .expect("spawn sampler thread");
        Self { stop, join }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.join.join();
    }
}

impl Cluster {
    /// Start a cluster per `cfg`: workers first, then the initial empty
    /// shards, then servers (which bootstrap from the image), then the
    /// manager.
    pub fn start(cfg: VolapConfig) -> Self {
        // Arm (or disarm) the debug-build lock-order checker before the
        // first service thread takes a lock. Release builds compile the
        // checker out; setting the mode there is a no-op.
        volap_obs::lock::set_check_mode(if cfg.lock_check { CheckMode::Panic } else { CheckMode::Off });
        let net = match cfg.net_latency {
            Some(lat) => Network::with_latency(lat),
            None => Network::new(),
        };
        let coord = CoordService::new();
        let obs = Obs::new(ObsConfig {
            histograms: cfg.obs_histograms,
            event_capacity: cfg.obs_event_capacity,
            heat_enabled: cfg.heat_enabled,
            audit_capacity: cfg.audit_capacity,
            trace: TraceConfig {
                sample: cfg.trace_sample,
                slow_threshold: cfg.trace_slow_threshold,
                ..TraceConfig::default()
            },
            history: volap_obs::HistoryConfig {
                enabled: true,
                interval: cfg.history_interval,
                capacity: cfg.history_capacity,
            },
            health_rules: cfg.health_rules.clone(),
            accounting: volap_obs::AccountConfig {
                enabled: cfg.accounting_enabled,
                topk: cfg.accounting_topk,
                ..volap_obs::AccountConfig::default()
            },
        });
        let sampler = (cfg.history_capacity > 0 && !cfg.history_interval.is_zero())
            .then(|| SamplerHandle::spawn(obs.clone(), cfg.history_interval));
        net.attach_obs(obs.registry());
        net.attach_tracer(obs.tracer());
        // Lock-order violations (Record mode) land in this deployment's
        // event log alongside the rest of the structured events.
        obs.install_lock_hook();
        let image = ImageStore::with_obs(coord, cfg.schema.clone(), obs);
        let bootstrap_ep = net.endpoint("bootstrap");

        let mut workers = Vec::new();
        for i in 0..cfg.workers {
            workers.push(spawn_worker(&net, &image, &cfg, &format!("worker-{i}")));
        }
        // Seed initial empty shards round-robin.
        for w in &workers {
            for _ in 0..cfg.initial_shards_per_worker {
                let id = image.alloc_ids(1).start;
                create_empty_shard(&bootstrap_ep, &w.name, &cfg.schema, id, cfg.request_timeout)
                    .expect("bootstrap shard");
            }
        }
        let servers: Vec<ServerHandle> = (0..cfg.servers)
            .map(|i| spawn_server(&net, &image, &cfg, &format!("server-{i}")))
            .collect();
        let manager = cfg
            .manager_enabled
            .then(|| spawn_manager(&net, &image, &cfg, "manager"));
        let next_worker_id = AtomicUsize::new(cfg.workers);
        Self {
            net,
            image,
            cfg,
            workers: ObsMutex::new(&WORKERS_CLASS, workers),
            servers,
            manager,
            sampler,
            bootstrap_ep,
            next_client: AtomicUsize::new(0),
            next_worker_id,
        }
    }

    /// The cluster's schema.
    pub fn schema(&self) -> &Schema {
        &self.cfg.schema
    }

    /// The configuration in force.
    pub fn config(&self) -> &VolapConfig {
        &self.cfg
    }

    /// The global image (inspection by experiments).
    pub fn image(&self) -> &ImageStore {
        &self.image
    }

    /// The message fabric (advanced embedding and fault-injection tests).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Kill a worker abruptly: unregister its endpoint (in-flight and
    /// future messages to it fail) and stop its threads. Its shards remain
    /// in the image, as after a real crash. Returns `false` for unknown
    /// names.
    pub fn kill_worker(&self, name: &str) -> bool {
        let handle = {
            let mut workers = self.workers.lock();
            match workers.iter().position(|w| w.name == name) {
                Some(pos) => workers.remove(pos),
                None => return false,
            }
        };
        self.net.unregister(name);
        handle.stop();
        true
    }

    /// Elastically add a worker (it starts empty; the manager migrates data
    /// onto it).
    pub fn add_worker(&self) -> String {
        let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
        let name = format!("worker-{id}");
        let handle = spawn_worker(&self.net, &self.image, &self.cfg, &name);
        self.workers.lock().push(handle);
        name
    }

    /// Open a client session, attached round-robin to one of the servers
    /// ("each user session is attached to one of the server nodes").
    pub fn client(&self) -> ClientSession {
        let i = self.next_client.fetch_add(1, Ordering::Relaxed);
        let server = format!("server-{}", i % self.servers.len());
        let endpoint = self.net.endpoint(format!("client-{i}"));
        ClientSession {
            endpoint,
            server,
            schema: self.cfg.schema.clone(),
            timeout: self.cfg.request_timeout,
            accounting: self.obs().accounting().clone(),
            principal: volap_obs::PrincipalId::NONE,
        }
    }

    /// A client session pinned to a specific server (freshness experiments
    /// need cross-server pairs).
    pub fn client_on(&self, server_idx: usize) -> ClientSession {
        let i = self.next_client.fetch_add(1, Ordering::Relaxed);
        ClientSession {
            endpoint: self.net.endpoint(format!("client-{i}")),
            server: format!("server-{}", server_idx % self.servers.len()),
            schema: self.cfg.schema.clone(),
            timeout: self.cfg.request_timeout,
            accounting: self.obs().accounting().clone(),
            principal: volap_obs::PrincipalId::NONE,
        }
    }

    /// The deployment's observability core (metrics registry, event log,
    /// and staleness probe), shared by every component.
    pub fn obs(&self) -> &Obs {
        self.image.obs()
    }

    /// One coherent observability snapshot: every counter, gauge, and
    /// latency histogram, the recent structured events, and the measured
    /// staleness distribution. Render it with `volap_obs::export`.
    pub fn snapshot(&self) -> Snapshot {
        self.obs().snapshot()
    }

    /// The causal tracer: runtime sampling control and span inspection.
    pub fn tracer(&self) -> &Tracer {
        self.obs().tracer()
    }

    /// The per-shard heat map: EWMA insert/query rates and box volumes
    /// published by worker stats threads, ordered by shard id. Empty when
    /// `VolapConfig::heat_enabled` is off (or until the first stats period
    /// elapses).
    pub fn heatmap(&self) -> Vec<volap_obs::HeatEntry> {
        self.obs().heat().snapshot()
    }

    /// The load-balance audit trail: every manager decision (split,
    /// migration, orphan reap) with the inputs that drove it, sequence
    /// ordered, bounded by `VolapConfig::audit_capacity`.
    pub fn balance_audit(&self) -> Vec<volap_obs::BalanceDecision> {
        self.obs().audit().snapshot()
    }

    /// The metrics time-series ring: one frame per sampler interval holding
    /// counter deltas, interval p50/p99s, and derived gauges (staleness,
    /// heat spread, lock contention fractions), bounded by
    /// `VolapConfig::history_capacity`.
    pub fn history(&self) -> volap_obs::HistorySnapshot {
        self.obs().history().snapshot()
    }

    /// Current SLO health per rule, sorted by component then rule —
    /// the health watchdog's latest `Healthy`/`Degraded`/`Critical` state
    /// machines plus the values and anomaly z-scores that drove them.
    pub fn health(&self) -> Vec<volap_obs::ComponentHealth> {
        self.obs().health()
    }

    /// Per-principal workload accounting: exact per-tenant cost totals plus
    /// the decayed top-K heavy-hitter sketch per cost dimension. Tag a
    /// session with [`ClientSession::with_principal`] to start attributing;
    /// snapshot via [`volap_obs::Accounting::snapshot`] or `Snapshot::accounting`.
    pub fn accounting(&self) -> &volap_obs::Accounting {
        self.obs().accounting()
    }

    /// The slow-query flight recorder: the most recent sampled traces whose
    /// root span exceeded `VolapConfig::trace_slow_threshold`, oldest
    /// first. Render one with `Trace::render_tree` or export the lot with
    /// `volap_obs::export::traces_to_perfetto`.
    pub fn slow_traces(&self) -> Vec<Trace> {
        self.obs().tracer().slow_traces()
    }

    /// `(splits, migrations)` performed so far by the manager.
    pub fn balance_counts(&self) -> (u64, u64) {
        match &self.manager {
            Some(m) => (m.stats.splits.get(), m.stats.migrations.get()),
            None => (0, 0),
        }
    }

    /// Per-worker data sizes from the global image: `(worker, items)`,
    /// including workers that currently hold nothing.
    pub fn worker_loads(&self) -> Vec<(String, u64)> {
        let mut loads: Vec<(String, u64)> =
            self.image.workers().into_iter().map(|w| (w, 0)).collect();
        for rec in self.image.shards() {
            if let Some(entry) = loads.iter_mut().find(|(w, _)| *w == rec.worker) {
                entry.1 += rec.len;
            }
        }
        loads
    }

    /// Cumulative `(inserts, box_expansions)` across all servers. Snapshot
    /// twice and difference to get the expansion probability of a *mature*
    /// database window (feeds the Figure-10 simulation).
    pub fn expansion_counts(&self) -> (u64, u64) {
        let reg = self.obs().registry();
        (
            reg.sum_counters("volap_server_inserts_total"),
            reg.sum_counters("volap_server_box_expansions_total"),
        )
    }

    /// Cumulative fraction of inserts that expanded a shard box.
    pub fn expansion_prob(&self) -> f64 {
        let (ins, exp) = self.expansion_counts();
        if ins == 0 {
            0.0
        } else {
            exp as f64 / ins as f64
        }
    }

    /// Total shard count in the image.
    pub fn shard_count(&self) -> usize {
        self.image.shards().len()
    }

    /// Wait until every server has at least `n` shards in its local image
    /// (sync settling helper for tests/benches).
    pub fn settle(&self, deadline: Duration) {
        let start = Instant::now();
        let want = self.shard_count();
        while start.elapsed() < deadline {
            // Probe via a tiny query through each server: a full-space query
            // must route to every live shard's worker without error.
            let ok = {
                let c = self.client();
                c.query(&QueryBox::all(&self.cfg.schema)).is_ok()
            };
            if ok && self.shard_count() >= want {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stop everything: sampler, manager, servers, workers.
    pub fn shutdown(self) {
        if let Some(s) = self.sampler {
            s.stop();
        }
        if let Some(m) = self.manager {
            m.stop();
        }
        for s in self.servers {
            s.stop();
        }
        for w in self.workers.into_inner() {
            w.stop();
        }
        let _ = self.bootstrap_ep;
    }
}

/// A client session bound to one server.
pub struct ClientSession {
    endpoint: Endpoint,
    server: String,
    schema: Schema,
    timeout: Duration,
    accounting: volap_obs::Accounting,
    principal: volap_obs::PrincipalId,
}

impl ClientSession {
    /// The server this session is attached to.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Tag every request from this session with an accounting principal
    /// (tenant/user/job name): its measured cost is charged to that name in
    /// [`Cluster::accounting`]. The empty string untags. Interning is
    /// per-deployment, so two sessions using the same name share totals.
    pub fn with_principal(mut self, name: &str) -> Self {
        self.principal = self.accounting.intern(name);
        self
    }

    /// The interned principal this session stamps on requests
    /// (`PrincipalId::NONE` when untagged).
    pub fn principal(&self) -> volap_obs::PrincipalId {
        self.principal
    }

    /// Bulk-ingest a batch: routed in one pass on the server and shipped
    /// to workers as per-shard bulk loads. Far faster than per-item
    /// round trips (paper §IV-C).
    pub fn bulk_insert(&self, items: Vec<Item>) -> Result<(), String> {
        let bytes = self
            .endpoint
            .request(&self.server, Request::ClientBulkInsert { items, principal: self.principal.0 }.encode(), self.timeout)
            .map_err(|e| e.to_string())?;
        match Response::decode(&self.schema, &bytes).map_err(|e| e.to_string())? {
            Response::Ack => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Insert one item; returns when the item is durably placed in a shard.
    pub fn insert(&self, item: &Item) -> Result<(), String> {
        let bytes = self
            .endpoint
            .request(&self.server, Request::ClientInsert { item: item.clone(), principal: self.principal.0 }.encode(), self.timeout)
            .map_err(|e| e.to_string())?;
        match Response::decode(&self.schema, &bytes).map_err(|e| e.to_string())? {
            Response::Ack => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Run an aggregate query; returns the aggregate and the number of
    /// shards searched (Figure 9b's metric).
    pub fn query(&self, q: &QueryBox) -> Result<(Aggregate, u32), String> {
        let bytes = self
            .endpoint
            .request(&self.server, Request::ClientQuery { query: q.clone(), principal: self.principal.0 }.encode(), self.timeout)
            .map_err(|e| e.to_string())?;
        match Response::decode(&self.schema, &bytes).map_err(|e| e.to_string())? {
            Response::Agg { agg, shards_searched } => Ok((agg, shards_searched)),
            Response::Err(e) => Err(e),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// [`ClientSession::query`] with EXPLAIN/ANALYZE: the same aggregate,
    /// plus the assembled [`crate::QueryPlan`] describing exactly how the
    /// query executed — which image leaves the server's routing index
    /// matched (and the image generation/staleness at that moment), and for
    /// every contacted worker the alias chases, parallel fan-out, and
    /// per-shard traversal counters. The non-analyzed path is untouched:
    /// introspection cost is paid only by this call.
    pub fn query_analyze(&self, q: &QueryBox) -> Result<(Aggregate, u32, crate::QueryPlan), String> {
        let bytes = self
            .endpoint
            .request(
                &self.server,
                Request::ClientQueryAnalyze { query: q.clone(), principal: self.principal.0 }.encode(),
                self.timeout,
            )
            .map_err(|e| e.to_string())?;
        match Response::decode(&self.schema, &bytes).map_err(|e| e.to_string())? {
            Response::AggPlan { agg, shards_searched, plan } => Ok((agg, shards_searched, plan)),
            Response::Err(e) => Err(e),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }
}
