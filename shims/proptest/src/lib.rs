//! Offline shim for the `proptest` crate.
//!
//! Implements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `boxed`, integer-range and tuple and `Vec<BoxedStrategy>`
//! strategies, [`collection::vec`], [`any`], [`Just`], a small
//! regex-character-class string strategy, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! - **No shrinking.** A failing case reports its case number and seed so it
//!   can be replayed (`PROPTEST_SEED`), but is not minimized.
//! - **Default case count is 64** (upstream: 256); override per test with
//!   `ProptestConfig::with_cases` or globally with `PROPTEST_CASES`.
//! - Generation is a plain seeded RNG walk; value distributions differ from
//!   upstream but cover the same domains.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG handed to strategies while generating one test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// Why a test case failed; carried by `Err` results out of a case body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream there is no value tree: `sample` directly produces a
/// value, and failing cases are not shrunk.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive samples", self.whence);
    }
}

/// Type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

// Integer range strategies: `0u64..16`, `1u32..=64`, ...
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

// Tuples of strategies sample element-wise.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A `Vec` of strategies samples each in order (used for per-dimension
/// coordinate strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for a type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection size specification accepted by [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-like patterns.
// ---------------------------------------------------------------------------

/// `&'static str` patterns act as string strategies. Supported syntax is the
/// subset the workspace uses: literal characters, `[...]` character classes
/// (with ranges and a literal trailing `-`), and the quantifiers `{n}`,
/// `{m,n}`, `?`, `+`, `*` (the unbounded ones are capped at 8 repeats).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");

        // Parse an optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.parse().expect("quantifier lower bound"),
                    b.parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: usize = body.parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };

        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Test runner.
// ---------------------------------------------------------------------------

/// Run `config.cases` deterministic cases of one property. Called by the
/// [`proptest!`] expansion; not part of the public upstream API.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE_u64)
        ^ hash_name(name);
    for i in 0..config.cases {
        let seed = base.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seeded(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!("property {name} failed at case {i} (seed {seed:#x}): {e}"),
            Err(payload) => {
                eprintln!("property {name} panicked at case {i} (seed {seed:#x})");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, enough to decorrelate per-test streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Define property tests: `proptest! { #[test] fn p(x in strat) { ... } }`.
///
/// Bodies behave as in upstream proptest: they may `return Ok(());` early and
/// use the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)+);
                $crate::run_cases(__config, stringify!($name), |__rng| {
                    let ($($pat,)+) = $crate::Strategy::sample(&__strategy, __rng);
                    let __body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "msg {}", args)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of upstream's `prelude::prop` module path (`prop::collection`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..500 {
            let v = Strategy::sample(&(3u64..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::sample(&(2u32..=4), &mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn vec_and_tuple_composition() {
        let mut rng = TestRng::seeded(2);
        let strat = prop::collection::vec((0u64..16, 0u32..100), 1..=5);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((1..=5).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 16 && b < 100);
            }
        }
    }

    #[test]
    fn boxed_and_vec_of_strategies() {
        let mut rng = TestRng::seeded(3);
        let cols: Vec<BoxedStrategy<u64>> = (1..=4u32).map(|b| (0u64..(1 << b)).boxed()).collect();
        let strat = (Just(vec![1u32, 2, 3, 4]), cols);
        let (widths, coords) = Strategy::sample(&strat, &mut rng);
        assert_eq!(widths, vec![1, 2, 3, 4]);
        assert_eq!(coords.len(), 4);
        for (i, &c) in coords.iter().enumerate() {
            assert!(c < (1 << (i as u32 + 1)));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::seeded(4);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z0-9-]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
        let t = Strategy::sample(&"ab[0-1]{3}", &mut rng);
        assert!(t.starts_with("ab") && t.len() == 5);
    }

    #[test]
    fn filter_and_flat_map() {
        let mut rng = TestRng::seeded(5);
        let strat = prop::collection::vec(1u32..=4, 1..=4)
            .prop_filter("small sum", |w| w.iter().sum::<u32>() <= 6)
            .prop_flat_map(|w| (Just(w.len()), prop::collection::vec(0u64..4, w.len())));
        for _ in 0..100 {
            let (n, v) = Strategy::sample(&strat, &mut rng);
            assert_eq!(n, v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, early return, assertion macros.
        #[test]
        fn macro_smoke((a, b) in (0u64..50, 0u64..50), flip in any::<bool>()) {
            prop_assert!(a < 50 && b < 50, "bounds {} {}", a, b);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + 1);
            if flip {
                return Ok(());
            }
            prop_assert!(a + b < 100);
        }
    }

    #[test]
    fn failing_property_panics_with_context() {
        let err = std::panic::catch_unwind(|| {
            crate::run_cases(ProptestConfig::with_cases(10), "always_fails", |rng| {
                let v = Strategy::sample(&(0u64..10), rng);
                if v < 100 {
                    Err(TestCaseError::fail("expected"))
                } else {
                    Ok(())
                }
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails") && msg.contains("expected"));
    }
}
