//! Columnar leaf storage: per-dimension dictionary encodings and the
//! branch-free containment-scan kernel.
//!
//! Leaves keep their items in structure-of-arrays form: one coordinate
//! [`Column`] per dimension plus a parallel measure column. At build and
//! split time each column independently chooses between a raw `Vec<u64>` and
//! a sorted dictionary with bit-packed codes (widths 1/2/4/8/16 so codes
//! never straddle a word); point mutations decay a column back to raw and the
//! next split re-encodes it wholesale, keeping the hot ingest path free of
//! per-insert dictionary maintenance.
//!
//! The containment test against a query box first compiles each dimension's
//! value range into a per-encoding predicate — for dictionary columns a range
//! of *codes*, which also proves emptiness (`Never`) or full coverage (`All`)
//! without touching any row. Surviving predicates then run dimension-major
//! over 256-row blocks of four 64-row lanes, combining range checks into
//! `u64` bitmasks with no data-dependent branches in the inner loop — the
//! shape LLVM autovectorizes — reading packed words directly so an encoded
//! column moves a fraction of the bytes. A block whose combined mask reaches
//! zero skips its remaining dimensions.

use volap_dims::{Aggregate, Item, QueryBox};
use volap_hilbert::BigIndex;

use crate::tree::Entry;

/// Packed code widths: powers of two, so a code never straddles a `u64`
/// word and a 64-row lane always starts on a word boundary.
const WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// Hard cardinality cap: beyond this, a column stays raw no matter what the
/// size heuristic says (dictionary binary searches stop paying for
/// themselves long before this).
const MAX_DICT: usize = 1 << 16;

/// Fixed-width bit-packed dictionary codes, little-endian within each word.
#[derive(Clone)]
pub struct PackedCodes {
    words: Vec<u64>,
    width: usize,
    len: usize,
}

impl PackedCodes {
    fn with_capacity(width: usize, n: usize) -> Self {
        debug_assert!(WIDTHS.contains(&width));
        Self { words: Vec::with_capacity((n * width).div_ceil(64)), width, len: 0 }
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let per = 64 / self.width;
        (self.words[i / per] >> ((i % per) * self.width)) & ((1u64 << self.width) - 1)
    }

    fn push(&mut self, code: u64) {
        debug_assert!(code < (1u64 << self.width));
        let per = 64 / self.width;
        if self.len.is_multiple_of(per) {
            self.words.push(0);
        }
        let last = self.words.last_mut().unwrap();
        *last |= code << ((self.len % per) * self.width);
        self.len += 1;
    }

    /// Containment mask for the 64-row lane starting at row `base` (which
    /// must be a multiple of 64): bit `k` set iff code `base + k` lies in
    /// `[clo, chi]`. Bits at and past `rows` are garbage the caller trims.
    #[inline]
    fn mask64(&self, base: usize, rows: usize, clo: u64, chi: u64) -> u64 {
        debug_assert_eq!(base % 64, 0);
        let start = base * self.width / 64;
        let nw = (rows * self.width).div_ceil(64);
        let ws = &self.words[start..start + nw];
        match self.width {
            1 => mask64_packed::<1>(ws, clo, chi),
            2 => mask64_packed::<2>(ws, clo, chi),
            4 => mask64_packed::<4>(ws, clo, chi),
            8 => mask64_packed::<8>(ws, clo, chi),
            16 => mask64_packed::<16>(ws, clo, chi),
            _ => unreachable!("width is always one of WIDTHS"),
        }
    }
}

/// Range-test up to 64 rows of `W`-bit codes (at most `W` words). The shifts
/// inside a word are independent of each other, so the loop vectorizes; the
/// final shift `wi * per + k` never reaches 64 because a 64-row window spans
/// at most `W` words of `64 / W` codes each.
#[inline]
fn mask64_packed<const W: usize>(words: &[u64], clo: u64, chi: u64) -> u64 {
    let per = 64 / W;
    let cmask: u64 = (1u64 << W) - 1;
    let mut m = 0u64;
    for (wi, &word) in words.iter().enumerate() {
        let mut lane = 0u64;
        for k in 0..per {
            let code = (word >> (k * W)) & cmask;
            lane |= (((code >= clo) as u64) & ((code <= chi) as u64)) << k;
        }
        m |= lane << (wi * per);
    }
    m
}

/// Range-test up to 64 raw coordinates.
#[inline]
fn mask64_raw(col: &[u64], lo: u64, hi: u64) -> u64 {
    let mut m = 0u64;
    for (i, &c) in col.iter().enumerate() {
        m |= (((c >= lo) as u64) & ((c <= hi) as u64)) << i;
    }
    m
}

/// One coordinate column: raw values, or a sorted dictionary of distinct
/// values plus one packed code (the value's rank) per row.
#[derive(Clone)]
pub enum Column {
    Raw(Vec<u64>),
    Dict { dict: Vec<u64>, codes: PackedCodes },
}

/// A per-dimension predicate compiled against the column's encoding.
enum Pred<'a> {
    /// Every row matches; the dimension drops out of the scan.
    All,
    /// No row can match; the whole leaf misses.
    Never,
    /// Compare raw coordinates against the value range.
    Raw { col: &'a [u64], lo: u64, hi: u64 },
    /// Compare packed codes against the dictionary-code range.
    Packed { codes: &'a PackedCodes, clo: u64, chi: u64 },
}

impl Column {
    fn new() -> Self {
        Column::Raw(Vec::new())
    }

    fn len(&self) -> usize {
        match self {
            Column::Raw(v) => v.len(),
            Column::Dict { codes, .. } => codes.len,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        match self {
            Column::Raw(v) => v[i],
            Column::Dict { dict, codes } => dict[codes.get(i) as usize],
        }
    }

    /// Mutable raw view, decoding a dictionary column first. Point mutations
    /// are the hot ingest path; they pay one O(rows) decode on the first
    /// touch of an encoded leaf and the next split re-encodes wholesale.
    fn make_raw(&mut self) -> &mut Vec<u64> {
        if let Column::Dict { dict, codes } = self {
            let decoded = (0..codes.len).map(|i| dict[codes.get(i) as usize]).collect();
            *self = Column::Raw(decoded);
        }
        match self {
            Column::Raw(v) => v,
            Column::Dict { .. } => unreachable!("decoded above"),
        }
    }

    fn push(&mut self, v: u64) {
        match self {
            Column::Raw(vals) => vals.push(v),
            Column::Dict { dict, codes } => {
                // Appending a value the dictionary already knows keeps the
                // encoding; anything else decays to raw.
                if let Ok(code) = dict.binary_search(&v) {
                    codes.push(code as u64);
                } else {
                    self.make_raw().push(v);
                }
            }
        }
    }

    fn insert(&mut self, pos: usize, v: u64) {
        self.make_raw().insert(pos, v);
    }

    fn splice_at(&mut self, pos: usize, vals: impl Iterator<Item = u64>) {
        let raw = self.make_raw();
        raw.splice(pos..pos, vals);
    }

    /// Re-choose this column's encoding from its current values: build the
    /// sorted distinct dictionary, pick the narrowest width that fits, and
    /// keep the encoding only when packed codes plus dictionary take at most
    /// half the raw footprint (and the cardinality is within [`MAX_DICT`]).
    /// Deterministic in the values alone, so a serialized shard re-encodes
    /// identically on the receiving worker.
    fn encode(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let mut dict: Vec<u64> = (0..n).map(|i| self.get(i)).collect();
        dict.sort_unstable();
        dict.dedup();
        let width = WIDTHS.into_iter().find(|&w| dict.len() <= 1usize << w);
        let worth = dict.len() <= MAX_DICT
            && width.is_some_and(|w| (n * w + dict.len() * 64) * 2 <= n * 64);
        if worth {
            let width = width.unwrap();
            let mut codes = PackedCodes::with_capacity(width, n);
            for i in 0..n {
                codes.push(dict.binary_search(&self.get(i)).unwrap() as u64);
            }
            *self = Column::Dict { dict, codes };
        } else if matches!(self, Column::Dict { .. }) {
            // A re-check after a split can decide a small half is no longer
            // worth its dictionary.
            self.make_raw();
        }
    }

    fn clone_range(&self, r: std::ops::Range<usize>) -> Self {
        match self {
            Column::Raw(v) => Column::Raw(v[r].to_vec()),
            Column::Dict { dict, codes } => {
                // Repack the code subrange against the same dictionary.
                // Entries absent from this half go stale — they cost bytes,
                // never correctness — and the encode pass that follows every
                // split rebuilds a tight dictionary.
                let mut sub = PackedCodes::with_capacity(codes.width, r.len());
                for i in r {
                    sub.push(codes.get(i));
                }
                Column::Dict { dict: dict.clone(), codes: sub }
            }
        }
    }

    /// Compile a value range into an encoding-aware predicate. For a
    /// dictionary column the range check becomes a rank check: `clo` is the
    /// rank of the first dict value `>= lo`, `chi` the rank of the last
    /// `<= hi`. An empty rank range proves no row matches; a full one proves
    /// every row does (stale dictionary entries only widen the rank range,
    /// so both proofs stay conservative and correct).
    fn pred(&self, lo: u64, hi: u64) -> Pred<'_> {
        match self {
            Column::Raw(v) => Pred::Raw { col: v, lo, hi },
            Column::Dict { dict, codes } => {
                let clo = dict.partition_point(|&d| d < lo);
                let chi = dict.partition_point(|&d| d <= hi);
                if clo == chi {
                    Pred::Never
                } else if clo == 0 && chi == dict.len() {
                    Pred::All
                } else {
                    Pred::Packed { codes, clo: clo as u64, chi: (chi - 1) as u64 }
                }
            }
        }
    }
}

/// Encoding footprint of a column set, accumulated over many leaves.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Coordinate columns observed.
    pub columns: u64,
    /// Columns currently dictionary-encoded.
    pub dict_columns: u64,
    /// Total dictionary entries across encoded columns.
    pub dict_entries: u64,
    /// Bytes the coordinate columns would occupy raw (8 per row per dim).
    pub plain_bytes: u64,
    /// Bytes they actually occupy (packed words plus dictionaries for
    /// encoded columns, raw vectors otherwise).
    pub stored_bytes: u64,
}

impl ColumnStats {
    pub fn merge(&mut self, o: &ColumnStats) {
        self.columns += o.columns;
        self.dict_columns += o.dict_columns;
        self.dict_entries += o.dict_entries;
        self.plain_bytes += o.plain_bytes;
        self.stored_bytes += o.stored_bytes;
    }

    /// Compression ratio `plain / stored` (1.0 when nothing is stored).
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.plain_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Mean stored bits per coordinate value (64.0 when raw everywhere).
    pub fn bits_per_value(&self) -> f64 {
        if self.plain_bytes == 0 {
            64.0
        } else {
            self.stored_bytes as f64 * 8.0 / (self.plain_bytes as f64 / 8.0)
        }
    }
}

/// Rows of a leaf node in column-major layout.
///
/// Invariant: every column (and `hkeys`) has the same length. Under a
/// Hilbert insert policy every row has `Some` hkey and rows are kept sorted
/// by it; under the geometric policy every hkey is `None`.
#[derive(Clone)]
pub struct LeafColumns {
    /// `cols[d].get(i)` is the coordinate of row `i` along dimension `d`.
    cols: Vec<Column>,
    /// `measures[i]` is the measure of row `i`.
    measures: Vec<f64>,
    /// Compact Hilbert key per row (`None` under the geometric policy).
    hkeys: Vec<Option<BigIndex>>,
}

impl LeafColumns {
    pub fn new(dims: usize) -> Self {
        Self {
            cols: (0..dims).map(|_| Column::new()).collect(),
            measures: Vec::new(),
            hkeys: Vec::new(),
        }
    }

    pub(crate) fn from_entries(dims: usize, entries: Vec<Entry>) -> Self {
        let mut out = Self::new(dims);
        out.measures.reserve(entries.len());
        out.hkeys.reserve(entries.len());
        for e in entries {
            out.push(e);
        }
        out
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Append a row from plain parts (the benchmark/test entry point; the
    /// tree inserts interchange `Entry` values instead).
    pub fn push_row(&mut self, coords: &[u64], measure: f64) {
        debug_assert_eq!(coords.len(), self.cols.len());
        for (col, &c) in self.cols.iter_mut().zip(coords.iter()) {
            col.push(c);
        }
        self.measures.push(measure);
        self.hkeys.push(None);
    }

    /// Append a row.
    pub(crate) fn push(&mut self, e: Entry) {
        debug_assert_eq!(e.coords.len(), self.cols.len());
        for (col, &c) in self.cols.iter_mut().zip(e.coords.iter()) {
            col.push(c);
        }
        self.measures.push(e.measure);
        self.hkeys.push(e.hkey);
    }

    /// Insert a row at `pos`, shifting later rows (leaves are small, so the
    /// per-column shift is cheap and keeps Hilbert order intact).
    pub(crate) fn insert(&mut self, pos: usize, e: Entry) {
        debug_assert_eq!(e.coords.len(), self.cols.len());
        for (col, &c) in self.cols.iter_mut().zip(e.coords.iter()) {
            col.insert(pos, c);
        }
        self.measures.insert(pos, e.measure);
        self.hkeys.insert(pos, e.hkey);
    }

    /// First index whose hkey is strictly greater than `h` (Hilbert insert
    /// position).
    pub(crate) fn hkey_partition_point(&self, h: &BigIndex) -> usize {
        self.hkeys.partition_point(|k| k.as_ref().is_some_and(|k| k <= h))
    }

    /// Insert a run of items pre-sorted by Hilbert key (`keyed` pairs each
    /// key with its index into `items`), equivalent to inserting them one by
    /// one. The search for each insert position resumes after the previous
    /// one, and keys falling between the same pair of existing rows are
    /// spliced into each column in one contiguous group instead of one
    /// element-shifting insert per row. Keys are moved out of `keyed`
    /// (batch-insert leaves never recompute them).
    ///
    /// Only meaningful under a Hilbert policy: every existing row must
    /// already carry a key.
    pub(crate) fn insert_run(&mut self, items: &[Item], keyed: &mut [(BigIndex, u32)]) {
        debug_assert!(keyed.windows(2).all(|w| w[0].0 <= w[1].0), "run must be sorted");
        debug_assert!(self.hkeys.iter().all(|k| k.is_some()), "run insert into keyless leaf");
        let mut pos = 0;
        let mut i = 0;
        while i < keyed.len() {
            let h = &keyed[i].0;
            pos += self.hkeys[pos..].partition_point(|k| k.as_ref().is_some_and(|k| k <= h));
            // Everything strictly below the existing row at `pos` lands in
            // this same gap (appending at the end takes the whole tail).
            let group_end = match self.hkeys.get(pos).and_then(|k| k.as_ref()) {
                None => keyed.len(),
                Some(ex) => {
                    let mut j = i + 1;
                    while j < keyed.len() && keyed[j].0 < *ex {
                        j += 1;
                    }
                    j
                }
            };
            let group = i..group_end;
            for (d, col) in self.cols.iter_mut().enumerate() {
                col.splice_at(pos, keyed[group.clone()].iter().map(|&(_, r)| items[r as usize].coords[d]));
            }
            self.measures
                .splice(pos..pos, keyed[group.clone()].iter().map(|&(_, r)| items[r as usize].measure));
            self.hkeys
                .splice(pos..pos, keyed[group.clone()].iter_mut().map(|(k, _)| Some(std::mem::take(k))));
            pos += group_end - i;
            i = group_end;
        }
    }

    pub(crate) fn hkey(&self, i: usize) -> Option<&BigIndex> {
        self.hkeys[i].as_ref()
    }

    /// Copy rows `r` into a fresh column set — the Hilbert split path, which
    /// duplicates each side with a handful of column memcpys (or code
    /// repacks) instead of one interchange [`Entry`] per row.
    pub(crate) fn clone_range(&self, r: std::ops::Range<usize>) -> Self {
        Self {
            cols: self.cols.iter().map(|c| c.clone_range(r.clone())).collect(),
            measures: self.measures[r.clone()].to_vec(),
            hkeys: self.hkeys[r.clone()].to_vec(),
        }
    }

    /// Re-choose every column's encoding from its current values. Called at
    /// build and split time; never on the per-insert path.
    pub fn encode(&mut self) {
        for col in &mut self.cols {
            col.encode();
        }
    }

    /// Accumulate this leaf's encoding footprint into `out`.
    pub fn column_stats(&self, out: &mut ColumnStats) {
        for col in &self.cols {
            let n = col.len() as u64;
            out.columns += 1;
            out.plain_bytes += 8 * n;
            match col {
                Column::Raw(_) => out.stored_bytes += 8 * n,
                Column::Dict { dict, codes } => {
                    out.dict_columns += 1;
                    out.dict_entries += dict.len() as u64;
                    out.stored_bytes += 8 * (codes.words.len() as u64 + dict.len() as u64);
                }
            }
        }
    }

    /// Overwrite `item` with row `i` (reusing its coordinate buffer).
    pub(crate) fn read_row_into(&self, i: usize, item: &mut Item) {
        debug_assert_eq!(item.coords.len(), self.cols.len());
        for (slot, col) in item.coords.iter_mut().zip(self.cols.iter()) {
            *slot = col.get(i);
        }
        item.measure = self.measures[i];
    }

    /// Rebuild row `i` as an interchange [`Entry`].
    pub(crate) fn entry(&self, i: usize) -> Entry {
        Entry {
            coords: self.cols.iter().map(|col| col.get(i)).collect(),
            measure: self.measures[i],
            hkey: self.hkeys[i].clone(),
        }
    }

    /// All rows as interchange entries (split path).
    pub(crate) fn to_entries(&self) -> Vec<Entry> {
        (0..self.len()).map(|i| self.entry(i)).collect()
    }

    pub(crate) fn item(&self, i: usize) -> Item {
        Item { coords: self.cols.iter().map(|col| col.get(i)).collect(), measure: self.measures[i] }
    }

    pub(crate) fn append_items(&self, out: &mut Vec<Item>) {
        out.extend((0..self.len()).map(|i| self.item(i)));
    }

    /// Aggregate every row contained in `q` into `agg`.
    ///
    /// Compiles one predicate per dimension first: a dimension that provably
    /// misses short-circuits the leaf, one that provably covers it drops out,
    /// and a leaf covered on every dimension aggregates the measure column
    /// straight. The survivors run over 256-row blocks of four 64-row lanes:
    /// each dimension ANDs its range-check bitmask into the lanes — reading
    /// packed words directly for encoded columns — and a block whose four
    /// lanes reach zero skips its remaining dimensions. Only rows surviving
    /// all dimensions touch the measure column.
    pub fn scan(&self, q: &QueryBox, agg: &mut Aggregate) {
        let n = self.len();
        debug_assert_eq!(q.ranges.len(), self.cols.len());
        if n == 0 {
            return;
        }
        let mut preds: Vec<Pred<'_>> = Vec::with_capacity(self.cols.len());
        for (col, &(lo, hi)) in self.cols.iter().zip(q.ranges.iter()) {
            match col.pred(lo, hi) {
                Pred::Never => return,
                Pred::All => {}
                p => preds.push(p),
            }
        }
        if preds.is_empty() {
            for &m in &self.measures {
                agg.add(m);
            }
            return;
        }
        let mut base = 0;
        while base < n {
            let block = (n - base).min(256);
            let nlanes = block.div_ceil(64);
            let mut lanes = [0u64; 4];
            for (l, lane) in lanes.iter_mut().enumerate().take(nlanes) {
                let rows = (block - l * 64).min(64);
                *lane = if rows == 64 { u64::MAX } else { (1u64 << rows) - 1 };
            }
            'dims: for p in &preds {
                let mut any = 0u64;
                for (l, lane) in lanes.iter_mut().enumerate().take(nlanes) {
                    if *lane == 0 {
                        continue;
                    }
                    let lbase = base + l * 64;
                    let rows = (n - lbase).min(64);
                    let m = match *p {
                        Pred::Raw { col, lo, hi } => mask64_raw(&col[lbase..lbase + rows], lo, hi),
                        Pred::Packed { codes, clo, chi } => codes.mask64(lbase, rows, clo, chi),
                        Pred::All | Pred::Never => unreachable!("filtered during compilation"),
                    };
                    *lane &= m;
                    any |= *lane;
                }
                if any == 0 {
                    break 'dims;
                }
            }
            for (l, &lane) in lanes.iter().enumerate().take(nlanes) {
                let mut mask = lane;
                let lbase = base + l * 64;
                while mask != 0 {
                    let i = mask.trailing_zeros() as usize;
                    agg.add(self.measures[lbase + i]);
                    mask &= mask - 1;
                }
            }
            base += block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(coords: &[u64], measure: f64) -> Entry {
        Entry { coords: coords.into(), measure, hkey: None }
    }

    fn brute(rows: &[(&[u64], f64)], q: &QueryBox) -> Aggregate {
        let mut agg = Aggregate::empty();
        for (coords, m) in rows {
            if coords.iter().zip(q.ranges.iter()).all(|(&c, &(lo, hi))| lo <= c && c <= hi) {
                agg.add(*m);
            }
        }
        agg
    }

    fn check_queries(leaf: &LeafColumns, rows: &[(Vec<u64>, f64)], queries: &[Vec<(u64, u64)>]) {
        for ranges in queries {
            let q = QueryBox::from_ranges(ranges.clone());
            let rows_ref: Vec<(&[u64], f64)> =
                rows.iter().map(|(c, m)| (c.as_slice(), *m)).collect();
            let expect = brute(&rows_ref, &q);
            let mut got = Aggregate::empty();
            leaf.scan(&q, &mut got);
            assert_eq!(got.count, expect.count, "ranges {ranges:?}");
            assert_eq!(got.sum, expect.sum);
            assert_eq!(got.min.to_bits(), expect.min.to_bits());
            assert_eq!(got.max.to_bits(), expect.max.to_bits());
        }
    }

    fn lcg_rows(n: u64, dims_mod: [u64; 2]) -> (LeafColumns, Vec<(Vec<u64>, f64)>) {
        let mut leaf = LeafColumns::new(2);
        let mut rows: Vec<(Vec<u64>, f64)> = Vec::new();
        let mut state = 99u64;
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let coords = vec![state % dims_mod[0], (state >> 20) % dims_mod[1]];
            rows.push((coords.clone(), i as f64));
            leaf.push(entry(&coords, i as f64));
        }
        (leaf, rows)
    }

    #[test]
    fn scan_matches_row_filter_across_chunk_boundaries() {
        // 150 rows forces a partial block (two full lanes + a 22-row tail).
        let (leaf, rows) = lcg_rows(150, [32, 32]);
        let queries = vec![
            vec![(0, 31), (0, 31)],
            vec![(5, 12), (0, 31)],
            vec![(0, 31), (30, 31)],
            vec![(8, 8), (8, 8)],
            vec![(31, 31), (0, 0)], // almost certainly empty result
        ];
        check_queries(&leaf, &rows, &queries);
    }

    #[test]
    fn encoded_scan_matches_raw_scan() {
        // 300 rows spans multiple blocks; dim 0 packs at width 8 (32
        // distinct values), dim 1 at width 4 (6 distinct).
        let (mut leaf, rows) = lcg_rows(300, [32, 6]);
        let queries = vec![
            vec![(0, 31), (0, 5)],   // all-rows-match on both dims
            vec![(0, 31), (2, 4)],   // dim 0 AllMatch, dim 1 packed
            vec![(5, 12), (0, 5)],
            vec![(8, 8), (3, 3)],
            vec![(40, 50), (0, 5)],  // outside dim 0's domain: Never
            vec![(31, 31), (0, 0)],
            vec![(0, 0), (5, 5)],    // dictionary boundary: exact min/max hits
        ];
        check_queries(&leaf, &rows, &queries);
        leaf.encode();
        let mut st = ColumnStats::default();
        leaf.column_stats(&mut st);
        assert_eq!(st.dict_columns, 2, "both low-cardinality columns encode");
        assert!(st.stored_bytes * 2 <= st.plain_bytes, "heuristic guarantees 2x");
        check_queries(&leaf, &rows, &queries);
    }

    #[test]
    fn mutation_decays_encoding_and_stays_correct() {
        let (mut leaf, mut rows) = lcg_rows(100, [8, 8]);
        leaf.encode();
        // Push a known value: the dictionary absorbs it without decaying.
        leaf.push(entry(&rows[0].0.clone(), 123.0));
        rows.push((rows[0].0.clone(), 123.0));
        let mut st = ColumnStats::default();
        leaf.column_stats(&mut st);
        assert_eq!(st.dict_columns, 2, "known values append to the dictionary");
        // Push a brand-new value: the column decays to raw.
        leaf.push(entry(&[63, 63], 7.0));
        rows.push((vec![63, 63], 7.0));
        st = ColumnStats::default();
        leaf.column_stats(&mut st);
        assert_eq!(st.dict_columns, 0, "unknown values decay the encoding");
        check_queries(&leaf, &rows, &[vec![(0, 63), (0, 63)], vec![(2, 6), (0, 63)]]);
    }

    #[test]
    fn clone_range_preserves_encoding() {
        let (mut leaf, rows) = lcg_rows(128, [4, 4]);
        leaf.encode();
        let half = leaf.clone_range(0..64);
        let mut st = ColumnStats::default();
        half.column_stats(&mut st);
        assert_eq!(st.dict_columns, 2, "split halves keep their packed codes");
        let half_rows: Vec<(Vec<u64>, f64)> = rows[..64].to_vec();
        check_queries(&half, &half_rows, &[vec![(0, 3), (1, 2)], vec![(2, 2), (0, 3)]]);
    }

    #[test]
    fn high_cardinality_stays_raw() {
        let mut leaf = LeafColumns::new(1);
        for i in 0..200u64 {
            // All-distinct values: a dictionary would be as large as the data.
            leaf.push(entry(&[i * 1_000_003], i as f64));
        }
        leaf.encode();
        let mut st = ColumnStats::default();
        leaf.column_stats(&mut st);
        assert_eq!(st.dict_columns, 0);
        assert_eq!(st.plain_bytes, st.stored_bytes);
    }

    #[test]
    fn roundtrip_entries() {
        let entries: Vec<Entry> =
            (0..10).map(|i| entry(&[i, i * 2, 63 - i], i as f64 * 0.5)).collect();
        let leaf = LeafColumns::from_entries(3, entries.clone());
        assert_eq!(leaf.len(), 10);
        let back = leaf.to_entries();
        for (a, b) in entries.iter().zip(&back) {
            assert_eq!(a.coords, b.coords);
            assert_eq!(a.measure, b.measure);
        }
        assert_eq!(leaf.item(3).coords.as_ref(), &[3, 6, 60]);
    }
}
