//! Compact Hilbert indices for domains with unequal side lengths.
//!
//! This crate implements the machinery behind the *Hilbert PDC tree* of the
//! VOLAP paper (Dehne et al., CLUSTER 2016): the compact Hilbert index of
//! Hamilton & Rau-Chaplin ("Compact Hilbert indices: Space-filling curves for
//! domains with unequal side lengths", Information Processing Letters 105(5),
//! 2008).
//!
//! A point in an `n`-dimensional grid where dimension `j` has side length
//! `2^{m_j}` is mapped to an index of exactly `M = Σ m_j` bits, preserving the
//! visit order of the ordinary Hilbert curve on the enclosing hypercube of
//! side `2^{max m_j}`. Compactness matters to VOLAP because every tree node
//! stores its maximum Hilbert value; with hierarchical TPC-DS IDs the
//! enclosing-cube index would waste several words per node.
//!
//! The crate provides:
//!
//! * [`gray`] — Gray-code primitives (code, inverse, entry/direction tables,
//!   Gray-code ranking) used by the curve construction.
//! * [`BigIndex`] — an ordered, heap-compact big-endian bit string used to
//!   hold indices wider than 64 bits (TPC-DS needs ~130 bits; the paper's
//!   64-dimension sweep needs several hundred).
//! * [`HilbertCurve`] — a reusable curve descriptor for a fixed list of
//!   per-dimension bit widths, with [`HilbertCurve::index`] (point → compact
//!   index) and [`HilbertCurve::point`] (compact index → point).
//!
//! # Example
//!
//! ```
//! use volap_hilbert::HilbertCurve;
//!
//! // Three dimensions with side lengths 2^4, 2^2 and 2^7.
//! let curve = HilbertCurve::new(&[4, 2, 7]);
//! assert_eq!(curve.total_bits(), 13);
//! let h = curve.index(&[3, 1, 100]);
//! assert_eq!(curve.point(&h), vec![3, 1, 100]);
//! ```

pub mod bigindex;
pub mod gray;

pub use bigindex::BigIndex;

use gray::{direction, entry, gray_code, gray_code_inverse, gray_rank, gray_rank_inverse};

/// A reusable Hilbert-curve descriptor for a fixed set of per-dimension bit
/// widths.
///
/// Construction pre-computes the per-iteration *extract masks* (which
/// dimensions still contribute bits at a given precision level), so that
/// computing indices in a hot loop touches no allocations besides the output
/// [`BigIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HilbertCurve {
    /// Bits per dimension (`m_j`). Dimension count `n == bits.len()`.
    bits: Vec<u32>,
    /// `max(m_j)`: the number of curve iterations.
    max_bits: u32,
    /// `Σ m_j`: the exact bit width of every produced index.
    total_bits: u32,
    /// `masks[i]` has bit `j` set iff dimension `j` is active at iteration
    /// for bit position `i` (i.e. `m_j > i`). Indexed by bit position,
    /// **not** by iteration order.
    masks: Vec<u64>,
}

impl HilbertCurve {
    /// Create a curve for dimensions with the given bit widths.
    ///
    /// # Panics
    ///
    /// Panics if there are no dimensions, more than 64 dimensions, or any
    /// width is 0 or exceeds 64 (the per-dimension coordinate type is `u64`).
    pub fn new(bits: &[u32]) -> Self {
        let n = bits.len();
        assert!(n >= 1, "HilbertCurve requires at least one dimension");
        assert!(n <= 64, "HilbertCurve supports at most 64 dimensions");
        for (j, &b) in bits.iter().enumerate() {
            assert!(
                (1..=64).contains(&b),
                "dimension {j} has invalid bit width {b} (must be 1..=64)"
            );
        }
        let max_bits = bits.iter().copied().max().unwrap();
        let total_bits: u32 = bits.iter().sum();
        let masks = (0..max_bits)
            .map(|i| {
                bits.iter().enumerate().fold(0u64, |m, (j, &b)| {
                    if b > i {
                        m | (1u64 << j)
                    } else {
                        m
                    }
                })
            })
            .collect();
        Self {
            bits: bits.to_vec(),
            max_bits,
            total_bits,
            masks,
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.bits.len()
    }

    /// Per-dimension bit widths.
    #[inline]
    pub fn bit_widths(&self) -> &[u32] {
        &self.bits
    }

    /// Exact bit width of every index produced by [`Self::index`].
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Compute the compact Hilbert index of `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dims()` or any coordinate exceeds its
    /// dimension's side length.
    pub fn index(&self, point: &[u64]) -> BigIndex {
        let mut h = BigIndex::with_bit_capacity(self.total_bits);
        self.index_into(point, &mut h);
        h
    }

    /// Compute the compact Hilbert index of `point` into `out`, reusing its
    /// storage. `out` is cleared first; on return it holds exactly
    /// [`Self::total_bits`] bits. This is the allocation-free entry point for
    /// batch key computation (the caller keeps one scratch `BigIndex` per
    /// batch).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::index`].
    pub fn index_into(&self, point: &[u64], out: &mut BigIndex) {
        assert_eq!(point.len(), self.dims(), "point dimensionality mismatch");
        for (j, (&p, &b)) in point.iter().zip(&self.bits).enumerate() {
            assert!(
                b == 64 || p < (1u64 << b),
                "coordinate {p} out of range for dimension {j} ({b} bits)"
            );
        }
        let n = self.dims() as u32;
        let h = out;
        h.clear();
        // Orientation state of the current sub-hypercube: entry point `e` and
        // intra-cube direction `d`, per Hamilton's formulation.
        let mut e: u64 = 0;
        let mut d: u32 = if n >= 2 { 1 } else { 0 };
        for i in (0..self.max_bits).rev() {
            let mu = rotr(self.masks[i as usize], d, n);
            // Gather bit `i` of every coordinate into an n-bit word.
            let mut l: u64 = 0;
            for (j, &p) in point.iter().enumerate() {
                if self.bits[j] > i {
                    l |= ((p >> i) & 1) << j;
                }
            }
            // Transform into the local frame: T_{(e,d)}(l) = rotr(l ^ e, d).
            let t = rotr(l ^ e, d, n);
            let w = gray_code_inverse(t);
            let r = gray_rank(mu, w, n);
            h.push_bits(r, mu.count_ones());
            e ^= rotl(entry(w), d, n);
            d = (d + direction(w, n) + 1) % n;
        }
        debug_assert_eq!(h.bit_len(), self.total_bits);
    }

    /// Invert a compact Hilbert index back into its point.
    ///
    /// # Panics
    ///
    /// Panics if `h` does not have exactly [`Self::total_bits`] bits.
    pub fn point(&self, h: &BigIndex) -> Vec<u64> {
        assert_eq!(
            h.bit_len(),
            self.total_bits,
            "index bit width does not match curve"
        );
        let n = self.dims() as u32;
        let mut p = vec![0u64; self.dims()];
        let mut e: u64 = 0;
        let mut d: u32 = if n >= 2 { 1 } else { 0 };
        let mut cursor = 0u32;
        for i in (0..self.max_bits).rev() {
            let mu = rotr(self.masks[i as usize], d, n);
            let free = mu.count_ones();
            let pi = rotr(e, d, n) & !mu & mask_n(n);
            let r = h.extract_bits(cursor, free);
            cursor += free;
            let w = gray_rank_inverse(mu, pi, r, n);
            let l = rotl(gray_code(w), d, n) ^ e;
            for (j, pj) in p.iter_mut().enumerate() {
                if self.bits[j] > i {
                    *pj |= ((l >> j) & 1) << i;
                }
            }
            e ^= rotl(entry(w), d, n);
            d = (d + direction(w, n) + 1) % n;
        }
        p
    }

    /// Compute the ordinary (non-compact) Hilbert index on the enclosing
    /// hypercube of side `2^{max m_j}`, as a [`BigIndex`] of
    /// `n * max_bits` bits.
    ///
    /// Exposed for testing and benchmarking: the compact index must order
    /// points identically to this one.
    pub fn enclosing_index(&self, point: &[u64]) -> BigIndex {
        assert_eq!(point.len(), self.dims(), "point dimensionality mismatch");
        let n = self.dims() as u32;
        let mut h = BigIndex::with_bit_capacity(n * self.max_bits);
        let mut e: u64 = 0;
        let mut d: u32 = if n >= 2 { 1 } else { 0 };
        for i in (0..self.max_bits).rev() {
            let mut l: u64 = 0;
            for (j, &p) in point.iter().enumerate() {
                l |= ((p >> i) & 1) << j;
            }
            let t = rotr(l ^ e, d, n);
            let w = gray_code_inverse(t);
            h.push_bits(w, n);
            e ^= rotl(entry(w), d, n);
            d = (d + direction(w, n) + 1) % n;
        }
        h
    }
}

/// Mask of the low `n` bits (`n <= 64`).
#[inline]
fn mask_n(n: u32) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Rotate the low `n` bits of `x` right by `r` (`r < n`).
#[inline]
fn rotr(x: u64, r: u32, n: u32) -> u64 {
    let x = x & mask_n(n);
    if r == 0 {
        return x;
    }
    ((x >> r) | (x << (n - r))) & mask_n(n)
}

/// Rotate the low `n` bits of `x` left by `r` (`r < n`).
#[inline]
fn rotl(x: u64, r: u32, n: u32) -> u64 {
    if r == 0 {
        return x & mask_n(n);
    }
    rotr(x, n - r, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Enumerate every point of the (bits) grid.
    fn all_points(bits: &[u32]) -> Vec<Vec<u64>> {
        let mut pts: Vec<Vec<u64>> = vec![vec![]];
        for &b in bits {
            let side = 1u64 << b;
            pts = pts
                .into_iter()
                .flat_map(|p| {
                    (0..side).map(move |v| {
                        let mut q = p.clone();
                        q.push(v);
                        q
                    })
                })
                .collect();
        }
        pts
    }

    fn check_bijection(bits: &[u32]) {
        let curve = HilbertCurve::new(bits);
        let total = 1u64 << curve.total_bits();
        let mut seen = BTreeSet::new();
        for p in all_points(bits) {
            let h = curve.index(&p);
            let v = h.extract_bits(0, curve.total_bits());
            assert!(seen.insert(v), "duplicate index {v} for point {p:?}");
            assert_eq!(curve.point(&h), p, "round-trip failed for {p:?}");
        }
        assert_eq!(seen.len() as u64, total);
        assert_eq!(*seen.iter().next().unwrap(), 0);
        assert_eq!(*seen.iter().next_back().unwrap(), total - 1);
    }

    #[test]
    fn bijective_equal_sides() {
        check_bijection(&[3, 3]);
        check_bijection(&[2, 2, 2]);
        check_bijection(&[2, 2, 2, 2]);
    }

    #[test]
    fn bijective_unequal_sides() {
        check_bijection(&[4, 2]);
        check_bijection(&[1, 5]);
        check_bijection(&[3, 1, 2]);
        check_bijection(&[1, 1, 4, 2]);
        check_bijection(&[5, 1]);
    }

    #[test]
    fn bijective_one_dimension() {
        check_bijection(&[6]);
        // In one dimension the Hilbert index is the identity.
        let curve = HilbertCurve::new(&[6]);
        for v in 0..64u64 {
            assert_eq!(curve.index(&[v]).extract_bits(0, 6), v);
        }
    }

    /// The defining locality property of a Hilbert curve: on an
    /// equal-side-length grid, consecutive indices are adjacent cells.
    #[test]
    fn adjacency_equal_sides() {
        for bits in [&[3u32, 3][..], &[2, 2, 2][..], &[1, 1, 1, 1][..]] {
            let curve = HilbertCurve::new(bits);
            let total = 1u64 << curve.total_bits();
            let mut cells = vec![vec![]; total as usize];
            for p in all_points(bits) {
                let h = curve.index(&p).extract_bits(0, curve.total_bits());
                cells[h as usize] = p;
            }
            for w in cells.windows(2) {
                let dist: u64 = w[0]
                    .iter()
                    .zip(&w[1])
                    .map(|(a, b)| a.abs_diff(*b))
                    .sum();
                assert_eq!(
                    dist, 1,
                    "cells {:?} and {:?} are consecutive on the curve but not adjacent",
                    w[0], w[1]
                );
            }
        }
    }

    /// Compactness correctness (Hamilton & Rau-Chaplin Thm. 1): the compact
    /// index orders points exactly as the ordinary Hilbert index on the
    /// enclosing hypercube does.
    #[test]
    fn compact_preserves_enclosing_order() {
        for bits in [&[4u32, 2][..], &[1, 5][..], &[3, 1, 2][..], &[2, 4, 1][..]] {
            let curve = HilbertCurve::new(bits);
            let mut pts = all_points(bits);
            let mut by_compact = pts.clone();
            by_compact.sort_by_key(|p| curve.index(p));
            pts.sort_by_key(|p| curve.enclosing_index(p));
            assert_eq!(by_compact, pts, "order mismatch for bits {bits:?}");
        }
    }

    #[test]
    fn wide_indices_are_stable() {
        // 20 dimensions x 7 bits = 140-bit indices: exercises multi-limb
        // BigIndex arithmetic.
        let bits = vec![7u32; 20];
        let curve = HilbertCurve::new(&bits);
        assert_eq!(curve.total_bits(), 140);
        let p: Vec<u64> = (0..20).map(|j| (j * 13 % 128) as u64).collect();
        let h = curve.index(&p);
        assert_eq!(h.bit_len(), 140);
        assert_eq!(curve.point(&h), p);
    }

    #[test]
    fn index_into_reuses_scratch() {
        let curve = HilbertCurve::new(&[4, 2, 7]);
        let mut scratch = BigIndex::new();
        for p in [[3u64, 1, 100], [0, 0, 0], [15, 3, 127], [8, 2, 64]] {
            curve.index_into(&p, &mut scratch);
            assert_eq!(scratch, curve.index(&p));
        }
        // Wide curve: scratch spills once, then stays reusable.
        let bits = vec![7u32; 20];
        let wide = HilbertCurve::new(&bits);
        let mut scratch = BigIndex::new();
        for s in 0..4u64 {
            let p: Vec<u64> = (0..20).map(|j| (j * 13 + s) % 128).collect();
            wide.index_into(&p, &mut scratch);
            assert_eq!(scratch, wide.index(&p));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_coordinates() {
        HilbertCurve::new(&[2, 2]).index(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_arity() {
        HilbertCurve::new(&[2, 2]).index(&[1]);
    }
}
