//! A coherent point-in-time view of everything the observability core
//! knows: metrics, recent events, measured staleness, the metrics
//! time-series ring, and SLO health.

use crate::account::{AccountingSnapshot, COST_DIM_NAMES};
use crate::audit::BalanceDecision;
use crate::events::Event;
use crate::health::ComponentHealth;
use crate::heat::HeatEntry;
use crate::history::HistorySnapshot;
use crate::lock::LockClassSnapshot;
use crate::registry::{HistogramSnapshot, MetricId, ScalarSnapshot};
use crate::staleness::StalenessSnapshot;

/// One full observability snapshot. `PartialEq` + the exporter parsers in
/// [`crate::export`] give exact round-trip tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Wall-clock capture time, µs since the Unix epoch.
    pub captured_unix_us: u64,
    /// Monotonic cluster uptime at capture, µs since the obs core was built.
    pub uptime_us: u64,
    /// All counters, sorted by id.
    pub counters: Vec<ScalarSnapshot<u64>>,
    /// All gauges, sorted by id.
    pub gauges: Vec<ScalarSnapshot<i64>>,
    /// All histograms, sorted by id (cumulative finite buckets).
    pub histograms: Vec<HistogramSnapshot>,
    /// Recent events in global sequence order.
    pub events: Vec<Event>,
    /// Per-shard heat, ordered by shard id.
    pub heat: Vec<HeatEntry>,
    /// Recent load-balance decisions in global sequence order.
    pub audit: Vec<BalanceDecision>,
    /// Per-class lock contention summaries, ordered by rank then name (the
    /// full wait/hold distributions are in `histograms` as
    /// `volap_lock_{wait,hold}_seconds{class=..}`).
    pub locks: Vec<LockClassSnapshot>,
    /// Measured image-staleness samples.
    pub staleness: StalenessSnapshot,
    /// The metrics time-series ring (empty unless the sampler ran).
    pub history: HistorySnapshot,
    /// Per-rule SLO health, sorted by component then rule.
    pub health: Vec<ComponentHealth>,
    /// Per-principal workload accounting: exact totals plus the decayed
    /// per-dimension top-K tables.
    pub accounting: AccountingSnapshot,
}

impl Snapshot {
    /// This snapshot with events, heat, audit, staleness, history frames,
    /// structured health, and the structured accounting section stripped —
    /// the subset the Prometheus text exposition can represent. Capture
    /// time, uptime, history ring totals, per-component health states, and
    /// the exact per-principal accounting totals are *folded in* as
    /// synthetic metrics (`volap_captured_unix_microseconds`,
    /// `volap_uptime_microseconds`, `volap_history_frames`,
    /// `volap_history_dropped_total`, a `volap_health_state` gauge holding
    /// the worst rule state per component, and
    /// `volap_accounting_{requests,<dim>}_total{principal=..}` counters),
    /// so the exposition still carries the headline telemetry. Folding is
    /// idempotent: re-folding an already-folded snapshot (the exporter
    /// round-trip) changes nothing.
    pub fn metrics_only(&self) -> Snapshot {
        let mut counters = self.counters.clone();
        let mut gauges = self.gauges.clone();
        let already = |gs: &[ScalarSnapshot<i64>], name: &str| gs.iter().any(|g| g.id.name == name);
        if !already(&gauges, "volap_captured_unix_microseconds") {
            gauges.push(ScalarSnapshot {
                id: MetricId::plain("volap_captured_unix_microseconds"),
                value: self.captured_unix_us as i64,
            });
            gauges.push(ScalarSnapshot {
                id: MetricId::plain("volap_uptime_microseconds"),
                value: self.uptime_us as i64,
            });
            gauges.push(ScalarSnapshot {
                id: MetricId::plain("volap_history_frames"),
                value: self.history.frames.len() as i64,
            });
            counters.push(ScalarSnapshot {
                id: MetricId::plain("volap_history_dropped_total"),
                value: self.history.dropped,
            });
            for h in &self.health {
                let id = MetricId::labeled("volap_health_state", "component", &h.component);
                match gauges.iter_mut().find(|g| g.id == id) {
                    Some(g) => g.value = g.value.max(h.state.score()),
                    None => gauges.push(ScalarSnapshot { id, value: h.state.score() }),
                }
            }
            for p in &self.accounting.principals {
                counters.push(ScalarSnapshot {
                    id: MetricId::labeled(
                        "volap_accounting_requests_total",
                        "principal",
                        &p.principal,
                    ),
                    value: p.requests,
                });
                for (dim, value) in COST_DIM_NAMES.iter().zip(p.cost.as_array()) {
                    counters.push(ScalarSnapshot {
                        id: MetricId::labeled(
                            format!("volap_accounting_{dim}_total"),
                            "principal",
                            &p.principal,
                        ),
                        value,
                    });
                }
            }
            counters.sort_by(|a, b| a.id.cmp(&b.id));
            gauges.sort_by(|a, b| a.id.cmp(&b.id));
        }
        Snapshot {
            captured_unix_us: 0,
            uptime_us: 0,
            counters,
            gauges,
            histograms: self.histograms.clone(),
            events: Vec::new(),
            heat: Vec::new(),
            audit: Vec::new(),
            locks: Vec::new(),
            staleness: StalenessSnapshot::default(),
            history: HistorySnapshot::default(),
            health: Vec::new(),
            accounting: AccountingSnapshot::default(),
        }
    }

    /// Sum of all counters with this name, across labels.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.id.name == name).map(|c| c.value).sum()
    }

    /// Sum of all gauges with this name, across labels.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().filter(|g| g.id.name == name).map(|g| g.value).sum()
    }

    /// The first histogram with this name (unlabeled histograms are unique).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.id.name == name)
    }

    /// Events of one kind.
    pub fn events_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The lock-class summary with this name.
    pub fn lock_class(&self, name: &str) -> Option<&LockClassSnapshot> {
        self.locks.iter().find(|l| l.class == name)
    }

    /// The health entry for one component's rule.
    pub fn health_of(&self, component: &str, rule: &str) -> Option<&ComponentHealth> {
        self.health.iter().find(|h| h.component == component && h.rule == rule)
    }
}
