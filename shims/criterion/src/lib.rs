//! Offline shim for the `criterion` crate.
//!
//! A minimal benchmark harness exposing the API surface the workspace's
//! `harness = false` bench targets use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Throughput`], [`BenchmarkId`], [`Bencher::iter`] and [`black_box`].
//!
//! Instead of criterion's statistical machinery it runs an adaptive
//! calibration pass followed by a fixed number of timed samples and prints
//! mean / best per-iteration time (plus throughput when declared). Per-bench
//! time budget defaults to ~300 ms; tune with `VOLAP_BENCH_MS`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("VOLAP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms.max(10))
}

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        let name = function_name.into();
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// Timing driver passed to bench closures.
pub struct Bencher {
    samples: usize,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, first calibrating how many iterations fit the per-bench
    /// budget, then taking `samples` timed runs.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let budget = budget();
        // Calibration: run until we have a per-iter estimate or spend 1/4 of
        // the budget.
        let calib_deadline = Instant::now() + budget / 4;
        let mut calib_iters = 0u64;
        let calib_start = Instant::now();
        loop {
            black_box(f());
            calib_iters += 1;
            if Instant::now() >= calib_deadline {
                break;
            }
        }
        let per_iter = calib_start.elapsed() / (calib_iters as u32).max(1);

        let samples = self.samples.max(2);
        let sample_budget = (budget * 3 / 4) / samples as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64
        };

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            let per = elapsed / iters_per_sample as u32;
            best = best.min(per);
            total += elapsed;
        }
        self.result = Some(Sample {
            mean: total / (samples as u64 * iters_per_sample).max(1) as u32,
            best,
            iters: samples as u64 * iters_per_sample,
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, sample: Option<Sample>) {
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match sample {
        Some(s) => {
            let rate = throughput
                .map(|t| {
                    let (n, unit) = match t {
                        Throughput::Elements(n) => (n, "elem"),
                        Throughput::Bytes(n) => (n, "B"),
                    };
                    let per_sec = n as f64 / s.mean.as_secs_f64();
                    format!("  {per_sec:.0} {unit}/s")
                })
                .unwrap_or_default();
            println!(
                "bench {full:<40} mean {:>12}  best {:>12}  ({} iters){rate}",
                fmt_duration(s.mean),
                fmt_duration(s.best),
                s.iters
            );
        }
        None => println!("bench {full:<40} (no measurement recorded)"),
    }
}

/// Group of related benchmarks sharing throughput / sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        report(&self.name, &id.id, self.throughput, b.result);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        report(&self.name, &id.id, self.throughput, b.result);
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: 20,
            result: None,
        };
        f(&mut b);
        report("", &id.id, None, b.result);
        self
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for `harness = false` bench targets; ignores CLI arguments
/// (filters, `--bench`, ...) that cargo or users may pass.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow harness CLI args (e.g. `--bench`) for compatibility.
            let _ = std::env::args().count();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("VOLAP_BENCH_MS", "20");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("dims", 8).id, "dims/8");
        assert_eq!(BenchmarkId::from_parameter("array").id, "array");
    }
}
