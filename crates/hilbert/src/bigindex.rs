//! A compact big-endian bit string used as a wide integer key.
//!
//! Hilbert indices in VOLAP routinely exceed 64 bits (TPC-DS with expanded
//! hierarchical IDs needs ~130 bits; the paper's 64-dimension experiment
//! needs several hundred), but never exceed a few machine words. `BigIndex`
//! stores the bits most-significant-first in `u64` limbs so that, for keys of
//! equal bit width, lexicographic limb comparison equals numeric comparison.
//!
//! Storage is inline for up to [`INLINE_LIMBS`] limbs (256 bits — every
//! realistic schema, including TPC-DS at ~130 bits), so the ingest hot path
//! computes keys without touching the heap; wider indices spill to a `Vec`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Limbs stored inline before spilling to the heap.
pub const INLINE_LIMBS: usize = 4;

/// Limb storage: a fixed inline buffer for the common case, a heap vector
/// beyond it. All accessors go through `as_slice`, so the two layouts are
/// indistinguishable to the rest of the crate.
#[derive(Clone)]
enum Limbs {
    Inline { buf: [u64; INLINE_LIMBS], len: u8 },
    Heap(Vec<u64>),
}

impl Limbs {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            Limbs::Inline { buf, len } => &buf[..*len as usize],
            Limbs::Heap(v) => v,
        }
    }

    #[inline]
    fn push(&mut self, limb: u64) {
        match self {
            Limbs::Inline { buf, len } => {
                if (*len as usize) < INLINE_LIMBS {
                    buf[*len as usize] = limb;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_LIMBS * 2);
                    v.extend_from_slice(buf);
                    v.push(limb);
                    *self = Limbs::Heap(v);
                }
            }
            Limbs::Heap(v) => v.push(limb),
        }
    }

    #[inline]
    fn last_mut(&mut self) -> Option<&mut u64> {
        match self {
            Limbs::Inline { buf, len } => {
                if *len == 0 {
                    None
                } else {
                    Some(&mut buf[*len as usize - 1])
                }
            }
            Limbs::Heap(v) => v.last_mut(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        self.as_slice()[i]
    }
}

impl Default for Limbs {
    fn default() -> Self {
        Limbs::Inline { buf: [0; INLINE_LIMBS], len: 0 }
    }
}

/// A fixed-width unsigned integer built by appending bit groups
/// most-significant-first.
///
/// Ordering: shorter bit widths compare *less* than longer ones; equal widths
/// compare numerically. Within one VOLAP tree every key has the same width,
/// so ordering is purely numeric there.
#[derive(Clone, Default)]
pub struct BigIndex {
    limbs: Limbs,
    bit_len: u32,
}

impl BigIndex {
    /// An empty (0-bit) index.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index with capacity reserved for `bits` total bits. Widths
    /// up to `64 * INLINE_LIMBS` use the inline buffer and never allocate.
    pub fn with_bit_capacity(bits: u32) -> Self {
        let limb_count = bits.div_ceil(64) as usize;
        if limb_count <= INLINE_LIMBS {
            Self::new()
        } else {
            Self { limbs: Limbs::Heap(Vec::with_capacity(limb_count)), bit_len: 0 }
        }
    }

    /// The zero value of width `bits`.
    pub fn zero(bits: u32) -> Self {
        let limb_count = bits.div_ceil(64) as usize;
        let limbs = if limb_count <= INLINE_LIMBS {
            Limbs::Inline { buf: [0; INLINE_LIMBS], len: limb_count as u8 }
        } else {
            Limbs::Heap(vec![0; limb_count])
        };
        Self { limbs, bit_len: bits }
    }

    /// The all-ones (maximum) value of width `bits`.
    pub fn max_value(bits: u32) -> Self {
        let mut v = Self::with_bit_capacity(bits);
        let mut remaining = bits;
        while remaining > 0 {
            let take = remaining.min(64);
            v.push_bits(if take == 64 { u64::MAX } else { (1u64 << take) - 1 }, take);
            remaining -= take;
        }
        v
    }

    /// Total number of bits appended so far.
    #[inline]
    pub fn bit_len(&self) -> u32 {
        self.bit_len
    }

    /// Heap bytes used by the limb storage (for the paper's space-overhead
    /// accounting). Zero while the index fits the inline buffer.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.limbs {
            Limbs::Inline { .. } => 0,
            Limbs::Heap(v) => v.capacity() * 8,
        }
    }

    /// Reset to the empty (0-bit) index, keeping any heap capacity. Lets a
    /// caller reuse one `BigIndex` as a scratch output across a batch.
    #[inline]
    pub fn clear(&mut self) {
        match &mut self.limbs {
            Limbs::Inline { len, .. } => *len = 0,
            Limbs::Heap(v) => v.clear(),
        }
        self.bit_len = 0;
    }

    /// Append the low `nbits` bits of `value` below the current bits
    /// (i.e. the first `push_bits` call contributes the most significant
    /// bits).
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 64` or `value` has bits above `nbits`.
    pub fn push_bits(&mut self, value: u64, nbits: u32) {
        assert!(nbits <= 64, "cannot push more than 64 bits at once");
        if nbits == 0 {
            return;
        }
        debug_assert!(
            nbits == 64 || value < (1u64 << nbits),
            "value {value} wider than {nbits} bits"
        );
        let used = self.bit_len % 64;
        let free = if used == 0 { 0 } else { 64 - used };
        if free == 0 {
            // Start a new limb, value left-aligned.
            self.limbs.push(if nbits == 64 { value } else { value << (64 - nbits) });
        } else if nbits <= free {
            let limb = self.limbs.last_mut().expect("non-empty when bits used");
            *limb |= value << (free - nbits);
        } else {
            let hi = nbits - free; // bits that overflow into the next limb
            let limb = self.limbs.last_mut().expect("non-empty when bits used");
            *limb |= value >> hi;
            self.limbs.push(value << (64 - hi));
        }
        self.bit_len += nbits;
    }

    /// Extract `nbits` bits starting at bit offset `start` (offset 0 is the
    /// most significant bit), returned right-aligned in a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the stored width or `nbits > 64`.
    pub fn extract_bits(&self, start: u32, nbits: u32) -> u64 {
        assert!(nbits <= 64, "cannot extract more than 64 bits at once");
        assert!(
            start + nbits <= self.bit_len,
            "bit range {start}..{} exceeds width {}",
            start + nbits,
            self.bit_len
        );
        if nbits == 0 {
            return 0;
        }
        let limb_idx = (start / 64) as usize;
        let offset = start % 64;
        let avail = 64 - offset;
        if nbits <= avail {
            let shifted = self.limbs.get(limb_idx) << offset;
            shifted >> (64 - nbits)
        } else {
            let hi_bits = avail;
            let lo_bits = nbits - avail;
            let hi = (self.limbs.get(limb_idx) << offset) >> (64 - hi_bits);
            let lo = self.limbs.get(limb_idx + 1) >> (64 - lo_bits);
            (hi << lo_bits) | lo
        }
    }

    /// Raw limbs, most significant first. The final limb is left-aligned.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        self.limbs.as_slice()
    }

    /// Rebuild from raw parts (used by shard deserialization). Limb counts
    /// within [`INLINE_LIMBS`] are copied into the inline buffer.
    pub fn from_raw(limbs: Vec<u64>, bit_len: u32) -> Self {
        assert_eq!(limbs.len(), bit_len.div_ceil(64) as usize, "limb count mismatch");
        if !bit_len.is_multiple_of(64) {
            if let Some(last) = limbs.last() {
                let pad = 64 - bit_len % 64;
                assert_eq!(last & ((1u64 << pad) - 1), 0, "padding bits must be zero");
            }
        }
        let limbs = if limbs.len() <= INLINE_LIMBS {
            let mut buf = [0u64; INLINE_LIMBS];
            buf[..limbs.len()].copy_from_slice(&limbs);
            Limbs::Inline { buf, len: limbs.len() as u8 }
        } else {
            Limbs::Heap(limbs)
        };
        Self { limbs, bit_len }
    }
}

impl PartialEq for BigIndex {
    fn eq(&self, other: &Self) -> bool {
        self.bit_len == other.bit_len && self.limbs() == other.limbs()
    }
}

impl Eq for BigIndex {}

impl Hash for BigIndex {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.limbs().hash(state);
        self.bit_len.hash(state);
    }
}

impl Ord for BigIndex {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bit_len
            .cmp(&other.bit_len)
            .then_with(|| self.limbs().cmp(other.limbs()))
    }
}

impl PartialOrd for BigIndex {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigIndex[{}b:", self.bit_len)?;
        for limb in self.limbs() {
            write!(f, " {limb:016x}")?;
        }
        write!(f, "]")
    }
}

impl From<u64> for BigIndex {
    fn from(v: u64) -> Self {
        let mut b = Self::with_bit_capacity(64);
        b.push_bits(v, 64);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_extract_aligned() {
        let mut b = BigIndex::new();
        b.push_bits(0xDEAD, 16);
        b.push_bits(0xBEEF, 16);
        b.push_bits(0xCAFEBABE, 32);
        assert_eq!(b.bit_len(), 64);
        assert_eq!(b.extract_bits(0, 64), 0xDEADBEEFCAFEBABE);
        assert_eq!(b.extract_bits(16, 16), 0xBEEF);
    }

    #[test]
    fn push_across_limb_boundary() {
        let mut b = BigIndex::new();
        b.push_bits(0x1FFFFFFFFFFFFF, 53); // 53 bits
        b.push_bits(0b101, 3);
        b.push_bits(0x3FFF, 14); // crosses the 64-bit boundary at offset 56
        assert_eq!(b.bit_len(), 70);
        assert_eq!(b.extract_bits(0, 53), 0x1FFFFFFFFFFFFF);
        assert_eq!(b.extract_bits(53, 3), 0b101);
        assert_eq!(b.extract_bits(56, 14), 0x3FFF);
    }

    #[test]
    fn extract_across_limb_boundary() {
        let mut b = BigIndex::new();
        b.push_bits(u64::MAX, 64);
        b.push_bits(0, 64);
        assert_eq!(b.extract_bits(60, 8), 0b1111_0000);
    }

    #[test]
    fn ordering_is_numeric_for_equal_widths() {
        let mk = |hi: u64, lo: u64| {
            let mut b = BigIndex::new();
            b.push_bits(hi, 40);
            b.push_bits(lo, 40);
            b
        };
        assert!(mk(1, 0) > mk(0, u64::MAX >> 24));
        assert!(mk(5, 7) < mk(5, 8));
        assert_eq!(mk(3, 3), mk(3, 3));
    }

    #[test]
    fn shorter_width_sorts_first() {
        let mut a = BigIndex::new();
        a.push_bits(u64::MAX, 64);
        let mut b = BigIndex::new();
        b.push_bits(0, 64);
        b.push_bits(0, 1);
        assert!(a < b);
    }

    #[test]
    fn zero_and_max() {
        let z = BigIndex::zero(130);
        let m = BigIndex::max_value(130);
        assert_eq!(z.bit_len(), 130);
        assert_eq!(m.bit_len(), 130);
        assert!(z < m);
        assert_eq!(m.extract_bits(0, 64), u64::MAX);
        assert_eq!(m.extract_bits(64, 64), u64::MAX);
        assert_eq!(m.extract_bits(128, 2), 0b11);
    }

    #[test]
    fn from_raw_roundtrip() {
        let mut b = BigIndex::new();
        b.push_bits(0xABCD, 16);
        b.push_bits(0x1234, 70 - 16);
        let r = BigIndex::from_raw(b.limbs().to_vec(), b.bit_len());
        assert_eq!(r, b);
    }

    #[test]
    #[should_panic(expected = "padding bits must be zero")]
    fn from_raw_rejects_dirty_padding() {
        BigIndex::from_raw(vec![u64::MAX], 10);
    }

    #[test]
    fn zero_width_pushes_are_noops() {
        let mut b = BigIndex::new();
        b.push_bits(0, 0);
        assert_eq!(b.bit_len(), 0);
        b.push_bits(7, 3);
        b.push_bits(0, 0);
        assert_eq!(b.extract_bits(0, 3), 7);
    }

    #[test]
    fn inline_storage_covers_256_bits() {
        // TPC-DS keys (~130 bits) and anything up to 4 limbs must not
        // allocate; the 5th limb spills to the heap.
        let mut b = BigIndex::new();
        for i in 0..4u64 {
            b.push_bits(i, 64);
            assert_eq!(b.heap_bytes(), 0, "{} bits should be inline", b.bit_len());
        }
        b.push_bits(1, 1);
        assert!(b.heap_bytes() > 0, "5 limbs must spill to the heap");
        assert_eq!(b.bit_len(), 257);
        assert_eq!(b.extract_bits(64, 64), 1);
        assert_eq!(b.extract_bits(256, 1), 1);
    }

    #[test]
    fn spill_preserves_contents_across_boundary() {
        // Push in odd-sized groups so the spill happens mid-group.
        let mut b = BigIndex::new();
        let mut total = 0u32;
        let mut i = 0u64;
        while total < 300 {
            let n = 13 + (i % 7) as u32;
            b.push_bits(i % (1 << n), n);
            total += n;
            i += 1;
        }
        assert_eq!(b.bit_len(), total);
        // Re-extract everything and compare.
        let mut total2 = 0u32;
        let mut j = 0u64;
        while total2 < 300 {
            let n = 13 + (j % 7) as u32;
            assert_eq!(b.extract_bits(total2, n), j % (1 << n));
            total2 += n;
            j += 1;
        }
    }

    #[test]
    fn clear_resets_and_allows_reuse() {
        let mut b = BigIndex::new();
        b.push_bits(0xFFFF, 16);
        b.clear();
        assert_eq!(b.bit_len(), 0);
        b.push_bits(0xAB, 8);
        assert_eq!(b.extract_bits(0, 8), 0xAB);
        assert_eq!(b, BigIndex::from_raw(vec![0xABu64 << 56], 8));
    }

    #[test]
    fn eq_and_ord_agree_across_storage_layouts() {
        // The same value built inline and via from_raw must be equal, and a
        // heap-spilled value must still order correctly.
        let mut inline = BigIndex::new();
        inline.push_bits(42, 64);
        inline.push_bits(7, 64);
        let raw = BigIndex::from_raw(vec![42, 7], 128);
        assert_eq!(inline, raw);
        let mut wide_lo = BigIndex::max_value(320);
        let wide_hi = BigIndex::max_value(320);
        assert!(wide_lo.heap_bytes() > 0);
        assert_eq!(wide_lo, wide_hi);
        wide_lo.clear();
        for i in 0..5 {
            wide_lo.push_bits(if i == 4 { 0 } else { u64::MAX }, 64);
        }
        assert!(wide_lo < wide_hi);
    }
}
