//! Request/response protocol between clients, servers, workers and the
//! manager.

use bytes::{Buf, BufMut};
use volap_dims::{Aggregate, Item, QueryBox, Schema};

use crate::image::ShardRecord;
use crate::plan::{QueryPlan, WorkerExec};
use crate::wire::{self, WireError};

/// A request message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Worker: insert an item into a shard.
    Insert {
        /// Target shard.
        shard: u64,
        /// The item.
        item: Item,
    },
    /// Worker: bulk-insert items into a shard.
    BulkInsert {
        /// Target shard.
        shard: u64,
        /// The items.
        items: Vec<Item>,
    },
    /// Worker: aggregate `query` over the listed local shards.
    Query {
        /// Shards to search.
        shards: Vec<u64>,
        /// The query box.
        query: QueryBox,
    },
    /// Worker: split a shard into two new shards (manager-initiated).
    SplitShard {
        /// Shard to split.
        shard: u64,
        /// ID for the left half.
        left_id: u64,
        /// ID for the right half.
        right_id: u64,
    },
    /// Worker: migrate a shard to another worker (manager-initiated).
    Migrate {
        /// Shard to move.
        shard: u64,
        /// Destination worker endpoint.
        dest: String,
    },
    /// Worker: adopt a serialized shard (sent by the migration source).
    Adopt {
        /// Shard ID.
        shard: u64,
        /// Serialized shard blob.
        blob: Vec<u8>,
    },
    /// Server: client-facing insert.
    ClientInsert {
        /// The item.
        item: Item,
        /// Interned accounting principal (0 = untagged).
        principal: u32,
    },
    /// Server: client-facing bulk ingestion — the batch is routed in one
    /// pass and shipped to workers as per-shard bulk inserts (the system
    /// path behind the paper's 400 k items/s claim).
    ClientBulkInsert {
        /// The items.
        items: Vec<Item>,
        /// Interned accounting principal (0 = untagged).
        principal: u32,
    },
    /// Server: client-facing aggregate query.
    ClientQuery {
        /// The query box.
        query: QueryBox,
        /// Interned accounting principal (0 = untagged).
        principal: u32,
    },
    /// Server: client-facing ANALYZE'd query — same aggregate, plus the
    /// assembled [`QueryPlan`]. A separate variant (not a flag on
    /// [`Request::ClientQuery`]) so the non-introspected path stays
    /// untouched.
    ClientQueryAnalyze {
        /// The query box.
        query: QueryBox,
        /// Interned accounting principal (0 = untagged).
        principal: u32,
    },
    /// Worker: like [`Request::Query`] but returning per-shard execution
    /// stats ([`WorkerExec`]) alongside the aggregate.
    QueryAnalyze {
        /// Shards to search.
        shards: Vec<u64>,
        /// The query box.
        query: QueryBox,
    },
    /// Worker: report per-shard statistics.
    GetWorkerStats,
    /// Liveness probe.
    Ping,
}

/// A response message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success without payload.
    Ack,
    /// Aggregate result.
    Agg {
        /// The aggregate.
        agg: Aggregate,
        /// How many shards were searched (Figure 9b's metric).
        shards_searched: u32,
    },
    /// Split finished; the two replacement shard records.
    SplitDone {
        /// Left half.
        left: ShardRecord,
        /// Right half.
        right: ShardRecord,
    },
    /// Worker statistics.
    WorkerStats {
        /// One record per local shard.
        shards: Vec<ShardRecord>,
    },
    /// Aggregate result with the assembled query plan (server → client,
    /// answers [`Request::ClientQueryAnalyze`]).
    AggPlan {
        /// The aggregate.
        agg: Aggregate,
        /// How many shards were searched.
        shards_searched: u32,
        /// The assembled execution plan.
        plan: QueryPlan,
    },
    /// Aggregate result with this worker's execution stats (worker →
    /// server, answers [`Request::QueryAnalyze`]).
    AggExec {
        /// The aggregate.
        agg: Aggregate,
        /// How many shards were searched.
        shards_searched: u32,
        /// The worker-side execution record.
        exec: WorkerExec,
    },
    /// Failure with explanation.
    Err(String),
}

const T_INSERT: u8 = 1;
const T_BULK: u8 = 2;
const T_QUERY: u8 = 3;
const T_SPLIT: u8 = 4;
const T_MIGRATE: u8 = 5;
const T_ADOPT: u8 = 6;
const T_CINSERT: u8 = 7;
const T_CQUERY: u8 = 8;
const T_STATS: u8 = 9;
const T_PING: u8 = 10;
const T_CBULK: u8 = 11;
const T_CANALYZE: u8 = 12;
const T_QANALYZE: u8 = 13;

const R_ACK: u8 = 101;
const R_AGG: u8 = 102;
const R_SPLIT: u8 = 103;
const R_WSTATS: u8 = 104;
const R_ERR: u8 = 105;
const R_AGGPLAN: u8 = 106;
const R_AGGEXEC: u8 = 107;

/// Exact wire size of one item (see `wire::put_item`).
fn item_wire_len(dims: usize) -> usize {
    2 + dims * 8 + 8
}

/// Decode the trailing principal tag every client op carries.
fn get_principal(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.len() < 4 {
        return Err("truncated principal tag".into());
    }
    Ok(buf.get_u32())
}

impl Request {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        // Bulk payloads dominate the ingest path; size them exactly up
        // front so encoding a large batch never reallocates mid-stream.
        let cap = match self {
            Request::BulkInsert { items, .. } | Request::ClientBulkInsert { items, .. } => {
                17 + items.len() * items.first().map_or(0, |it| item_wire_len(it.coords.len()))
            }
            Request::Adopt { blob, .. } => 13 + blob.len(),
            _ => 32,
        };
        let mut buf = Vec::with_capacity(cap);
        match self {
            Request::Insert { shard, item } => {
                buf.put_u8(T_INSERT);
                buf.put_u64(*shard);
                wire::put_item(&mut buf, item);
            }
            Request::BulkInsert { shard, items } => {
                buf.put_u8(T_BULK);
                buf.put_u64(*shard);
                buf.put_u32(items.len() as u32);
                for it in items {
                    wire::put_item(&mut buf, it);
                }
            }
            Request::Query { shards, query } => {
                buf.put_u8(T_QUERY);
                buf.put_u32(shards.len() as u32);
                for s in shards {
                    buf.put_u64(*s);
                }
                wire::put_query(&mut buf, query);
            }
            Request::SplitShard { shard, left_id, right_id } => {
                buf.put_u8(T_SPLIT);
                buf.put_u64(*shard);
                buf.put_u64(*left_id);
                buf.put_u64(*right_id);
            }
            Request::Migrate { shard, dest } => {
                buf.put_u8(T_MIGRATE);
                buf.put_u64(*shard);
                wire::put_str(&mut buf, dest);
            }
            Request::Adopt { shard, blob } => {
                buf.put_u8(T_ADOPT);
                buf.put_u64(*shard);
                wire::put_bytes(&mut buf, blob);
            }
            Request::ClientInsert { item, principal } => {
                buf.put_u8(T_CINSERT);
                wire::put_item(&mut buf, item);
                buf.put_u32(*principal);
            }
            Request::ClientBulkInsert { items, principal } => {
                buf.put_u8(T_CBULK);
                buf.put_u32(items.len() as u32);
                for it in items {
                    wire::put_item(&mut buf, it);
                }
                buf.put_u32(*principal);
            }
            Request::ClientQuery { query, principal } => {
                buf.put_u8(T_CQUERY);
                wire::put_query(&mut buf, query);
                buf.put_u32(*principal);
            }
            Request::ClientQueryAnalyze { query, principal } => {
                buf.put_u8(T_CANALYZE);
                wire::put_query(&mut buf, query);
                buf.put_u32(*principal);
            }
            Request::QueryAnalyze { shards, query } => {
                buf.put_u8(T_QANALYZE);
                buf.put_u32(shards.len() as u32);
                for s in shards {
                    buf.put_u64(*s);
                }
                wire::put_query(&mut buf, query);
            }
            Request::GetWorkerStats => buf.put_u8(T_STATS),
            Request::Ping => buf.put_u8(T_PING),
        }
        buf
    }

    /// Decode from bytes.
    pub fn decode(mut data: &[u8]) -> Result<Self, WireError> {
        if data.is_empty() {
            return Err("empty request".into());
        }
        let tag = data.get_u8();
        let buf = &mut data;
        Ok(match tag {
            T_INSERT => {
                if buf.len() < 8 {
                    return Err("truncated insert".into());
                }
                Request::Insert { shard: buf.get_u64(), item: wire::get_item(buf)? }
            }
            T_BULK => {
                if buf.len() < 12 {
                    return Err("truncated bulk insert".into());
                }
                let shard = buf.get_u64();
                let n = buf.get_u32() as usize;
                let items = (0..n).map(|_| wire::get_item(buf)).collect::<Result<_, _>>()?;
                Request::BulkInsert { shard, items }
            }
            T_QUERY => {
                if buf.len() < 4 {
                    return Err("truncated query".into());
                }
                let n = buf.get_u32() as usize;
                if buf.len() < n * 8 {
                    return Err("truncated query shard list".into());
                }
                let shards = (0..n).map(|_| buf.get_u64()).collect();
                Request::Query { shards, query: wire::get_query(buf)? }
            }
            T_SPLIT => {
                if buf.len() < 24 {
                    return Err("truncated split".into());
                }
                Request::SplitShard {
                    shard: buf.get_u64(),
                    left_id: buf.get_u64(),
                    right_id: buf.get_u64(),
                }
            }
            T_MIGRATE => {
                if buf.len() < 8 {
                    return Err("truncated migrate".into());
                }
                Request::Migrate { shard: buf.get_u64(), dest: wire::get_str(buf)? }
            }
            T_ADOPT => {
                if buf.len() < 8 {
                    return Err("truncated adopt".into());
                }
                Request::Adopt { shard: buf.get_u64(), blob: wire::get_bytes(buf)? }
            }
            T_CINSERT => {
                let item = wire::get_item(buf)?;
                Request::ClientInsert { item, principal: get_principal(buf)? }
            }
            T_CBULK => {
                if buf.len() < 4 {
                    return Err("truncated client bulk insert".into());
                }
                let n = buf.get_u32() as usize;
                let items = (0..n).map(|_| wire::get_item(buf)).collect::<Result<_, _>>()?;
                Request::ClientBulkInsert { items, principal: get_principal(buf)? }
            }
            T_CQUERY => {
                let query = wire::get_query(buf)?;
                Request::ClientQuery { query, principal: get_principal(buf)? }
            }
            T_CANALYZE => {
                let query = wire::get_query(buf)?;
                Request::ClientQueryAnalyze { query, principal: get_principal(buf)? }
            }
            T_QANALYZE => {
                if buf.len() < 4 {
                    return Err("truncated analyze query".into());
                }
                let n = buf.get_u32() as usize;
                if buf.len() < n * 8 {
                    return Err("truncated analyze shard list".into());
                }
                let shards = (0..n).map(|_| buf.get_u64()).collect();
                Request::QueryAnalyze { shards, query: wire::get_query(buf)? }
            }
            T_STATS => Request::GetWorkerStats,
            T_PING => Request::Ping,
            other => return Err(format!("unknown request tag {other}")),
        })
    }
}

impl Response {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Response::Ack => buf.put_u8(R_ACK),
            Response::Agg { agg, shards_searched } => {
                buf.put_u8(R_AGG);
                wire::put_agg(&mut buf, agg);
                buf.put_u32(*shards_searched);
            }
            Response::SplitDone { left, right } => {
                buf.put_u8(R_SPLIT);
                wire::put_bytes(&mut buf, &left.encode());
                wire::put_bytes(&mut buf, &right.encode());
            }
            Response::WorkerStats { shards } => {
                buf.put_u8(R_WSTATS);
                buf.put_u32(shards.len() as u32);
                for s in shards {
                    wire::put_bytes(&mut buf, &s.encode());
                }
            }
            Response::AggPlan { agg, shards_searched, plan } => {
                buf.put_u8(R_AGGPLAN);
                wire::put_agg(&mut buf, agg);
                buf.put_u32(*shards_searched);
                plan.encode_into(&mut buf);
            }
            Response::AggExec { agg, shards_searched, exec } => {
                buf.put_u8(R_AGGEXEC);
                wire::put_agg(&mut buf, agg);
                buf.put_u32(*shards_searched);
                exec.encode_into(&mut buf);
            }
            Response::Err(msg) => {
                buf.put_u8(R_ERR);
                wire::put_str(&mut buf, msg);
            }
        }
        buf
    }

    /// Decode from bytes (needs the schema to rebuild bounding boxes).
    pub fn decode(schema: &Schema, mut data: &[u8]) -> Result<Self, WireError> {
        if data.is_empty() {
            return Err("empty response".into());
        }
        let tag = data.get_u8();
        let buf = &mut data;
        Ok(match tag {
            R_ACK => Response::Ack,
            R_AGG => {
                let agg = wire::get_agg(buf)?;
                if buf.len() < 4 {
                    return Err("truncated agg response".into());
                }
                Response::Agg { agg, shards_searched: buf.get_u32() }
            }
            R_SPLIT => {
                let left = ShardRecord::decode(schema, &wire::get_bytes(buf)?)?;
                let right = ShardRecord::decode(schema, &wire::get_bytes(buf)?)?;
                Response::SplitDone { left, right }
            }
            R_WSTATS => {
                if buf.len() < 4 {
                    return Err("truncated stats".into());
                }
                let n = buf.get_u32() as usize;
                let shards = (0..n)
                    .map(|_| wire::get_bytes(buf).and_then(|b| ShardRecord::decode(schema, &b)))
                    .collect::<Result<_, _>>()?;
                Response::WorkerStats { shards }
            }
            R_AGGPLAN => {
                let agg = wire::get_agg(buf)?;
                if buf.len() < 4 {
                    return Err("truncated agg-plan response".into());
                }
                let shards_searched = buf.get_u32();
                Response::AggPlan { agg, shards_searched, plan: QueryPlan::decode_from(buf)? }
            }
            R_AGGEXEC => {
                let agg = wire::get_agg(buf)?;
                if buf.len() < 4 {
                    return Err("truncated agg-exec response".into());
                }
                let shards_searched = buf.get_u32();
                Response::AggExec { agg, shards_searched, exec: WorkerExec::decode_from(buf)? }
            }
            R_ERR => Response::Err(wire::get_str(buf)?),
            other => return Err(format!("unknown response tag {other}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volap_dims::{Key, Mbr};

    fn schema() -> Schema {
        Schema::uniform(2, 2, 8)
    }

    #[test]
    fn all_requests_roundtrip() {
        let reqs = vec![
            Request::Insert { shard: 3, item: Item::new(vec![1, 2], 5.0) },
            Request::BulkInsert {
                shard: 4,
                items: vec![Item::new(vec![0, 0], 1.0), Item::new(vec![63, 63], 2.0)],
            },
            Request::Query {
                shards: vec![1, 2, 9],
                query: QueryBox::from_ranges(vec![(0, 5), (1, 63)]),
            },
            Request::SplitShard { shard: 8, left_id: 20, right_id: 21 },
            Request::Migrate { shard: 8, dest: "worker-5".into() },
            Request::Adopt { shard: 9, blob: vec![1, 2, 3, 4] },
            Request::ClientInsert { item: Item::new(vec![7, 7], 9.0), principal: 0 },
            Request::ClientBulkInsert {
                items: vec![Item::new(vec![1, 1], 2.0), Item::new(vec![2, 2], 3.0)],
                principal: 3,
            },
            Request::ClientQuery {
                query: QueryBox::from_ranges(vec![(0, 63), (0, 63)]),
                principal: u32::MAX,
            },
            Request::ClientQueryAnalyze {
                query: QueryBox::from_ranges(vec![(1, 9), (0, 63)]),
                principal: 1,
            },
            Request::QueryAnalyze {
                shards: vec![5, 6],
                query: QueryBox::from_ranges(vec![(0, 5), (1, 63)]),
            },
            Request::GetWorkerStats,
            Request::Ping,
        ];
        for r in reqs {
            let back = Request::decode(&r.encode()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn all_responses_roundtrip() {
        let s = schema();
        let mut mbr = Mbr::empty(&s);
        mbr.extend_item(&s, &Item::new(vec![2, 3], 1.0));
        let rec = |id: u64| ShardRecord { id, worker: format!("w{id}"), len: id * 10, mbr: mbr.clone() };
        let exec = WorkerExec {
            worker: "worker-1".into(),
            requested: vec![5, 6],
            alias_chases: 1,
            fanout: 2,
            wall_us: 120,
            shards: vec![crate::plan::ShardExec {
                shard: 5,
                items: 10,
                nodes_visited: 4,
                covered_hits: 1,
                items_scanned: 6,
                pruned: 2,
                rollup_hits: 1,
                wall_us: 30,
            }],
            forwards: vec![WorkerExec { worker: "worker-2".into(), ..Default::default() }],
        };
        let plan = QueryPlan {
            server: "server-0".into(),
            image_generation: 9,
            staleness_samples: 2,
            staleness_p95_us: 700,
            image_leaves: vec![5, 6],
            route_us: 3,
            wall_us: 200,
            workers: vec![exec.clone()],
        };
        let resps = vec![
            Response::Ack,
            Response::Agg { agg: Aggregate::of(4.0), shards_searched: 17 },
            Response::SplitDone { left: rec(1), right: rec(2) },
            Response::WorkerStats { shards: vec![rec(5), rec(6)] },
            Response::AggPlan { agg: Aggregate::of(2.0), shards_searched: 2, plan },
            Response::AggExec { agg: Aggregate::of(3.0), shards_searched: 1, exec },
            Response::Err("boom".into()),
        ];
        for r in resps {
            let back = Response::decode(&s, &r.encode()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[250]).is_err());
        assert!(Response::decode(&schema(), &[7]).is_err());
        let good = Request::Insert { shard: 1, item: Item::new(vec![1, 2], 0.0) }.encode();
        assert!(Request::decode(&good[..good.len() - 1]).is_err());
        // Dropping the trailing principal tag must not decode as untagged.
        let tagged =
            Request::ClientInsert { item: Item::new(vec![1, 2], 0.0), principal: 7 }.encode();
        assert!(Request::decode(&tagged[..tagged.len() - 1]).is_err());
    }
}
