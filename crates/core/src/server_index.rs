//! The server's local image: a modified PDC tree over shard bounding boxes.
//!
//! Per §III-C the index differs from an ordinary tree in three ways:
//!
//! * **Leaves are fixed**: each leaf *is* a shard; routing an insert expands
//!   the chosen leaf's box but never adds children, so an insert never
//!   splits a node. Structure changes only during synchronization (adding a
//!   shard splits internal nodes; removing one happens when a shard is
//!   replaced by its split halves).
//! * **Least-overlap routing**: the child chosen for an insert is the one
//!   whose growth causes the least overlap with its siblings, because
//!   overlapping shards force queries to fan out to many workers.
//! * **Bottom-up expansion**: when the global image reports a bigger box
//!   for a shard, the leaf is found directly through a shard-ID → leaf map
//!   and the expansion is propagated toward the root — no top-down search,
//!   which would be ambiguous under overlap.

use std::collections::HashMap;

use volap_dims::{Item, Key, Mbr, QueryBox, Schema};

const NO_PARENT: usize = usize::MAX;

#[derive(Debug)]
enum IdxKind {
    /// Children node indices (all at `level - 1`).
    Dir(Vec<usize>),
    /// A shard leaf.
    Leaf(u64),
}

#[derive(Debug)]
struct IdxNode {
    key: Mbr,
    parent: usize,
    level: u32,
    kind: IdxKind,
}

/// The routing index. Not internally synchronized: the server wraps it in a
/// reader-writer lock (queries share read access; inserts and sync updates
/// take brief write access).
pub struct ServerIndex {
    schema: Schema,
    dir_cap: usize,
    nodes: Vec<IdxNode>,
    free: Vec<usize>,
    root: usize,
    leaf_of: HashMap<u64, usize>,
}

impl ServerIndex {
    /// An empty index. `dir_cap` bounds directory fanout (splits beyond it).
    pub fn new(schema: Schema, dir_cap: usize) -> Self {
        assert!(dir_cap >= 4, "directory capacity too small");
        let root = IdxNode {
            key: Mbr::empty(&schema),
            parent: NO_PARENT,
            level: 1,
            kind: IdxKind::Dir(Vec::new()),
        };
        Self { schema, dir_cap, nodes: vec![root], free: Vec::new(), root: 0, leaf_of: HashMap::new() }
    }

    /// Number of shards (leaves).
    pub fn shard_count(&self) -> usize {
        self.leaf_of.len()
    }

    /// All shard IDs.
    pub fn shard_ids(&self) -> Vec<u64> {
        self.leaf_of.keys().copied().collect()
    }

    /// Whether a shard is present.
    pub fn contains(&self, id: u64) -> bool {
        self.leaf_of.contains_key(&id)
    }

    /// Current box of a shard.
    pub fn shard_box(&self, id: u64) -> Option<&Mbr> {
        self.leaf_of.get(&id).map(|&n| &self.nodes[n].key)
    }

    fn alloc(&mut self, node: IdxNode) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Register a new shard (synchronization path). Splits internal nodes
    /// as needed.
    pub fn add_shard(&mut self, id: u64, mbr: Mbr) {
        assert!(!self.leaf_of.contains_key(&id), "shard {id} already indexed");
        let leaf = self.alloc(IdxNode { key: mbr.clone(), parent: NO_PARENT, level: 0, kind: IdxKind::Leaf(id) });
        self.leaf_of.insert(id, leaf);
        // Descend to the level-1 directory with least overlap increase.
        let mut cur = self.root;
        loop {
            self.nodes[cur].key.extend_mbr(&mbr);
            if self.nodes[cur].level == 1 {
                break;
            }
            let children = match &self.nodes[cur].kind {
                IdxKind::Dir(c) => c.clone(),
                IdxKind::Leaf(_) => unreachable!("levels > 0 are directories"),
            };
            cur = self.choose_for_box(&children, &mbr);
        }
        if let IdxKind::Dir(c) = &mut self.nodes[cur].kind {
            c.push(leaf);
        }
        self.nodes[leaf].parent = cur;
        self.resolve_overflow(cur);
    }

    /// Remove a shard leaf (it was replaced by split halves). Keys are left
    /// conservative (boxes never shrink in VOLAP).
    pub fn remove_shard(&mut self, id: u64) -> bool {
        let Some(leaf) = self.leaf_of.remove(&id) else { return false };
        let mut parent = self.nodes[leaf].parent;
        if let IdxKind::Dir(c) = &mut self.nodes[parent].kind {
            c.retain(|&n| n != leaf);
        }
        self.free.push(leaf);
        // Prune empty directories (except the root).
        while parent != self.root {
            let empty = matches!(&self.nodes[parent].kind, IdxKind::Dir(c) if c.is_empty());
            if !empty {
                break;
            }
            let grand = self.nodes[parent].parent;
            if let IdxKind::Dir(c) = &mut self.nodes[grand].kind {
                c.retain(|&n| n != parent);
            }
            self.free.push(parent);
            parent = grand;
        }
        true
    }

    /// Apply a box expansion reported by the global image: find the leaf by
    /// ID and propagate upward (the unique bottom-up operation of §III-C).
    /// Returns `false` for unknown shards.
    pub fn expand_shard(&mut self, id: u64, mbr: &Mbr) -> bool {
        let Some(&leaf) = self.leaf_of.get(&id) else { return false };
        let mut cur = leaf;
        loop {
            self.nodes[cur].key.extend_mbr(mbr);
            if self.nodes[cur].parent == NO_PARENT {
                break;
            }
            cur = self.nodes[cur].parent;
        }
        true
    }

    /// Route an insert: pick the shard whose box grows with least overlap,
    /// expanding the path's boxes. Returns `(shard_id, leaf_box_changed)`,
    /// or `None` when no shards exist yet.
    pub fn route_insert(&mut self, item: &Item) -> Option<(u64, bool)> {
        if self.leaf_of.is_empty() {
            return None;
        }
        let mut cur = self.root;
        loop {
            self.nodes[cur].key.extend_item(&self.schema, item);
            let children = match &self.nodes[cur].kind {
                IdxKind::Dir(c) => c.clone(),
                IdxKind::Leaf(_) => unreachable!("descent stops at level 1"),
            };
            debug_assert!(!children.is_empty(), "directories on a routing path are non-empty");
            let next = self.choose_for_item(&children, item);
            if self.nodes[next].level == 0 {
                let changed = self.nodes[next].key.extend_item(&self.schema, item);
                let IdxKind::Leaf(id) = self.nodes[next].kind else { unreachable!() };
                return Some((id, changed));
            }
            cur = next;
        }
    }

    /// Shards whose boxes overlap the query.
    pub fn route_query(&self, q: &QueryBox) -> Vec<u64> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !node.key.overlaps_query(q) {
                continue;
            }
            match &node.kind {
                IdxKind::Leaf(id) => out.push(*id),
                IdxKind::Dir(c) => stack.extend_from_slice(c),
            }
        }
        out
    }

    fn choose_for_item(&self, children: &[usize], item: &Item) -> usize {
        let mut best = children[0];
        let mut best_cost = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &i in children {
            let key = &self.nodes[i].key;
            if key.contains_item(item) {
                let v = key.volume_frac(&self.schema);
                // Contained: zero overlap increase and zero enlargement.
                if (0.0, 0.0, v) < best_cost {
                    best_cost = (0.0, 0.0, v);
                    best = i;
                }
                continue;
            }
            let mut grown = key.clone();
            grown.extend_item(&self.schema, item);
            let mut inc = 0.0;
            for &j in children {
                if i != j {
                    let other = &self.nodes[j].key;
                    inc += grown.overlap_frac(&self.schema, other)
                        - key.overlap_frac(&self.schema, other);
                }
            }
            let enlarge = grown.volume_frac(&self.schema) - key.volume_frac(&self.schema);
            let cost = (inc, enlarge, key.volume_frac(&self.schema));
            if cost < best_cost {
                best_cost = cost;
                best = i;
            }
        }
        best
    }

    fn choose_for_box(&self, children: &[usize], mbr: &Mbr) -> usize {
        let mut best = children[0];
        let mut best_cost = (f64::INFINITY, f64::INFINITY);
        for &i in children {
            let key = &self.nodes[i].key;
            let mut grown = key.clone();
            grown.extend_mbr(mbr);
            let mut inc = 0.0;
            for &j in children {
                if i != j {
                    let other = &self.nodes[j].key;
                    inc += grown.overlap_frac(&self.schema, other)
                        - key.overlap_frac(&self.schema, other);
                }
            }
            let enlarge = grown.volume_frac(&self.schema) - key.volume_frac(&self.schema);
            if (inc, enlarge) < best_cost {
                best_cost = (inc, enlarge);
                best = i;
            }
        }
        best
    }

    /// Split nodes upward while they exceed the directory capacity.
    fn resolve_overflow(&mut self, mut n: usize) {
        loop {
            let len = match &self.nodes[n].kind {
                IdxKind::Dir(c) => c.len(),
                IdxKind::Leaf(_) => return,
            };
            if len <= self.dir_cap {
                return;
            }
            // Sort children by box center along the widest axis and split
            // in half.
            let mut children = match &mut self.nodes[n].kind {
                IdxKind::Dir(c) => std::mem::take(c),
                IdxKind::Leaf(_) => unreachable!(),
            };
            let axis = self.widest_axis(&children);
            children.sort_by_key(|&c| {
                self.nodes[c]
                    .key
                    .ranges()
                    .map_or(0, |r| r[axis].0 / 2 + r[axis].1 / 2)
            });
            let right_children = children.split_off(children.len() / 2);
            let left_key = self.union_of(&children);
            let right_key = self.union_of(&right_children);
            let level = self.nodes[n].level;

            let sibling = self.alloc(IdxNode {
                key: right_key,
                parent: NO_PARENT,
                level,
                kind: IdxKind::Dir(Vec::new()),
            });
            for &c in &right_children {
                self.nodes[c].parent = sibling;
            }
            if let IdxKind::Dir(slot) = &mut self.nodes[sibling].kind {
                *slot = right_children;
            }
            self.nodes[n].key = left_key;
            if let IdxKind::Dir(slot) = &mut self.nodes[n].kind {
                *slot = children;
            }

            if self.nodes[n].parent == NO_PARENT {
                // Grow a new root.
                let old_key = {
                    let mut k = self.nodes[n].key.clone();
                    k.extend_mbr(&self.nodes[sibling].key);
                    k
                };
                let new_root = self.alloc(IdxNode {
                    key: old_key,
                    parent: NO_PARENT,
                    level: level + 1,
                    kind: IdxKind::Dir(vec![n, sibling]),
                });
                self.nodes[n].parent = new_root;
                self.nodes[sibling].parent = new_root;
                self.root = new_root;
                return;
            }
            let parent = self.nodes[n].parent;
            self.nodes[sibling].parent = parent;
            if let IdxKind::Dir(c) = &mut self.nodes[parent].kind {
                c.push(sibling);
            }
            n = parent;
        }
    }

    fn widest_axis(&self, children: &[usize]) -> usize {
        let dims = self.schema.dims();
        let mut best = 0usize;
        let mut best_spread = -1.0f64;
        for d in 0..dims {
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for &c in children {
                if let Some(r) = self.nodes[c].key.ranges() {
                    lo = lo.min(r[d].0);
                    hi = hi.max(r[d].1);
                }
            }
            if lo == u64::MAX {
                continue;
            }
            let spread = (hi - lo) as f64 / self.schema.dim(d).ordinal_end() as f64;
            if spread > best_spread {
                best_spread = spread;
                best = d;
            }
        }
        best
    }

    fn union_of(&self, children: &[usize]) -> Mbr {
        let mut m = Mbr::empty(&self.schema);
        for &c in children {
            m.extend_mbr(&self.nodes[c].key);
        }
        m
    }

    /// Internal consistency check (tests): every leaf reachable, parent
    /// links valid, directory keys contain children keys.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n].kind {
                IdxKind::Leaf(id) => {
                    seen += 1;
                    assert_eq!(self.leaf_of.get(id), Some(&n), "leaf map out of sync");
                }
                IdxKind::Dir(c) => {
                    for &child in c {
                        assert_eq!(self.nodes[child].parent, n, "broken parent link");
                        assert_eq!(self.nodes[child].level + 1, self.nodes[n].level, "level mismatch");
                        if let (Some(pk), Some(ck)) =
                            (self.nodes[n].key.ranges(), self.nodes[child].key.ranges())
                        {
                            for (p, c) in pk.iter().zip(ck.iter()) {
                                assert!(p.0 <= c.0 && c.1 <= p.1, "parent key must contain child");
                            }
                        }
                        stack.push(child);
                    }
                }
            }
        }
        assert_eq!(seen, self.leaf_of.len(), "unreachable leaves");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::uniform(2, 2, 16)
    }

    fn pt(s: &Schema, a: u64, b: u64) -> Item {
        let _ = s;
        Item::new(vec![a, b], 1.0)
    }

    fn boxed(lo: u64, hi: u64) -> Mbr {
        Mbr::from_ranges(vec![(lo, hi), (lo, hi)])
    }

    #[test]
    fn add_and_route_queries() {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        idx.add_shard(1, boxed(0, 100));
        idx.add_shard(2, boxed(150, 255));
        idx.check_invariants();
        let q = QueryBox::from_ranges(vec![(0, 50), (0, 50)]);
        assert_eq!(idx.route_query(&q), vec![1]);
        let q2 = QueryBox::from_ranges(vec![(0, 255), (0, 255)]);
        let mut both = idx.route_query(&q2);
        both.sort_unstable();
        assert_eq!(both, vec![1, 2]);
        let q3 = QueryBox::from_ranges(vec![(120, 140), (120, 140)]);
        assert!(idx.route_query(&q3).is_empty());
    }

    #[test]
    fn inserts_expand_leaves_without_adding_nodes() {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        idx.add_shard(1, boxed(0, 10));
        idx.add_shard(2, boxed(200, 255));
        let before = idx.shard_count();
        // An item outside both boxes goes to the least-overlap shard and
        // expands it.
        let (id, changed) = idx.route_insert(&pt(&s, 30, 30)).unwrap();
        assert!(changed);
        assert_eq!(idx.shard_count(), before, "routing never adds leaves");
        let grown = idx.shard_box(id).unwrap().ranges().unwrap().to_vec();
        assert!(grown[0].0 <= 30 && 30 <= grown[0].1);
        // An item inside a box changes nothing.
        let (_, changed2) = idx.route_insert(&pt(&s, 30, 30)).unwrap();
        assert!(!changed2);
        idx.check_invariants();
    }

    #[test]
    fn routing_prefers_least_overlap() {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        idx.add_shard(1, boxed(0, 100));
        idx.add_shard(2, boxed(200, 255));
        // Item near shard 2: growing shard 1 would overlap [200,255]
        // far more than growing shard 2 towards 180.
        let (id, _) = idx.route_insert(&pt(&s, 180, 180)).unwrap();
        assert_eq!(id, 2);
    }

    #[test]
    fn many_shards_trigger_internal_splits() {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        for i in 0..40u64 {
            let lo = i * 6;
            idx.add_shard(i, boxed(lo, lo + 5));
        }
        idx.check_invariants();
        assert_eq!(idx.shard_count(), 40);
        // Every shard must still be reachable by a point query in its box.
        for i in 0..40u64 {
            let lo = i * 6;
            let q = QueryBox::from_ranges(vec![(lo, lo), (lo, lo)]);
            assert!(idx.route_query(&q).contains(&i), "shard {i} unreachable");
        }
    }

    #[test]
    fn expansion_is_bottom_up_and_visible() {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        for i in 0..12u64 {
            idx.add_shard(i, boxed(i * 20, i * 20 + 9));
        }
        assert!(idx.expand_shard(3, &boxed(0, 130)));
        idx.check_invariants();
        let q = QueryBox::from_ranges(vec![(125, 128), (125, 128)]);
        assert!(idx.route_query(&q).contains(&3), "expanded box must route");
        assert!(!idx.expand_shard(99, &boxed(0, 1)), "unknown shard rejected");
    }

    #[test]
    fn remove_shard_keeps_tree_valid() {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        for i in 0..20u64 {
            idx.add_shard(i, boxed(i * 12, i * 12 + 8));
        }
        for i in (0..20u64).step_by(2) {
            assert!(idx.remove_shard(i));
        }
        assert!(!idx.remove_shard(0), "double remove is false");
        idx.check_invariants();
        assert_eq!(idx.shard_count(), 10);
        let q = QueryBox::from_ranges(vec![(0, 255), (0, 255)]);
        let mut ids = idx.route_query(&q);
        ids.sort_unstable();
        assert_eq!(ids, (0..20u64).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_index_routes_nothing() {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        assert!(idx.route_insert(&pt(&s, 0, 0)).is_none());
        assert!(idx.route_query(&QueryBox::all(&s)).is_empty());
    }
}
