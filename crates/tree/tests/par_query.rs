//! Equivalence and concurrency tests for the parallel query path
//! (`query_par` / `query_par_with`).

use std::sync::Arc;

use proptest::prelude::*;
use volap_dims::{Aggregate, Item, Mbr, Mds, QueryBox, Schema};
use volap_tree::{ConcurrentTree, InsertPolicy, TreeConfig};

fn cfg(aggregate_cache: bool) -> TreeConfig {
    TreeConfig { leaf_cap: 8, dir_cap: 4, aggregate_cache, ..TreeConfig::default() }
}

fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
    let mut agg = Aggregate::empty();
    for it in items.iter().filter(|it| q.contains_item(it)) {
        agg.add(it.measure);
    }
    agg
}

/// Count and min/max must match exactly; sums may differ by float merge
/// order under the parallel path.
fn assert_agg_eq(name: &str, got: &Aggregate, expect: &Aggregate) {
    assert_eq!(got.count, expect.count, "{name}: count mismatch");
    assert!(
        (got.sum - expect.sum).abs() < 1e-6,
        "{name}: sum mismatch ({} vs {})",
        got.sum,
        expect.sum
    );
    if expect.count > 0 {
        assert_eq!(got.min, expect.min, "{name}: min mismatch");
        assert_eq!(got.max, expect.max, "{name}: max mismatch");
    }
}

fn lcg_items(schema: &Schema, n: u64, seed: u64) -> Vec<Item> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    (0..n)
        .map(|i| {
            let coords: Vec<u64> = (0..schema.dims())
                .map(|d| next() % schema.dim(d).ordinal_end())
                .collect();
            Item::new(coords, (i % 97) as f64)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `query_par` == `query` == brute force over random items and boxes,
    /// across both insert policies, both key types, and `aggregate_cache`
    /// on/off; traces must match the sequential walk exactly.
    #[test]
    fn par_query_matches_sequential_and_brute_force(
        (rows, boxes) in (
            prop::collection::vec((0u64..64, 0u64..64, 0u64..64, 0u64..100), 1..250),
            prop::collection::vec(
                (0u64..64, 0u64..64, 0u64..64, 0u64..64, 0u64..64, 0u64..64),
                1..5,
            ),
        )
    ) {
        let schema = Schema::uniform(3, 2, 8);
        let items: Vec<Item> = rows
            .iter()
            .map(|&(a, b, c, m)| Item::new(vec![a, b, c], m as f64))
            .collect();
        let queries: Vec<QueryBox> = boxes
            .iter()
            .map(|&(a0, b0, a1, b1, a2, b2)| {
                QueryBox::from_ranges(vec![
                    (a0.min(b0), a0.max(b0)),
                    (a1.min(b1), a1.max(b1)),
                    (a2.min(b2), a2.max(b2)),
                ])
            })
            .chain(std::iter::once(QueryBox::all(&schema)))
            .collect();
        for policy in [InsertPolicy::Geometric, InsertPolicy::Hilbert { expand: true }] {
            for cache in [true, false] {
                let mds: ConcurrentTree<Mds> =
                    ConcurrentTree::new(schema.clone(), policy, cfg(cache));
                let mbr: ConcurrentTree<Mbr> =
                    ConcurrentTree::new(schema.clone(), policy, cfg(cache));
                for it in &items {
                    mds.insert(it);
                    mbr.insert(it);
                }
                for q in &queries {
                    let expect = brute(&items, q);
                    let (seq, seq_trace) = mds.query_traced(q);
                    // Cutoff of 16 forces genuine task fan-out even on these
                    // small trees.
                    let (par, par_trace) = mds.query_par_with(q, 16);
                    let name = format!("{policy:?} cache={cache}");
                    assert_agg_eq(&format!("{name} seq-vs-brute"), &seq, &expect);
                    assert_agg_eq(&format!("{name} par-vs-brute"), &par, &expect);
                    prop_assert_eq!(seq_trace, par_trace);
                    let (par_mbr, _) = mbr.query_par_with(q, 16);
                    assert_agg_eq(&format!("{name} mbr-par-vs-brute"), &par_mbr, &expect);
                }
            }
        }
    }
}

#[test]
fn par_trace_equals_sequential_trace_on_static_tree() {
    let schema = Schema::uniform(3, 2, 8);
    for cache in [true, false] {
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, cfg(cache));
        for it in lcg_items(&schema, 3000, 0xC0FFEE) {
            tree.insert(&it);
        }
        for q in [
            QueryBox::all(&schema),
            QueryBox::from_ranges(vec![(0, 20), (0, 63), (0, 63)]),
            QueryBox::from_ranges(vec![(10, 40), (5, 35), (0, 63)]),
            QueryBox::from_ranges(vec![(63, 63), (63, 63), (63, 63)]),
        ] {
            let (seq, seq_trace) = tree.query_traced(&q);
            let (par, par_trace) = tree.query_par_with(&q, 32);
            assert_agg_eq(&format!("cache={cache}"), &par, &seq);
            // Every counter is an order-independent sum over the same visit
            // set, so the parallel trace is *equal*, not just close.
            assert_eq!(seq_trace, par_trace, "cache={cache} trace mismatch for {q:?}");
        }
    }
}

#[test]
fn par_queries_run_against_concurrent_inserts() {
    let schema = Schema::uniform(3, 2, 8);
    let tree: Arc<ConcurrentTree<Mds>> = Arc::new(ConcurrentTree::new(
        schema.clone(),
        InsertPolicy::Hilbert { expand: true },
        cfg(true),
    ));
    let items = lcg_items(&schema, 6000, 0xFEED);
    let n_threads = 3;
    let chunk = items.len() / n_threads;
    std::thread::scope(|s| {
        for t in 0..n_threads {
            let tree = Arc::clone(&tree);
            let slice = items[t * chunk..(t + 1) * chunk].to_vec();
            s.spawn(move || {
                for it in slice {
                    tree.insert(&it);
                }
            });
        }
        // Two reader threads issue parallel queries throughout the insert
        // storm: totals must only ever grow, and nothing may deadlock.
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            let q = QueryBox::all(&schema);
            s.spawn(move || {
                let mut last = 0u64;
                for _ in 0..60 {
                    let agg = tree.query_par_with(&q, 64).0;
                    assert!(
                        agg.count >= last,
                        "total count went backwards: {} -> {}",
                        last,
                        agg.count
                    );
                    last = agg.count;
                }
            });
        }
    });
    assert_eq!(tree.len(), (chunk * n_threads) as u64);
    let total = tree.query_par(&QueryBox::all(&schema));
    assert_eq!(total.count, (chunk * n_threads) as u64);
}
