//! Elastic scale-up: the Figure-6 scenario as a runnable demo.
//!
//! Data is loaded in phases; before each phase two empty workers join the
//! cluster. The manager reacts by splitting oversized shards and migrating
//! shards onto the new workers, closing the min/max load gap — all while
//! the cluster keeps serving queries.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example elastic_scaleup
//! ```

use std::time::Duration;

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};

fn print_loads(cluster: &Cluster, label: &str) {
    let mut loads = cluster.worker_loads();
    loads.sort();
    let min = loads.iter().map(|(_, l)| *l).min().unwrap_or(0);
    let max = loads.iter().map(|(_, l)| *l).max().unwrap_or(0);
    let (splits, migrations) = cluster.balance_counts();
    println!(
        "{label:<28} workers={:<2} min={min:<7} max={max:<7} splits={splits:<3} migrations={migrations:<3}",
        loads.len()
    );
    for (w, l) in &loads {
        let bar = "#".repeat((l / 400).min(80) as usize);
        println!("    {w:<10} {l:>7} {bar}");
    }
}

fn main() {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 2;
    cfg.max_shard_items = 4_000;
    cfg.manager_period = Duration::from_millis(50);
    cfg.stats_period = Duration::from_millis(30);
    cfg.sync_period = Duration::from_millis(30);
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 7, 1.5);

    let phase_items = 8_000;
    for phase in 1..=4 {
        if phase > 1 {
            let a = cluster.add_worker();
            let b = cluster.add_worker();
            println!("\n-- phase {phase}: added workers {a}, {b} (empty)");
            print_loads(&cluster, "after adding workers");
            // Let the balancer move data onto the newcomers.
            let settled = wait_balanced(&cluster, Duration::from_secs(20));
            print_loads(
                &cluster,
                if settled { "after balancing" } else { "balancing (timeout)" },
            );
        }
        println!("\n-- phase {phase}: loading {phase_items} items");
        for item in gen.items(phase_items) {
            client.insert(&item).expect("insert");
        }
        std::thread::sleep(Duration::from_millis(300)); // let stats publish
        print_loads(&cluster, "after load");
        let (agg, shards) = client.query(&QueryBox::all(&schema)).expect("query");
        println!(
            "    integrity: count={} (expected {}) across {shards} shards",
            agg.count,
            phase_items * phase
        );
    }
    cluster.shutdown();
}

/// Wait until the max/min worker-load gap falls under 40% of the mean.
fn wait_balanced(cluster: &Cluster, deadline: Duration) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < deadline {
        let loads = cluster.worker_loads();
        let total: u64 = loads.iter().map(|(_, l)| l).sum();
        let min = loads.iter().map(|(_, l)| *l).min().unwrap_or(0);
        let max = loads.iter().map(|(_, l)| *l).max().unwrap_or(0);
        let mean = total as f64 / loads.len() as f64;
        if total > 0 && min > 0 && (max - min) as f64 <= 0.4 * mean + 1_000.0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}
