//! Offline shim for the `rayon` crate.
//!
//! Provides the subset the parallel query engine needs: [`ThreadPoolBuilder`]
//! / [`ThreadPool`] with scoped task spawning ([`ThreadPool::scope`] /
//! [`Scope::spawn`]), a process-global pool behind the free [`scope`] and
//! [`join`] functions, and [`current_num_threads`].
//!
//! The scheduler is a shared injector queue with blocking workers
//! (work-*sharing*) rather than rayon's per-worker deques with stealing. The
//! thread that opens a scope helps drain the queue while it waits, so scopes
//! opened from inside pool workers (nested parallelism) cannot deadlock.
//! Scoped tasks may borrow from the enclosing stack frame exactly as with
//! real rayon: `scope` does not return until every transitively spawned task
//! has finished, and panics from tasks are re-thrown at the scope boundary.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    threads: usize,
}

impl PoolShared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        self.job_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    fn worker_loop(&self) {
        let mut guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = guard.pop_front() {
                drop(guard);
                job();
                guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            guard = self
                .job_ready
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by this shim but
/// kept so call sites handle the same `Result` shape as upstream.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    name_prefix: Option<String>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means one thread per available core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn thread_name<F>(mut self, f: F) -> Self
    where
        F: Fn(usize) -> String,
    {
        self.name_prefix = Some(f(0));
        self
    }

    /// Size the process-global pool (the one behind [`scope`] / [`join`]).
    ///
    /// Must run before anything touches the global pool; once the pool has
    /// been lazily initialized the requested size can no longer take effect
    /// and an error is returned (matching upstream's
    /// `GlobalPoolAlreadyInitialized` behavior).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        if global_pool_size().set(self.num_threads).is_err() {
            return Err(ThreadPoolBuildError);
        }
        // Force initialization now so a later racing get_or_init cannot
        // observe the size cell half-configured.
        let _ = global_pool();
        Ok(())
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_parallelism()
        } else {
            self.num_threads
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
        });
        let prefix = self.name_prefix.unwrap_or_else(|| "par-worker".to_string());
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{prefix}-{i}"))
                    .spawn(move || shared.worker_loop())
                    .map_err(|_| ThreadPoolBuildError)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ThreadPool { shared, workers })
    }
}

/// A fixed-size pool of worker threads executing scoped tasks.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Run `op` with a [`Scope`] handle; returns once every task spawned in
    /// the scope (transitively) has completed. The calling thread helps
    /// execute queued tasks while it waits.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        scope_on(&self.shared, op)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            sync: Mutex::new(ScopeSync {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn task_started(&self) {
        self.sync.lock().unwrap_or_else(|e| e.into_inner()).pending += 1;
    }

    fn task_finished(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
        sync.pending -= 1;
        if sync.panic.is_none() {
            sync.panic = panic;
        }
        if sync.pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Handle for spawning tasks that may borrow from the enclosing scope.
pub struct Scope<'scope> {
    pool: Arc<PoolShared>,
    state: Arc<ScopeState>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queue `body` for execution on the pool. The closure receives the scope
    /// handle so tasks can spawn subtasks (recursive fan-out).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.task_started();
        let task_scope = Scope {
            pool: Arc::clone(&self.pool),
            state: Arc::clone(&self.state),
            _marker: PhantomData,
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| body(&task_scope)));
            task_scope.state.task_finished(result.err());
        });
        // SAFETY: the scope owner blocks in `scope_on` until `pending` drops
        // to zero, i.e. until this job (and any job it spawns) has run to
        // completion, so every borrow with lifetime 'scope captured by the
        // job outlives the job's execution. Panics inside the job are caught
        // above, so the job always reports completion.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
        };
        self.pool.push(job);
    }
}

fn scope_on<'scope, OP, R>(pool: &Arc<PoolShared>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        pool: Arc::clone(pool),
        state: Arc::new(ScopeState::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));

    // Help drain the shared queue until every task of THIS scope is done.
    // Jobs popped here may belong to other scopes; running them is harmless
    // and keeps nested scopes deadlock-free.
    loop {
        {
            let sync = scope.state.sync.lock().unwrap_or_else(|e| e.into_inner());
            if sync.pending == 0 {
                break;
            }
        }
        if let Some(job) = scope.pool.try_pop() {
            job();
            continue;
        }
        let sync = scope.state.sync.lock().unwrap_or_else(|e| e.into_inner());
        if sync.pending == 0 {
            break;
        }
        let _ = scope
            .state
            .done
            .wait_timeout(sync, Duration::from_millis(1))
            .unwrap_or_else(|e| e.into_inner());
    }

    let panic = scope
        .state
        .sync
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .panic
        .take();
    match (result, panic) {
        (Ok(r), None) => r,
        (Err(p), _) | (_, Some(p)) => resume_unwind(p),
    }
}

fn default_parallelism() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Thread count requested via [`ThreadPoolBuilder::build_global`] (`0` =
/// default parallelism); consulted once when the global pool first builds.
fn global_pool_size() -> &'static OnceLock<usize> {
    static SIZE: OnceLock<usize> = OnceLock::new();
    &SIZE
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let requested = *global_pool_size().get_or_init(|| 0);
        ThreadPoolBuilder::new()
            .num_threads(requested)
            .thread_name(|_| "rayon-global".to_string())
            .build()
            .expect("global pool")
    })
}

/// Number of threads in the global pool.
pub fn current_num_threads() -> usize {
    global_pool().current_num_threads()
}

/// Scoped fan-out on the process-global pool.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    global_pool().scope(op)
}

/// Run two closures and return both results.
///
/// Unlike real rayon this shim executes them sequentially on the calling
/// thread (correct, just not parallel); the workspace's parallel paths are
/// built on [`scope`]/[`Scope::spawn`], which do fan out.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_all_tasks_and_borrows_stack() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn recursive_spawn_completes() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        fn fan(s: &Scope<'_>, depth: usize, counter: &Arc<AtomicUsize>) {
            counter.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                for _ in 0..2 {
                    let counter = Arc::clone(counter);
                    s.spawn(move |s| fan(s, depth - 1, &counter));
                }
            }
        }
        pool.scope(|s| fan(s, 5, &counter));
        // Full binary fan-out of depth 5: 2^6 - 1 nodes.
        assert_eq!(counter.load(Ordering::Relaxed), 63);
    }

    #[test]
    fn scope_returns_value() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let partials = Mutex::new(Vec::new());
        let total: u64 = {
            pool.scope(|s| {
                for chunk in 0..8u64 {
                    let partials = &partials;
                    s.spawn(move |_| {
                        partials.lock().unwrap().push(chunk * 10);
                    });
                }
            });
            let got = partials.lock().unwrap();
            got.iter().sum()
        };
        assert_eq!(total, (0..8u64).map(|c| c * 10).sum());
    }

    #[test]
    fn task_panic_propagates_to_scope() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hit = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("task boom"));
                s.spawn(|_| {});
            });
        }));
        assert!(hit.is_err(), "panic must cross the scope boundary");
        // The pool remains usable afterwards.
        let c = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|_| {
                c.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Arc::new(ThreadPoolBuilder::new().num_threads(1).build().unwrap());
        let counter = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&pool);
        let c2 = Arc::clone(&counter);
        pool.scope(move |s| {
            for _ in 0..4 {
                let p = Arc::clone(&p2);
                let c = Arc::clone(&c2);
                s.spawn(move |_| {
                    // Opening another scope from inside a pool worker must
                    // not deadlock even with a single thread.
                    p.scope(|inner| {
                        for _ in 0..4 {
                            let c = Arc::clone(&c);
                            inner.spawn(move |_| {
                                c.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(join(|| 2 + 2, || "ok"), (4, "ok"));
    }

    #[test]
    fn build_global_sizes_the_global_pool() {
        // No other test in this binary touches the global pool, so the
        // requested size must win; a second request must then fail.
        ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(current_num_threads(), 3);
        assert!(ThreadPoolBuilder::new().num_threads(5).build_global().is_err());
    }
}
