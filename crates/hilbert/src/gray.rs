//! Gray-code primitives used by the Hilbert curve construction.
//!
//! Definitions follow Hamilton's technical report *Compact Hilbert Indices*
//! (Dalhousie CS-2006-07) and the IPL 2008 paper. All words are `u64` with
//! the curve's dimension count `n <= 64` significant bits.

/// The binary reflected Gray code: `gc(i) = i ^ (i >> 1)`.
#[inline]
pub fn gray_code(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Inverse of [`gray_code`].
#[inline]
pub fn gray_code_inverse(g: u64) -> u64 {
    let mut i = g;
    let mut shift = 1;
    while shift < 64 {
        i ^= i >> shift;
        shift <<= 1;
    }
    i
}

/// Number of trailing set bits of `i`; equivalently `g(i)` such that
/// `gc(i) ^ gc(i + 1) == 1 << g(i)`.
#[inline]
pub fn trailing_set_bits(i: u64) -> u32 {
    (!i).trailing_zeros()
}

/// The *intra* sub-hypercube direction `d(w)` for the `w`-th sub-cube of an
/// order-1 curve in `n` dimensions.
#[inline]
pub fn direction(w: u64, n: u32) -> u32 {
    if w == 0 {
        0
    } else if w & 1 == 0 {
        trailing_set_bits(w - 1) % n
    } else {
        trailing_set_bits(w) % n
    }
}

/// The entry point `e(w)` of the `w`-th sub-cube of an order-1 curve.
#[inline]
pub fn entry(w: u64) -> u64 {
    if w == 0 {
        0
    } else {
        gray_code(2 * ((w - 1) / 2))
    }
}

/// Gray-code rank (Hamilton, Algorithm 4): pack the bits of `w` located at
/// positions where `mask` is set, preserving their relative (high-to-low)
/// order. `mask` and `w` are `n`-bit words.
#[inline]
pub fn gray_rank(mask: u64, w: u64, n: u32) -> u64 {
    let mut r = 0u64;
    for k in (0..n).rev() {
        if (mask >> k) & 1 == 1 {
            r = (r << 1) | ((w >> k) & 1);
        }
    }
    r
}

/// Inverse Gray-code rank (Hamilton, Algorithm 5).
///
/// Reconstructs `w` such that `gray_rank(mask, w, n) == r` and, for every
/// position `k` where `mask` is clear, the bit of `gc(w)` equals the bit of
/// `pi` (the pattern forced by the current curve orientation).
#[inline]
pub fn gray_rank_inverse(mask: u64, pi: u64, r: u64, n: u32) -> u64 {
    let mut w = 0u64;
    let mut g = 0u64;
    let mut j = mask.count_ones();
    for k in (0..n).rev() {
        // Bit k+1 of w (0 when k == n-1).
        let hi = if k + 1 >= n { 0 } else { (w >> (k + 1)) & 1 };
        if (mask >> k) & 1 == 1 {
            j -= 1;
            let bit = (r >> j) & 1;
            w |= bit << k;
            g |= (bit ^ hi) << k;
        } else {
            let bit = (pi >> k) & 1;
            g |= bit << k;
            w |= (bit ^ hi) << k;
        }
    }
    debug_assert_eq!(gray_code(w), g);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_roundtrip() {
        for i in 0..4096u64 {
            assert_eq!(gray_code_inverse(gray_code(i)), i);
        }
        assert_eq!(gray_code_inverse(gray_code(u64::MAX)), u64::MAX);
    }

    #[test]
    fn gray_code_single_bit_changes() {
        for i in 0..4095u64 {
            let diff = gray_code(i) ^ gray_code(i + 1);
            assert_eq!(diff.count_ones(), 1);
            assert_eq!(diff, 1 << trailing_set_bits(i));
        }
    }

    #[test]
    fn entry_points_are_even_gray_codes() {
        // e(w) must be a vertex the order-1 curve can enter: all entry points
        // have even Gray-code inverse.
        for w in 0..64u64 {
            assert_eq!(gray_code_inverse(entry(w)) % 2, 0);
        }
    }

    #[test]
    fn rank_packs_masked_bits() {
        // mask selects bits 0 and 2 of a 3-bit word.
        let mask = 0b101;
        assert_eq!(gray_rank(mask, 0b000, 3), 0b00);
        assert_eq!(gray_rank(mask, 0b001, 3), 0b01);
        assert_eq!(gray_rank(mask, 0b100, 3), 0b10);
        assert_eq!(gray_rank(mask, 0b101, 3), 0b11);
        assert_eq!(gray_rank(mask, 0b111, 3), 0b11);
    }

    #[test]
    fn rank_inverse_restores_free_bits() {
        let n = 5u32;
        for mask in 0..32u64 {
            for w in 0..32u64 {
                let r = gray_rank(mask, w, n);
                let pi = gray_code(w) & !mask;
                let back = gray_rank_inverse(mask, pi, r, n);
                assert_eq!(
                    back, w,
                    "mask={mask:05b} w={w:05b} r={r:b} pi={pi:05b}"
                );
            }
        }
    }

    #[test]
    fn full_mask_rank_is_identity() {
        for w in 0..256u64 {
            assert_eq!(gray_rank(0xff, w, 8), w);
            assert_eq!(gray_rank_inverse(0xff, 0, w, 8), w);
        }
    }
}
