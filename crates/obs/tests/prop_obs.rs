//! Property-based tests for the observability core: histogram correctness
//! under concurrency and exporter round-trip fidelity.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use volap_obs::{
    bucket_index, export, AuditLog, BalanceDecision, HeatEntry, HeatMap, Obs, ObsConfig, RateEwma,
    Registry, HIST_BUCKETS,
};

/// Hammer one histogram from many threads and check that not a single
/// observation is lost or double-counted: total count, total sum, and the
/// per-bucket tallies all match an offline replay of the same values.
#[test]
fn histogram_is_exact_under_concurrent_recording() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let reg = Registry::new(true);
    let hist = reg.histogram("volap_hammer_seconds");
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread over many octaves, disjoint
                    // per thread.
                    let ns = (t * PER_THREAD + i).wrapping_mul(2654435761) % (1 << 36);
                    hist.observe_ns(ns);
                }
            });
        }
    });
    assert_eq!(hist.count(), THREADS * PER_THREAD, "no observation lost");
    let mut expected = [0u64; HIST_BUCKETS];
    let mut expected_sum = 0u128;
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let ns = (t * PER_THREAD + i).wrapping_mul(2654435761) % (1 << 36);
            expected[bucket_index(ns)] += 1;
            expected_sum += ns as u128;
        }
    }
    assert_eq!(hist.bucket_counts(), expected);
    let sum_ns = (hist.sum_seconds() * 1e9).round() as u128;
    // f64 seconds round-trips the exact integer sum only up to 2^53 ns;
    // this workload stays far below that.
    assert_eq!(sum_ns, expected_sum, "sum preserved exactly");
    // Snapshot buckets are cumulative, hence monotone by construction —
    // verify against the raw tallies.
    let (_, _, histos) = reg.snapshot();
    let snap = &histos[0];
    let mut running = 0;
    for (i, &(le, cum)) in snap.buckets.iter().enumerate() {
        running += expected[i];
        assert_eq!(cum, running, "cumulative bucket {i} (le={le})");
        if i > 0 {
            assert!(le > snap.buckets[i - 1].0, "bucket bounds strictly increase");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any snapshot assembled from arbitrary counter/gauge/histogram
    /// activity survives the JSON exporter losslessly and the Prometheus
    /// exporter up to its defined scope (metrics only).
    #[test]
    fn exporters_round_trip_arbitrary_snapshots(
        counters in prop::collection::vec(("[a-z_]{1,12}", any::<u64>()), 0..6),
        gauges in prop::collection::vec(("[a-z_]{1,12}", any::<i64>()), 0..6),
        observations in prop::collection::vec(any::<u64>(), 0..64),
        events in prop::collection::vec(("[a-z_]{1,8}", "[ -~]{0,24}"), 0..8),
    ) {
        let obs = Obs::new(ObsConfig::default());
        let reg = obs.registry();
        for (name, v) in &counters {
            reg.counter(&format!("volap_{name}_total")).add(*v);
        }
        for (name, v) in &gauges {
            reg.gauge_labeled(&format!("volap_{name}"), "worker", "w0").set(*v);
        }
        let hist = reg.histogram("volap_prop_seconds");
        for ns in &observations {
            hist.observe_ns(*ns);
        }
        for (kind, detail) in &events {
            obs.events().record(kind, detail.clone());
        }
        let snap = obs.snapshot();
        let json_back = export::from_json(&export::to_json(&snap)).unwrap();
        prop_assert_eq!(&json_back, &snap, "JSON must be lossless");
        let prom_back = export::from_prometheus(&export::to_prometheus(&snap)).unwrap();
        prop_assert_eq!(prom_back, snap.metrics_only(), "exposition must cover all metrics");
    }

    /// Bucket indexing is monotone in the observed value and every value
    /// falls under its bucket's upper bound (the histogram invariant the
    /// PBS quantiles rely on).
    #[test]
    fn bucket_index_is_monotone_and_bounding(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let idx = bucket_index(lo);
        prop_assert!(idx < HIST_BUCKETS);
        if idx < HIST_BUCKETS - 1 {
            let le_ns = ((1u128 << idx) - 1) as u64;
            prop_assert!(lo <= le_ns, "value {lo} exceeds bucket bound {le_ns}");
        }
    }

    /// Event logs never exceed their capacity, never reorder, and account
    /// for every drop.
    #[test]
    fn event_log_is_bounded_and_ordered(n in 0usize..2000, cap in 16usize..256) {
        let obs = Obs::new(ObsConfig { histograms: true, event_capacity: cap, ..ObsConfig::default() });
        for i in 0..n {
            obs.events().record("e", format!("i={i}"));
        }
        let events = obs.events().snapshot();
        prop_assert!(events.len() <= cap.max(64)); // 16 shards × min 4/shard floor
        prop_assert_eq!(events.len() as u64 + obs.events().dropped(), n as u64);
        for w in events.windows(2) {
            prop_assert!(w[0].seq < w[1].seq, "sequence order preserved");
        }
    }
}

/// Event-ring eviction under contention: many writers overflowing a small
/// `obs_event_capacity` must keep the *global* sequencing monotone (and
/// collision-free) and must account for every single drop — what a
/// snapshot retains plus what it admits to dropping equals exactly what
/// was recorded, even while eviction races recording on every shard.
#[test]
fn event_ring_eviction_under_contention_is_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 2_000;
    // Far below the workload: 128 events total → 8 per shard, so eviction
    // runs continuously on every shard.
    let obs = Obs::new(ObsConfig { histograms: true, event_capacity: 128, ..ObsConfig::default() });
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let events = obs.events().clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    events.record("hammer", format!("t={t} i={i}"));
                }
            });
        }
    });
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(obs.events().recorded(), total, "every record counted");
    let snapshot = obs.events().snapshot();
    assert!(!snapshot.is_empty(), "overflow must not evict everything");
    assert!(snapshot.len() <= 128, "capacity bound held under contention");
    assert_eq!(
        snapshot.len() as u64 + obs.events().dropped(),
        total,
        "retained + dropped = recorded exactly"
    );
    // Global sequencing stays monotone and collision-free across shards.
    let seqs: Vec<u64> = snapshot.iter().map(|e| e.seq).collect();
    for w in seqs.windows(2) {
        assert!(w[0] < w[1], "seq strictly increasing: {} then {}", w[0], w[1]);
    }
    assert!(seqs.iter().all(|&s| s < total), "seq values within the issued range");
    // Eviction drops oldest-first per shard, so what survives skews recent:
    // every shard's retained run must be a suffix of what that thread wrote.
    let max_seq = *seqs.iter().max().unwrap();
    assert!(max_seq >= total - 128, "newest events survive eviction");
}

/// Audit-ring eviction under contention, mirroring the event-ring test
/// above: many manager-like writers overflowing a small ring must keep the
/// global sequencing monotone and collision-free, account for every drop,
/// and retain the newest history.
#[test]
fn audit_ring_eviction_under_contention_is_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 2_000;
    // 128 decisions total → 8 per thread-shard, so eviction runs
    // continuously on every shard.
    let log = AuditLog::new(128);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let log = log.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    log.record(BalanceDecision {
                        action: "split".into(),
                        shard: (t * PER_THREAD + i) as u64,
                        src: format!("worker-{t}"),
                        inputs: vec![("len".into(), i.to_string())],
                        result_shards: vec![i as u64, i as u64 + 1],
                        outcome: "ok".into(),
                        ..Default::default()
                    });
                }
            });
        }
    });
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(log.recorded(), total, "every decision counted");
    let snapshot = log.snapshot();
    assert!(!snapshot.is_empty(), "overflow must not evict everything");
    assert!(snapshot.len() <= 128, "capacity bound held under contention");
    assert_eq!(
        snapshot.len() as u64 + log.dropped(),
        total,
        "retained + dropped = recorded exactly"
    );
    let seqs: Vec<u64> = snapshot.iter().map(|d| d.seq).collect();
    for w in seqs.windows(2) {
        assert!(w[0] < w[1], "seq strictly increasing: {} then {}", w[0], w[1]);
    }
    assert!(seqs.iter().all(|&s| s < total), "seq values within the issued range");
    assert!(*seqs.iter().max().unwrap() >= total - 128, "newest decisions survive eviction");
    // Structured payloads survive the ring untouched.
    for d in &snapshot {
        assert_eq!(d.action, "split");
        assert_eq!(d.result_shards.len(), 2);
        assert_eq!(d.inputs.len(), 1);
        assert!(d.src.starts_with("worker-"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The half-life EWMA: the first observation seeds the estimate exactly,
    /// one silent half-life halves it, and the estimate always stays inside
    /// the [min, max] envelope of the instantaneous rates it was fed.
    #[test]
    fn rate_ewma_seeds_halves_and_stays_in_envelope(
        seed_events in 1u64..100_000,
        feeds in prop::collection::vec((0u64..100_000, 1u64..5_000), 1..32),
        hl_ms in 50u64..5_000,
    ) {
        let hl = Duration::from_millis(hl_ms);
        let mut e = RateEwma::default();

        // Seeding: the first observation becomes the rate verbatim.
        e.update(seed_events, Duration::from_millis(250), hl);
        let seeded = seed_events as f64 / 0.25;
        prop_assert_eq!(e.rate(), seeded);

        // Decay: one silent half-life halves the estimate exactly.
        let mut h = e;
        h.update(0, hl, hl);
        prop_assert!((h.rate() - seeded / 2.0).abs() <= seeded * 1e-9);

        // Envelope: however the feed sequence looks, the smoothed rate can
        // never leave the span of the instantaneous rates seen so far.
        let mut lo = seeded;
        let mut hi = seeded;
        for &(events, dt_ms) in &feeds {
            let dt = Duration::from_millis(dt_ms);
            e.update(events, dt, hl);
            let inst = events as f64 / dt.as_secs_f64();
            lo = lo.min(inst);
            hi = hi.max(inst);
            prop_assert!(
                e.rate() >= lo - 1e-9 && e.rate() <= hi + 1e-9,
                "rate {} left envelope [{}, {}]", e.rate(), lo, hi
            );
        }

        // Zero-dt feeds are ignored entirely.
        let before = e.rate();
        e.update(123, Duration::ZERO, hl);
        prop_assert_eq!(e.rate(), before);
    }

    /// HeatMap semantics under arbitrary publish/retire interleavings: the
    /// snapshot is exactly the last publish per shard id, ordered by id,
    /// minus shards whose current owner retired them. A retire by a stale
    /// owner is always a no-op.
    #[test]
    fn heat_map_is_last_writer_wins_with_owner_guarded_retire(
        ops in prop::collection::vec(
            (0u64..8, 0u8..4, any::<bool>(), 1u64..1_000_000),
            0..64,
        ),
    ) {
        let map = HeatMap::new(true);
        let mut model: std::collections::BTreeMap<u64, HeatEntry> = Default::default();
        for &(shard, worker, is_publish, items) in &ops {
            let worker_name = format!("w{worker}");
            if is_publish {
                let entry = HeatEntry {
                    shard,
                    worker: worker_name,
                    items,
                    inserts_total: items * 2,
                    queries_total: items / 2,
                    insert_rate: items as f64,
                    query_rate: items as f64 / 4.0,
                    volume_frac: 0.5,
                };
                map.publish(entry.clone());
                model.insert(shard, entry);
            } else {
                map.retire(shard, &worker_name);
                if model.get(&shard).is_some_and(|e| e.worker == worker_name) {
                    model.remove(&shard);
                }
            }
        }
        let snap = map.snapshot();
        let expect: Vec<HeatEntry> = model.into_values().collect();
        prop_assert_eq!(snap, expect);
    }
}

/// A cloned histogram handle observes into the same series (handles are
/// cached at component startup and cloned across threads).
#[test]
fn cloned_handles_share_state() {
    let reg = Registry::new(true);
    let h1 = reg.histogram("volap_h_seconds");
    let h2 = reg.histogram("volap_h_seconds");
    let h3 = Arc::new(h1.clone());
    h1.observe_ns(10);
    h2.observe_ns(20);
    h3.observe_ns(30);
    assert_eq!(h1.count(), 3);
    assert_eq!(reg.counter("c").get(), reg.counter("c").get());
}
