//! Cross-crate tests: the tree family against generated TPC-DS workloads.

use volap_data::{coverage, CoverageBand, DataGen, QueryGen};
use volap_dims::{Aggregate, HilbertMapper, Item, QueryBox, Schema};
use volap_tree::{build_store, StoreKind, TreeConfig};

fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
    let mut a = Aggregate::empty();
    for it in items.iter().filter(|it| q.contains_item(it)) {
        a.add(it.measure);
    }
    a
}

fn all_kinds() -> [StoreKind; 6] {
    [
        StoreKind::Array,
        StoreKind::PdcMbr,
        StoreKind::PdcMds,
        StoreKind::HilbertPdcMbr,
        StoreKind::HilbertPdcMds,
        StoreKind::HilbertRTree,
    ]
}

#[test]
fn every_store_kind_is_exact_on_tpcds() {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 77, 1.5);
    let items = gen.items(4_000);
    let mut qg = QueryGen::new(&schema, 78, 0.6);
    let queries: Vec<QueryBox> = (0..30).map(|_| qg.query(&items)).collect();

    for kind in all_kinds() {
        let store = build_store(kind, &schema, &TreeConfig::default());
        store.bulk_insert(items.clone());
        for q in &queries {
            let expect = brute(&items, q);
            let got = store.query(q);
            assert_eq!(got.count, expect.count, "{kind} count mismatch");
            assert!((got.sum - expect.sum).abs() < 1e-6, "{kind} sum mismatch");
            if expect.count > 0 {
                assert_eq!(got.min, expect.min, "{kind} min mismatch");
                assert_eq!(got.max, expect.max, "{kind} max mismatch");
            }
        }
    }
}

#[test]
fn point_inserts_and_bulk_load_agree_on_tpcds() {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 79, 1.5);
    let items = gen.items(2_000);
    let point = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
    let bulk = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
    for it in &items {
        point.insert(it);
    }
    bulk.bulk_insert(items.clone());
    let mut qg = QueryGen::new(&schema, 80, 0.5);
    for _ in 0..20 {
        let q = qg.query(&items);
        assert_eq!(point.query(&q).count, bulk.query(&q).count);
    }
}

/// The headline property behind Figure 4: at equal contents, the Hilbert
/// PDC tree answers low/medium-coverage queries while touching fewer leaf
/// items than the PDC tree, thanks to less overlap and better-cached
/// aggregates.
#[test]
fn hilbert_pdc_scans_less_than_pdc_at_low_coverage() {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 81, 1.5);
    let items = gen.items(6_000);
    let mut qg = QueryGen::new(&schema, 82, 0.55);
    let bins = qg.binned(&items, 15, 60_000);

    let pdc = build_store(StoreKind::PdcMds, &schema, &TreeConfig::default());
    let hpdc = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
    // Point inserts (not bulk) so each tree's own insertion policy shapes it.
    for it in &items {
        pdc.insert(it);
        hpdc.insert(it);
    }
    let mut pdc_scanned = 0u64;
    let mut hpdc_scanned = 0u64;
    for q in bins[CoverageBand::Low as usize].iter() {
        let (a, ta) = pdc.query_traced(q);
        let (b, tb) = hpdc.query_traced(q);
        assert_eq!(a.count, b.count, "both exact");
        pdc_scanned += ta.items_scanned;
        hpdc_scanned += tb.items_scanned;
    }
    assert!(
        hpdc_scanned <= pdc_scanned,
        "Hilbert PDC must not scan more than PDC at low coverage \
         (hpdc {hpdc_scanned} vs pdc {pdc_scanned})"
    );
}

/// High-coverage queries must be answered dominantly from cached
/// aggregates — the paper's coverage resilience.
#[test]
fn high_coverage_hits_cached_aggregates() {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 83, 1.5);
    let items = gen.items(5_000);
    let store = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
    store.bulk_insert(items.clone());
    let q = QueryBox::all(&schema);
    let (agg, trace) = store.query_traced(&q);
    assert_eq!(agg.count, items.len() as u64);
    assert_eq!(trace.items_scanned, 0, "full coverage must use node caches only");
    assert!(trace.covered_hits > 0);
}

/// The Figure-3 expansion must change the Hilbert order (otherwise the
/// Hilbert PDC tree degenerates to a Hilbert R-tree).
#[test]
fn expansion_changes_hilbert_order_on_tpcds() {
    let schema = Schema::tpcds();
    let expanded = HilbertMapper::new(&schema, true);
    let raw = HilbertMapper::new(&schema, false);
    let mut gen = DataGen::new(&schema, 84, 1.5);
    let items = gen.items(400);
    let mut by_expanded: Vec<usize> = (0..items.len()).collect();
    let mut by_raw: Vec<usize> = (0..items.len()).collect();
    by_expanded.sort_by_key(|&i| expanded.key(&items[i]));
    by_raw.sort_by_key(|&i| raw.key(&items[i]));
    assert_ne!(by_expanded, by_raw, "expansion must produce a different curve order");
}

#[test]
fn coverage_bands_partition_generated_queries() {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 85, 1.5);
    let items = gen.items(3_000);
    let mut qg = QueryGen::new(&schema, 86, 0.7);
    let bins = qg.binned(&items, 8, 50_000);
    for (band, bin) in CoverageBand::all().iter().zip(&bins) {
        for q in bin {
            assert_eq!(CoverageBand::of(coverage(&items, q)), *band);
        }
    }
}
