//! # VelocityOLAP (VOLAP)
//!
//! A Rust reproduction of **"VOLAP: A Scalable Distributed System for
//! Real-Time OLAP with High Velocity Data"** (Dehne, Robillard,
//! Rau-Chaplin, Burke — IEEE CLUSTER 2016).
//!
//! VOLAP is a distributed, in-memory, real-time OLAP system: data items
//! carry hierarchical dimensions (TPC-DS style), queries aggregate any
//! hierarchy subtree in every dimension, and the system scales horizontally
//! by partitioning data into shards — each a concurrent **Hilbert PDC
//! tree** — spread across workers, routed to by servers holding a local
//! image of the shard map, coordinated through a Zookeeper-like store, and
//! kept balanced by a background manager that splits and migrates shards
//! without interrupting service.
//!
//! ## Crate map
//!
//! | layer | crate |
//! |---|---|
//! | compact Hilbert indices | `volap_hilbert` |
//! | hierarchies, MBR/MDS geometry | `volap_dims` |
//! | PDC-tree family (shard stores) | `volap_tree` |
//! | workload generation | `volap_data` |
//! | message fabric (ZeroMQ substitute) | `volap_net` |
//! | coordination store (Zookeeper substitute) | `volap_coord` |
//! | observability core (metrics, events, staleness) | `volap_obs` |
//! | the distributed system | this crate |
//!
//! ## Quickstart
//!
//! ```
//! use volap::{Cluster, VolapConfig};
//! use volap_dims::{Schema, QueryBox};
//! use volap_data::DataGen;
//!
//! let mut cfg = VolapConfig::new(Schema::tpcds());
//! cfg.workers = 2;
//! cfg.servers = 1;
//! let cluster = Cluster::start(cfg);
//! let client = cluster.client();
//!
//! let mut gen = DataGen::new(cluster.schema(), 42, 1.5);
//! for item in gen.items(100) {
//!     client.insert(&item).unwrap();
//! }
//! let (agg, _shards) = client.query(&QueryBox::all(cluster.schema())).unwrap();
//! assert_eq!(agg.count, 100);
//! cluster.shutdown();
//! ```

pub mod cluster;
pub mod config;
pub mod freshness;
pub mod image;
pub mod manager;
pub mod plan;
pub mod proto;
pub mod server;
pub mod server_index;
mod util;
pub mod wire;
pub mod worker;

pub use cluster::{ClientSession, Cluster};
pub use config::VolapConfig;
pub use freshness::FreshnessSim;
pub use image::{ImageStore, ShardRecord};
pub use manager::{balance_round, BalanceStats, ManagerHandle};
pub use plan::{QueryPlan, ShardExec, WorkerExec};
pub use proto::{Request, Response};
pub use server::ServerHandle;
pub use server_index::ServerIndex;
pub use volap_obs::{
    ComponentHealth, HealthRule, HealthState, HistorySnapshot, Obs, ObsConfig, Snapshot,
};
pub use worker::WorkerHandle;
