//! Direct server tests: routing, sync pushes and watch application,
//! without the full cluster harness or manager.

use std::time::Duration;

use volap::server::spawn_server;
use volap::worker::{create_empty_shard, spawn_worker};
use volap::{ImageStore, Request, Response, ShardRecord, VolapConfig};
use volap_coord::CoordService;
use volap_data::DataGen;
use volap_dims::{Key, QueryBox, Schema};
use volap_net::{Endpoint, Network};

const TIMEOUT: Duration = Duration::from_secs(5);

fn ask(driver: &Endpoint, to: &str, req: Request, schema: &Schema) -> Response {
    let bytes = driver.request(to, req.encode(), TIMEOUT).expect("request");
    Response::decode(schema, &bytes).expect("decode")
}

fn eventually(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn server_routes_and_pushes_expansions() {
    let schema = Schema::uniform(3, 2, 8);
    let net = Network::new();
    let image = ImageStore::new(CoordService::new(), schema.clone());
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.sync_period = Duration::from_millis(20);
    cfg.stats_period = Duration::from_secs(3600); // isolate: no worker stats
    let driver = net.endpoint("driver");
    let worker = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();
    let server = spawn_server(&net, &image, &cfg, "s0");

    let mut gen = DataGen::new(&schema, 9, 1.0);
    for it in gen.items(50) {
        assert_eq!(ask(&driver, "s0", Request::ClientInsert { item: it, principal: 0 }, &schema), Response::Ack);
    }
    match ask(&driver, "s0", Request::ClientQuery { query: QueryBox::all(&schema), principal: 0 }, &schema) {
        Response::Agg { agg, shards_searched } => {
            assert_eq!(agg.count, 50);
            assert_eq!(shards_searched, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
    // With worker stats disabled, only the server's periodic dirty push can
    // grow the image record's box — prove the sync path works.
    assert!(
        eventually(Duration::from_secs(5), || {
            image.shard(1).is_some_and(|r| !r.mbr.is_empty())
        }),
        "server never pushed its local box expansions to the global image"
    );
    server.stop();
    worker.stop();
}

#[test]
fn server_learns_new_shards_through_watches() {
    let schema = Schema::uniform(2, 2, 8);
    let net = Network::new();
    let image = ImageStore::new(CoordService::new(), schema.clone());
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.sync_period = Duration::from_millis(20);
    let driver = net.endpoint("driver");
    let worker = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();
    // Server boots knowing only shard 1.
    let server = spawn_server(&net, &image, &cfg, "s0");
    let mut gen = DataGen::new(&schema, 10, 1.0);
    for it in gen.items(20) {
        ask(&driver, "s0", Request::ClientInsert { item: it, principal: 0 }, &schema);
    }
    // A new shard appears (as if another server/manager created it).
    create_empty_shard(&driver, "w0", &schema, 2, TIMEOUT).unwrap();
    // Load it directly at the worker so it has content and a box.
    ask(&driver, "w0", Request::BulkInsert { shard: 2, items: gen.items(30) }, &schema);
    let rec = ShardRecord {
        id: 2,
        worker: "w0".into(),
        len: 30,
        mbr: volap_dims::Mbr::from_ranges(vec![(0, 63), (0, 63)]),
    };
    image.merge_shard(&rec);
    // The server must pick it up via its watch and include it in queries.
    assert!(
        eventually(Duration::from_secs(5), || {
            match ask(&driver, "s0", Request::ClientQuery { query: QueryBox::all(&schema), principal: 0 }, &schema) {
                Response::Agg { agg, shards_searched } => agg.count == 50 && shards_searched == 2,
                _ => false,
            }
        }),
        "server never learned about the new shard"
    );
    server.stop();
    worker.stop();
}

#[test]
fn server_coalesces_concurrent_client_inserts() {
    let schema = Schema::uniform(2, 2, 8);
    let net = Network::new();
    let image = ImageStore::new(CoordService::new(), schema.clone());
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.ingest_batch = 8;
    cfg.ingest_flush_interval = Duration::from_millis(5);
    let driver = net.endpoint("driver");
    let worker = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();
    create_empty_shard(&driver, "w0", &schema, 2, TIMEOUT).unwrap();
    let server = spawn_server(&net, &image, &cfg, "s0");
    // 16 blocked clients keep the buffer fed: full batches flush inline,
    // stragglers ride the interval flusher. Every client still gets an Ack.
    std::thread::scope(|scope| {
        for t in 0..16u64 {
            let client = net.endpoint(format!("c{t}"));
            let schema = schema.clone();
            scope.spawn(move || {
                let mut gen = DataGen::new(&schema, 100 + t, 1.0);
                for it in gen.items(25) {
                    let bytes = client
                        .request("s0", Request::ClientInsert { item: it, principal: 0 }.encode(), TIMEOUT)
                        .expect("request");
                    assert_eq!(
                        Response::decode(&schema, &bytes).expect("decode"),
                        Response::Ack
                    );
                }
            });
        }
    });
    match ask(&driver, "s0", Request::ClientQuery { query: QueryBox::all(&schema), principal: 0 }, &schema) {
        Response::Agg { agg, .. } => assert_eq!(agg.count, 400),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(image.obs().registry().sum_counters("volap_server_inserts_total"), 400);
    server.stop();
    worker.stop();
}

#[test]
fn server_with_no_shards_errors_cleanly() {
    let schema = Schema::uniform(2, 2, 8);
    let net = Network::new();
    let image = ImageStore::new(CoordService::new(), schema.clone());
    let cfg = VolapConfig::new(schema.clone());
    let driver = net.endpoint("driver");
    let server = spawn_server(&net, &image, &cfg, "s0");
    let mut gen = DataGen::new(&schema, 11, 1.0);
    match ask(&driver, "s0", Request::ClientInsert { item: gen.item(), principal: 0 }, &schema) {
        Response::Err(e) => assert!(e.contains("no shards")),
        other => panic!("unexpected {other:?}"),
    }
    match ask(&driver, "s0", Request::ClientQuery { query: QueryBox::all(&schema), principal: 0 }, &schema) {
        Response::Agg { agg, shards_searched } => {
            assert!(agg.is_empty());
            assert_eq!(shards_searched, 0);
        }
        other => panic!("unexpected {other:?}"),
    }
    server.stop();
}

#[test]
fn server_metrics_count_operations() {
    let schema = Schema::uniform(2, 2, 8);
    let net = Network::new();
    let image = ImageStore::new(CoordService::new(), schema.clone());
    let cfg = VolapConfig::new(schema.clone());
    let driver = net.endpoint("driver");
    let worker = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();
    let server = spawn_server(&net, &image, &cfg, "s0");
    let mut gen = DataGen::new(&schema, 12, 1.0);
    for it in gen.items(25) {
        ask(&driver, "s0", Request::ClientInsert { item: it, principal: 0 }, &schema);
    }
    for _ in 0..5 {
        ask(&driver, "s0", Request::ClientQuery { query: QueryBox::all(&schema), principal: 0 }, &schema);
    }
    let reg = image.obs().registry();
    let ins = reg.sum_counters("volap_server_inserts_total");
    let qs = reg.sum_counters("volap_server_queries_total");
    let exp = reg.sum_counters("volap_server_box_expansions_total");
    assert_eq!(ins, 25);
    assert_eq!(qs, 5);
    assert!((1..=25).contains(&exp), "some early inserts must expand the empty box");
    // The shared insert/query latency histograms saw every operation.
    let snap = image.obs().snapshot();
    assert_eq!(snap.histogram("volap_server_insert_seconds").unwrap().count, 25);
    assert_eq!(snap.histogram("volap_server_query_seconds").unwrap().count, 5);
    server.stop();
    worker.stop();
}
