//! Shard serialization (`SerializeShard` / `DeserializeShard`, §III-E) and
//! bulk loading.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use volap_dims::{Item, Key, Schema};

use crate::tree::{ConcurrentTree, DirEntry, Entry};

/// Magic bytes prefixing every serialized shard blob.
pub const SHARD_MAGIC: &[u8; 4] = b"VOLS";

/// Encode items into the flat binary blob the paper ships between workers
/// during shard migration.
pub fn encode_items(schema: &Schema, items: &[Item]) -> Vec<u8> {
    let dims = schema.dims();
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + items.len() * (dims * 8 + 8));
    buf.put_slice(SHARD_MAGIC);
    buf.put_u16(dims as u16);
    buf.put_u64(items.len() as u64);
    for it in items {
        debug_assert_eq!(it.coords.len(), dims);
        for &c in it.coords.iter() {
            buf.put_u64(c);
        }
        buf.put_f64(it.measure);
    }
    buf.to_vec()
}

/// Decode a blob produced by [`encode_items`].
///
/// Returns an error string on any structural mismatch (bad magic, truncated
/// payload, wrong dimensionality).
pub fn decode_items(schema: &Schema, blob: &[u8]) -> Result<Vec<Item>, String> {
    let mut buf = Bytes::copy_from_slice(blob);
    if buf.remaining() < 14 {
        return Err("shard blob truncated before header".into());
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != SHARD_MAGIC {
        return Err(format!("bad shard magic {magic:02x?}"));
    }
    let dims = buf.get_u16() as usize;
    if dims != schema.dims() {
        return Err(format!("shard has {dims} dims, schema has {}", schema.dims()));
    }
    let count = buf.get_u64() as usize;
    let need = count
        .checked_mul(dims * 8 + 8)
        .ok_or_else(|| "shard item count overflows".to_string())?;
    if buf.remaining() < need {
        return Err(format!("shard blob truncated: need {need} bytes, have {}", buf.remaining()));
    }
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let coords: Vec<u64> = (0..dims).map(|_| buf.get_u64()).collect();
        let measure = buf.get_f64();
        items.push(Item::new(coords, measure));
    }
    Ok(items)
}

/// Bulk-load `items` into an **empty** tree, packing leaves bottom-up.
///
/// Items are sorted by their compact Hilbert key (for Hilbert-policy trees;
/// geometric trees sort lexicographically by coordinates, which still yields
/// spatially coherent runs), packed into ~3/4-full leaves, and directory
/// levels are assembled bottom-up. This is the fast path behind the paper's
/// 400 k items/s bulk-ingestion number — no per-item descent, no node
/// splits, no lock traffic.
///
/// # Panics
///
/// Panics if the tree is non-empty.
pub fn bulk_load<K: Key>(tree: &ConcurrentTree<K>, items: Vec<Item>) {
    if items.is_empty() {
        return;
    }
    let count = items.len() as u64;
    tree.rollup_add_items(&items);
    let mut entries: Vec<Entry> = items.iter().map(|it| tree.entry_of(it)).collect();
    if tree.mapper().is_some() {
        entries.sort_by(|a, b| a.hkey.cmp(&b.hkey));
    } else {
        entries.sort_by(|a, b| a.coords.cmp(&b.coords));
    }
    let leaf_fill = (tree.cfg().leaf_cap * 3 / 4).max(1);
    let dir_fill = (tree.cfg().dir_cap * 3 / 4).max(2);
    let mut slots: Vec<DirEntry<K>> = Vec::with_capacity(entries.len() / leaf_fill + 1);
    let mut it = entries.into_iter();
    loop {
        let chunk: Vec<Entry> = it.by_ref().take(leaf_fill).collect();
        if chunk.is_empty() {
            break;
        }
        slots.push(tree.make_leaf_slot(chunk));
    }
    while slots.len() > 1 {
        let mut next = Vec::with_capacity(slots.len() / dir_fill + 1);
        let mut it = slots.into_iter();
        loop {
            let chunk: Vec<DirEntry<K>> = it.by_ref().take(dir_fill).collect();
            if chunk.is_empty() {
                break;
            }
            if chunk.len() == 1 {
                // Avoid a useless single-child directory node.
                next.extend(chunk);
            } else {
                next.push(tree.make_dir_slot(chunk));
            }
        }
        slots = next;
    }
    let root = slots.pop().expect("non-empty items yield a root");
    tree.install_bulk(root.node, count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{InsertPolicy, TreeConfig};
    use volap_dims::{Aggregate, Mds, QueryBox};

    fn items(n: u64, schema: &Schema) -> Vec<Item> {
        let mut state = 0xABCDEF12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        (0..n)
            .map(|i| {
                let coords: Vec<u64> = (0..schema.dims())
                    .map(|d| next() % schema.dim(d).ordinal_end())
                    .collect();
                Item::new(coords, (i % 17) as f64)
            })
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let schema = Schema::uniform(4, 2, 8);
        let original = items(123, &schema);
        let blob = encode_items(&schema, &original);
        let decoded = decode_items(&schema, &blob).unwrap();
        assert_eq!(original, decoded);
    }

    #[test]
    fn decode_rejects_corruption() {
        let schema = Schema::uniform(4, 2, 8);
        let blob = encode_items(&schema, &items(10, &schema));
        assert!(decode_items(&schema, &blob[..blob.len() - 3]).is_err());
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert!(decode_items(&schema, &bad_magic).is_err());
        let other = Schema::uniform(5, 2, 8);
        assert!(decode_items(&other, &blob).is_err());
        assert!(decode_items(&schema, &[]).is_err());
    }

    #[test]
    fn bulk_load_equals_point_inserts() {
        let schema = Schema::uniform(3, 2, 8);
        let data = items(2000, &schema);
        let cfg = TreeConfig { leaf_cap: 16, dir_cap: 6, ..TreeConfig::default() };
        for policy in [InsertPolicy::Geometric, InsertPolicy::Hilbert { expand: true }] {
            let bulk: ConcurrentTree<Mds> = ConcurrentTree::new(schema.clone(), policy, cfg.clone());
            bulk_load(&bulk, data.clone());
            assert_eq!(bulk.len(), data.len() as u64);
            let point: ConcurrentTree<Mds> = ConcurrentTree::new(schema.clone(), policy, cfg.clone());
            for it in &data {
                point.insert(it);
            }
            for q in [
                QueryBox::all(&schema),
                QueryBox::from_ranges(vec![(0, 30), (0, 63), (10, 50)]),
            ] {
                let a = bulk.query(&q);
                let b = point.query(&q);
                assert_eq!(a.count, b.count, "{policy:?}");
                assert!((a.sum - b.sum).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bulk_load_then_inserts_still_work() {
        let schema = Schema::uniform(3, 2, 8);
        let data = items(500, &schema);
        let tree: ConcurrentTree<Mds> = ConcurrentTree::new(
            schema.clone(),
            InsertPolicy::Hilbert { expand: true },
            TreeConfig::default(),
        );
        bulk_load(&tree, data.clone());
        let extra = items(200, &schema);
        for it in &extra {
            tree.insert(it);
        }
        let total = tree.query(&QueryBox::all(&schema));
        assert_eq!(total.count, 700);
        let mut expect = Aggregate::empty();
        for it in data.iter().chain(&extra) {
            expect.add(it.measure);
        }
        assert!((total.sum - expect.sum).abs() < 1e-6);
    }

    #[test]
    fn bulk_load_maintains_rollups_and_encodings() {
        let schema = Schema::uniform(3, 2, 8);
        let cfg = TreeConfig { rollup_levels: 1, ..TreeConfig::default() };
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, cfg);
        // Dictionary-friendly data: 8 distinct values per dimension.
        let data: Vec<Item> = items(2000, &schema)
            .into_iter()
            .map(|it| Item::new(it.coords.iter().map(|c| c % 8).collect(), it.measure))
            .collect();
        bulk_load(&tree, data.clone());
        let q = QueryBox::from_ranges(vec![(0, 7), (0, 63), (0, 63)]);
        let (agg, trace) = tree.query_traced(&q);
        assert_eq!(trace.rollup_hits, 1, "bulk load must feed the rollup table");
        let mut expect = Aggregate::empty();
        for it in data.iter().filter(|it| q.contains_item(it)) {
            expect.add(it.measure);
        }
        assert_eq!(agg.count, expect.count);
        assert!((agg.sum - expect.sum).abs() < 1e-6);
        // Bulk-built leaves choose dictionary encodings for low-cardinality
        // columns.
        let st = tree.structure();
        assert!(st.col_stats.dict_columns > 0, "low-cardinality columns must encode");
        assert!(st.col_stats.stored_bytes * 2 <= st.col_stats.plain_bytes);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn bulk_load_rejects_non_empty() {
        let schema = Schema::uniform(2, 2, 8);
        let tree: ConcurrentTree<Mds> = ConcurrentTree::new(
            schema.clone(),
            InsertPolicy::Hilbert { expand: true },
            TreeConfig::default(),
        );
        tree.insert(&Item::new(vec![0, 0], 1.0));
        bulk_load(&tree, items(10, &schema));
    }
}
