//! The object-safe shard-store facade used by the distributed layer.

use volap_dims::{Aggregate, Item, Key, Mbr, Mds, QueryBox, Schema};

use crate::array::ArrayStore;
use crate::leaf::ColumnStats;
use crate::serial::{bulk_load, decode_items, encode_items};
use crate::split::SplitPlan;
use crate::tree::{ConcurrentTree, InsertPolicy, QueryTrace, TreeConfig};

/// The shard data-structure variants of the paper (§III-D plus the Figure-5
/// baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Flat array (benchmark baseline).
    Array,
    /// PDC tree with MBR keys — an R-tree *with* cached aggregates.
    PdcMbr,
    /// PDC tree with MDS keys (the CR-OLAP / DC-tree lineage).
    PdcMds,
    /// Hilbert PDC tree with MBR keys.
    HilbertPdcMbr,
    /// Hilbert PDC tree with MDS keys — the paper's recommended structure.
    HilbertPdcMds,
    /// Hilbert R-tree: Hilbert insertion order *without* the Figure-3 level
    /// expansion, MBR keys, and **no aggregate caching** (the paper's
    /// "Hilbert R-Tree" baseline).
    HilbertRTree,
    /// Conventional R-tree: geometric insertion, MBR keys, and **no
    /// aggregate caching** (the paper's "R-Tree" baseline in Figure 5).
    RTree,
}

impl StoreKind {
    /// Stable wire code (used in serialized shards and the system image).
    pub fn code(self) -> u8 {
        match self {
            StoreKind::Array => 0,
            StoreKind::PdcMbr => 1,
            StoreKind::PdcMds => 2,
            StoreKind::HilbertPdcMbr => 3,
            StoreKind::HilbertPdcMds => 4,
            StoreKind::HilbertRTree => 5,
            StoreKind::RTree => 6,
        }
    }

    /// Inverse of [`StoreKind::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => StoreKind::Array,
            1 => StoreKind::PdcMbr,
            2 => StoreKind::PdcMds,
            3 => StoreKind::HilbertPdcMbr,
            4 => StoreKind::HilbertPdcMds,
            5 => StoreKind::HilbertRTree,
            6 => StoreKind::RTree,
            _ => return None,
        })
    }

    /// All tree-based kinds (everything except [`StoreKind::Array`]).
    pub fn tree_kinds() -> [StoreKind; 6] {
        [
            StoreKind::PdcMbr,
            StoreKind::PdcMds,
            StoreKind::HilbertPdcMbr,
            StoreKind::HilbertPdcMds,
            StoreKind::HilbertRTree,
            StoreKind::RTree,
        ]
    }

    /// Whether this kind keeps (and uses) per-node cached aggregates.
    pub fn caches_aggregates(self) -> bool {
        !matches!(self, StoreKind::RTree | StoreKind::HilbertRTree)
    }

    fn policy(self) -> Option<InsertPolicy> {
        match self {
            StoreKind::Array => None,
            StoreKind::PdcMbr | StoreKind::PdcMds | StoreKind::RTree => {
                Some(InsertPolicy::Geometric)
            }
            StoreKind::HilbertPdcMbr | StoreKind::HilbertPdcMds => {
                Some(InsertPolicy::Hilbert { expand: true })
            }
            StoreKind::HilbertRTree => Some(InsertPolicy::Hilbert { expand: false }),
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            StoreKind::Array => "Array",
            StoreKind::PdcMbr => "PDC-Tree(MBR)",
            StoreKind::PdcMds => "PDC-Tree",
            StoreKind::HilbertPdcMbr => "Hilbert PDC-Tree(MBR)",
            StoreKind::HilbertPdcMds => "Hilbert PDC-Tree",
            StoreKind::HilbertRTree => "Hilbert R-Tree",
            StoreKind::RTree => "R-Tree",
        };
        f.write_str(name)
    }
}

/// Structural statistics of a shard store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Stored items.
    pub items: u64,
    /// Directory nodes (0 for the array store).
    pub dirs: u64,
    /// Leaf nodes (1 for the array store).
    pub leaves: u64,
    /// Height (1 for the array store).
    pub height: u32,
    /// Cumulative tree node splits performed by inserts (0 for the array
    /// store, which never splits nodes).
    pub node_splits: u64,
    /// Leaf column encoding footprint (zeroed for the array store, which has
    /// no columnar leaves).
    pub col_stats: ColumnStats,
}

impl StoreStats {
    /// These statistics as trace-span `key:value` annotations — what a
    /// `tree_exec` span reports about the structure it scanned, including
    /// the per-column encoding wins (`shard_split` events carry these so
    /// heat/audit tooling can see memory savings).
    pub fn annotations(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("items".into(), self.items.to_string()),
            ("dirs".into(), self.dirs.to_string()),
            ("leaves".into(), self.leaves.to_string()),
            ("height".into(), self.height.to_string()),
        ];
        if self.col_stats.columns > 0 {
            let c = &self.col_stats;
            out.push(("enc_dict_cols".into(), format!("{}/{}", c.dict_columns, c.columns)));
            out.push(("enc_dict_entries".into(), c.dict_entries.to_string()));
            out.push(("enc_bits_per_value".into(), format!("{:.1}", c.bits_per_value())));
            out.push(("enc_ratio".into(), format!("{:.2}", c.ratio())));
        }
        out
    }
}

/// Object-safe facade over any shard variant. This is the interface the
/// worker layer programs against, including the three load-balancing
/// operations of §III-E (`split_query`, `split`, `serialize`).
pub trait ShardStore: Send + Sync {
    /// Which variant this is.
    fn kind(&self) -> StoreKind;
    /// The indexed schema.
    fn schema(&self) -> &Schema;
    /// Insert one item (thread-safe).
    fn insert(&self, item: &Item);
    /// Insert many items; uses bottom-up packing when the store is empty.
    fn bulk_insert(&self, items: Vec<Item>);
    /// Aggregate everything inside `q`.
    fn query(&self, q: &QueryBox) -> Aggregate {
        self.query_traced(q).0
    }
    /// Aggregate with traversal statistics.
    fn query_traced(&self, q: &QueryBox) -> (Aggregate, QueryTrace);
    /// Aggregate everything inside `q` using intra-shard parallelism where
    /// the store supports it (tree stores fan large subtrees out over the
    /// global rayon pool). Defaults to the sequential path.
    fn query_par(&self, q: &QueryBox) -> Aggregate {
        self.query(q)
    }
    /// Item count.
    fn len(&self) -> u64;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total aggregate.
    fn total(&self) -> Aggregate;
    /// Bounding rectangle.
    fn mbr(&self) -> Mbr;
    /// Snapshot of all items.
    fn items(&self) -> Vec<Item>;
    /// Structural statistics.
    fn stats(&self) -> StoreStats;
    /// `SplitQuery`: plan a roughly size-balanced hyperplane split.
    fn split_query(&self) -> Option<SplitPlan> {
        SplitPlan::plan_median(self.schema(), &self.items())
    }
    /// `Split`: partition into two fresh stores of the same kind.
    fn split(&self, plan: &SplitPlan) -> (Box<dyn ShardStore>, Box<dyn ShardStore>);
    /// `SerializeShard`: flat blob suitable for network transmission.
    fn serialize(&self) -> Vec<u8> {
        encode_items(self.schema(), &self.items())
    }
}

/// Build an empty store of the given kind.
pub fn build_store(kind: StoreKind, schema: &Schema, cfg: &TreeConfig) -> Box<dyn ShardStore> {
    let mut cfg = cfg.clone();
    cfg.aggregate_cache = cfg.aggregate_cache && kind.caches_aggregates();
    match kind {
        StoreKind::Array => Box::new(ArrayShard { store: ArrayStore::new(schema.clone()), cfg }),
        StoreKind::PdcMbr | StoreKind::HilbertPdcMbr | StoreKind::HilbertRTree | StoreKind::RTree => {
            Box::new(TreeShard::<Mbr>::new(kind, schema.clone(), cfg))
        }
        StoreKind::PdcMds | StoreKind::HilbertPdcMds => {
            Box::new(TreeShard::<Mds>::new(kind, schema.clone(), cfg))
        }
    }
}

/// `DeserializeShard`: rebuild a store of `kind` from a serialized blob.
pub fn deserialize_store(
    kind: StoreKind,
    schema: &Schema,
    cfg: &TreeConfig,
    blob: &[u8],
) -> Result<Box<dyn ShardStore>, String> {
    let items = decode_items(schema, blob)?;
    let store = build_store(kind, schema, cfg);
    store.bulk_insert(items);
    Ok(store)
}

struct TreeShard<K: Key> {
    kind: StoreKind,
    tree: ConcurrentTree<K>,
    cfg: TreeConfig,
}

impl<K: Key> TreeShard<K> {
    fn new(kind: StoreKind, schema: Schema, cfg: TreeConfig) -> Self {
        let policy = kind.policy().expect("tree shard kinds have a policy");
        Self { kind, tree: ConcurrentTree::new(schema, policy, cfg.clone()), cfg }
    }
}

impl<K: Key> ShardStore for TreeShard<K> {
    fn kind(&self) -> StoreKind {
        self.kind
    }
    fn schema(&self) -> &Schema {
        self.tree.schema()
    }
    fn insert(&self, item: &Item) {
        self.tree.insert(item);
    }
    fn bulk_insert(&self, items: Vec<Item>) {
        if self.tree.is_empty() {
            bulk_load(&self.tree, items);
        } else {
            self.tree.insert_batch(&items);
        }
    }
    fn query_traced(&self, q: &QueryBox) -> (Aggregate, QueryTrace) {
        self.tree.query_traced(q)
    }
    fn query_par(&self, q: &QueryBox) -> Aggregate {
        self.tree.query_par(q)
    }
    fn len(&self) -> u64 {
        self.tree.len()
    }
    fn total(&self) -> Aggregate {
        self.tree.total()
    }
    fn mbr(&self) -> Mbr {
        self.tree.mbr()
    }
    fn items(&self) -> Vec<Item> {
        self.tree.items()
    }
    fn stats(&self) -> StoreStats {
        let s = self.tree.structure();
        StoreStats {
            items: self.tree.len(),
            dirs: s.dirs,
            leaves: s.leaves,
            height: s.height,
            node_splits: self.tree.node_splits(),
            col_stats: s.col_stats,
        }
    }
    fn split(&self, plan: &SplitPlan) -> (Box<dyn ShardStore>, Box<dyn ShardStore>) {
        let (left, right): (Vec<Item>, Vec<Item>) =
            self.items().into_iter().partition(|it| !plan.side(it));
        let l = build_store(self.kind, self.schema(), &self.cfg);
        let r = build_store(self.kind, self.schema(), &self.cfg);
        l.bulk_insert(left);
        r.bulk_insert(right);
        (l, r)
    }
}

struct ArrayShard {
    store: ArrayStore,
    cfg: TreeConfig,
}

impl ShardStore for ArrayShard {
    fn kind(&self) -> StoreKind {
        StoreKind::Array
    }
    fn schema(&self) -> &Schema {
        self.store.schema()
    }
    fn insert(&self, item: &Item) {
        self.store.insert(item);
    }
    fn bulk_insert(&self, items: Vec<Item>) {
        self.store.bulk_insert(items);
    }
    fn query_traced(&self, q: &QueryBox) -> (Aggregate, QueryTrace) {
        self.store.query_traced(q)
    }
    fn len(&self) -> u64 {
        self.store.len()
    }
    fn total(&self) -> Aggregate {
        self.store.total()
    }
    fn mbr(&self) -> Mbr {
        self.store.mbr()
    }
    fn items(&self) -> Vec<Item> {
        self.store.items()
    }
    fn stats(&self) -> StoreStats {
        StoreStats {
            items: self.store.len(),
            dirs: 0,
            leaves: 1,
            height: 1,
            node_splits: 0,
            col_stats: ColumnStats::default(),
        }
    }
    fn split(&self, plan: &SplitPlan) -> (Box<dyn ShardStore>, Box<dyn ShardStore>) {
        let (left, right): (Vec<Item>, Vec<Item>) =
            self.store.items().into_iter().partition(|it| !plan.side(it));
        let l = build_store(StoreKind::Array, self.schema(), &self.cfg);
        let r = build_store(StoreKind::Array, self.schema(), &self.cfg);
        l.bulk_insert(left);
        r.bulk_insert(right);
        (l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64, schema: &Schema) -> Vec<Item> {
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        (0..n)
            .map(|i| {
                let coords: Vec<u64> = (0..schema.dims())
                    .map(|d| next() % schema.dim(d).ordinal_end())
                    .collect();
                Item::new(coords, (i % 13) as f64)
            })
            .collect()
    }

    fn all_kinds() -> [StoreKind; 7] {
        [
            StoreKind::Array,
            StoreKind::PdcMbr,
            StoreKind::PdcMds,
            StoreKind::HilbertPdcMbr,
            StoreKind::HilbertPdcMds,
            StoreKind::HilbertRTree,
            StoreKind::RTree,
        ]
    }

    #[test]
    fn every_kind_agrees_with_brute_force() {
        let schema = Schema::uniform(3, 2, 8);
        let data = items(600, &schema);
        let q = QueryBox::from_ranges(vec![(0, 40), (10, 60), (0, 63)]);
        let mut expect = Aggregate::empty();
        for it in data.iter().filter(|it| q.contains_item(it)) {
            expect.add(it.measure);
        }
        for kind in all_kinds() {
            let store = build_store(kind, &schema, &TreeConfig::default());
            for it in &data {
                store.insert(it);
            }
            let got = store.query(&q);
            assert_eq!(got.count, expect.count, "{kind}");
            assert!((got.sum - expect.sum).abs() < 1e-6, "{kind}");
            assert_eq!(store.len(), 600, "{kind}");
        }
    }

    #[test]
    fn serialize_roundtrip_preserves_contents() {
        let schema = Schema::uniform(3, 2, 8);
        let data = items(300, &schema);
        for kind in all_kinds() {
            let store = build_store(kind, &schema, &TreeConfig::default());
            store.bulk_insert(data.clone());
            let blob = store.serialize();
            let back = deserialize_store(kind, &schema, &TreeConfig::default(), &blob).unwrap();
            assert_eq!(back.len(), store.len(), "{kind}");
            let q = QueryBox::all(&schema);
            assert_eq!(back.query(&q).count, store.query(&q).count, "{kind}");
            assert_eq!(back.kind(), kind);
        }
    }

    #[test]
    fn serialize_roundtrip_reencodes_columns() {
        // A migrated shard must not silently degrade to raw columns: the
        // blob carries raw items, so the receiving worker's deserialize path
        // must re-run the (deterministic) encoding pass and land on the same
        // footprint as the sender.
        let schema = Schema::uniform(3, 2, 8);
        // Dictionary-friendly data: 8 distinct values per dimension.
        let data: Vec<Item> = items(2000, &schema)
            .into_iter()
            .map(|it| Item::new(it.coords.iter().map(|c| c % 8).collect(), it.measure))
            .collect();
        let cfg = TreeConfig { rollup_levels: 1, ..TreeConfig::default() };
        let store = build_store(StoreKind::HilbertPdcMds, &schema, &cfg);
        store.bulk_insert(data);
        let sent = store.stats();
        assert!(sent.col_stats.dict_columns > 0, "sender must have encoded columns");
        let back = deserialize_store(StoreKind::HilbertPdcMds, &schema, &cfg, &store.serialize())
            .unwrap();
        let got = back.stats();
        assert_eq!(got.col_stats, sent.col_stats, "migration must preserve the encoding footprint");
        // Rollups are rebuilt on the receiving side as well.
        let q = QueryBox::from_ranges(vec![(0, 7), (0, 63), (0, 63)]);
        let (agg, trace) = back.query_traced(&q);
        let (want, _) = store.query_traced(&q);
        assert_eq!(trace.rollup_hits, 1);
        assert_eq!(agg.count, want.count);
        assert!((agg.sum - want.sum).abs() < 1e-6);
    }

    #[test]
    fn split_partitions_by_hyperplane() {
        let schema = Schema::uniform(2, 2, 16);
        let data = items(500, &schema);
        for kind in [StoreKind::HilbertPdcMds, StoreKind::Array, StoreKind::PdcMbr] {
            let store = build_store(kind, &schema, &TreeConfig::default());
            store.bulk_insert(data.clone());
            let plan = store.split_query().expect("split must be possible");
            let (l, r) = store.split(&plan);
            assert_eq!(l.len() + r.len(), store.len(), "{kind}");
            assert!(!l.is_empty() && !r.is_empty(), "{kind}");
            for it in l.items() {
                assert!(!plan.side(&it));
            }
            for it in r.items() {
                assert!(plan.side(&it));
            }
            // Aggregates are preserved across the split.
            let q = QueryBox::all(&schema);
            let mut merged = l.query(&q);
            merged.merge(&r.query(&q));
            assert_eq!(merged.count, store.query(&q).count, "{kind}");
        }
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in all_kinds() {
            assert_eq!(StoreKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(StoreKind::from_code(99), None);
    }

    #[test]
    fn stats_reflect_structure() {
        let schema = Schema::uniform(2, 2, 8);
        let store = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
        store.bulk_insert(items(1000, &schema));
        let s = store.stats();
        assert_eq!(s.items, 1000);
        assert!(s.leaves > 1);
        assert!(s.height >= 2);
    }
}
