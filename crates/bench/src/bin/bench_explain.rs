//! Query-introspection overhead guard, recorded to `BENCH_explain.json`.
//!
//! The introspection subsystem must be pay-for-use: a query that nobody is
//! ANALYZE-ing pays exactly one extra branch per shard touch (the heat-map
//! enabled check), nothing more. This bench drives ingest and query
//! workloads through one long-lived cluster while rotating between three
//! postures — heat tracking off (baseline), heat tracking on with plain
//! queries (the production default), and heat tracking on with ANALYZE'd
//! queries (the debugging posture, measured for reference). The trimmed-mean
//! plain-query throughput with heat on must stay within tolerance of the
//! baseline (default 1%, `EXPLAIN_OVERHEAD_TOLERANCE` to override); the
//! process exits non-zero otherwise.
//!
//! Each round runs the three postures back to back in a rotating order, so
//! the slow throughput decay from tree growth lands on every posture
//! equally and cancels from the trimmed mean.
//!
//! `--no-run` skips the timing runs and instead smoke-tests the plan
//! pipeline on a tiny cluster: runs a workload, ANALYZEs a query, and
//! verifies the assembled plan is internally consistent and round-trips
//! through both encodings. Used by CI's bench-smoke step.

use std::time::Instant;

use volap::{ClientSession, Cluster, QueryPlan, VolapConfig};
use volap_data::DataGen;
use volap_dims::{Item, QueryBox, Schema};

const ITEMS_PER_SEGMENT: usize = 10_000;
const QUERIES_PER_SEGMENT: usize = 40;
const ROUNDS: usize = 12; // divisible by 3: each posture sits in each slot equally
const TRIM: usize = 2;

/// `(inserts/s, queries/s)` for one measurement segment. `analyze` swaps
/// the query loop to the ANALYZE'd path.
fn segment(client: &ClientSession, items: &[Item], q: &QueryBox, analyze: bool) -> (f64, f64) {
    let t = Instant::now();
    for item in items {
        client.insert(item).expect("insert");
    }
    let ingest_rate = items.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..QUERIES_PER_SEGMENT {
        if analyze {
            client.query_analyze(q).expect("analyze");
        } else {
            client.query(q).expect("query");
        }
    }
    let query_rate = QUERIES_PER_SEGMENT as f64 / t.elapsed().as_secs_f64();
    (ingest_rate, query_rate)
}

fn trimmed_mean(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let kept = &v[TRIM..v.len() - TRIM];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn smoke() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 31, 1.2);
    client.bulk_insert(gen.items(500)).expect("bulk");
    let q = QueryBox::all(&schema);
    let (agg, _) = client.query(&q).expect("query");
    let (a_agg, shards, plan) = client.query_analyze(&q).expect("analyze");
    assert_eq!(a_agg.count, agg.count, "smoke: ANALYZE changed the aggregate");
    assert_eq!(shards as usize, plan.executed_shards().len(), "smoke: plan shard count");
    assert!(plan.totals().nodes_visited > 0, "smoke: plan carries traversal counters");
    assert_eq!(
        QueryPlan::decode(&plan.encode()).expect("smoke: binary decode"),
        plan,
        "smoke: binary round trip lost data"
    );
    assert_eq!(
        QueryPlan::from_json(&plan.to_json()).expect("smoke: JSON parse"),
        plan,
        "smoke: JSON round trip lost data"
    );
    cluster.shutdown();
    println!(
        "explain smoke OK: plan over {shards} shard(s) assembled, both encodings lossless"
    );
}

fn main() {
    let env = volap_bench::BenchEnv::setup("bench_explain");
    if env.no_run {
        smoke();
        return;
    }
    let tolerance: f64 = std::env::var("EXPLAIN_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    // The history sampler has its own overhead gate (bench_health); keep
    // its background wakeups out of this subsystem's measurement.
    cfg.history_capacity = 0;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let heat = cluster.obs().heat().clone();
    let q = QueryBox::all(&schema);
    let mut gen = DataGen::new(&schema, 37, 1.3);

    // Warm up threads, allocator, and the first tree levels untimed.
    for _ in 0..2 {
        segment(&client, &gen.items(ITEMS_PER_SEGMENT), &q, false);
    }

    // Postures: (heat enabled, analyze queries).
    const CONFIGS: [(bool, bool); 3] = [(false, false), (true, false), (true, true)];
    let mut ingest = [Vec::new(), Vec::new(), Vec::new()];
    let mut query = [Vec::new(), Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        for slot in 0..3 {
            let which = (round + slot) % 3;
            let (heat_on, analyze) = CONFIGS[which];
            heat.set_enabled(heat_on);
            let (i_rate, q_rate) = segment(&client, &gen.items(ITEMS_PER_SEGMENT), &q, analyze);
            ingest[which].push(i_rate);
            query[which].push(q_rate);
        }
        println!(
            "round {round:>2}: query off {:>7.0}/s  heat-on {:>7.0}/s  analyze {:>7.0}/s",
            query[0][round], query[1][round], query[2][round]
        );
    }
    heat.set_enabled(true);
    cluster.shutdown();

    let ing = [
        trimmed_mean(ingest[0].clone()),
        trimmed_mean(ingest[1].clone()),
        trimmed_mean(ingest[2].clone()),
    ];
    let qry = [
        trimmed_mean(query[0].clone()),
        trimmed_mean(query[1].clone()),
        trimmed_mean(query[2].clone()),
    ];
    let noise = volap_bench::GateNoise::from_rounds(&query[1], &query[0]);
    let query_overhead = (qry[0] - qry[1]) / qry[0];
    let ingest_overhead = (ing[0] - ing[1]) / ing[0];
    let analyze_overhead = (qry[0] - qry[2]) / qry[0];
    let ok = query_overhead <= tolerance;
    println!(
        "query:  off {:.0}/s  heat-on {:.0}/s  analyze {:.0}/s (trimmed means)",
        qry[0], qry[1], qry[2]
    );
    println!(
        "ingest: off {:.0}/s  heat-on {:.0}/s  analyze-segment {:.0}/s (trimmed means)",
        ing[0], ing[1], ing[2]
    );
    println!(
        "ANALYZE-off query overhead {:.2}% (tolerance {:.0}%) {}",
        query_overhead * 100.0,
        tolerance * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    noise.report(query_overhead);
    let json = format!(
        "{{\n  \"bench\": \"explain_overhead\",\n  {},\n  \
         {},\n  \
         \"items_per_segment\": {ITEMS_PER_SEGMENT},\n  \
         \"queries_per_segment\": {QUERIES_PER_SEGMENT},\n  \"rounds\": {ROUNDS},\n  \
         \"query_per_s\": {{\"heat_off\": {:.0}, \"heat_on\": {:.0}, \"analyze\": {:.0}}},\n  \
         \"ingest_per_s\": {{\"heat_off\": {:.0}, \"heat_on\": {:.0}, \"analyze_segment\": {:.0}}},\n  \
         \"query_overhead_frac_heat_on\": {query_overhead:.4},\n  \
         \"ingest_overhead_frac_heat_on\": {ingest_overhead:.4},\n  \
         \"query_overhead_frac_analyze\": {analyze_overhead:.4},\n  \
         {},\n  \
         \"tolerance_frac\": {tolerance},\n  \"within_tolerance\": {ok}\n}}\n",
        env.json_fields(),
        env.headline("query_overhead_frac_heat_on", (query_overhead * 1e4).round() / 1e4, false),
        qry[0], qry[1], qry[2], ing[0], ing[1], ing[2],
        noise.json_fragment()
    );
    std::fs::write("BENCH_explain.json", &json).expect("write BENCH_explain.json");
    println!("wrote BENCH_explain.json");
    if !ok {
        std::process::exit(1);
    }
}
