//! Exporters: Prometheus-style text exposition and a JSON document, each
//! with a parser so snapshots **round-trip** — `volap-stat` and CI validate
//! output by re-parsing it, and tests assert exact equality.
//!
//! Floating-point values are written with Rust's shortest-round-trip
//! `Display`, so `parse::<f64>()` recovers them bit-exactly; `u64` counters
//! are written as integers and never pass through `f64`.

use crate::account::{AccountingSnapshot, CostVec, DimTop, PrincipalTotals, TopEntry};
use crate::audit::BalanceDecision;
use crate::events::Event;
use crate::health::ComponentHealth;
use crate::heat::HeatEntry;
use crate::history::{Frame, SeriesDef};
use crate::json::{self, escape as json_escape, Json};
use crate::lock::LockClassSnapshot;
use crate::registry::{HistogramSnapshot, MetricId, ScalarSnapshot};
use crate::snapshot::Snapshot;
use crate::staleness::StalenessSnapshot;
use crate::trace::{SpanRecord, Trace};

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn label_block(id: &MetricId, extra: Option<(&str, String)>) -> String {
    let mut pairs = Vec::new();
    if let Some((k, v)) = &id.label {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(&v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        *last = Some(name.to_string());
    }
}

/// Render the metric part of a snapshot as Prometheus text exposition.
/// Renders [`Snapshot::metrics_only`], so capture time, uptime, history
/// ring totals, and per-component health states appear as the synthetic
/// `volap_captured_unix_microseconds` / `volap_uptime_microseconds` /
/// `volap_history_*` / `volap_health_state{component=..}` series.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let snap = snap.metrics_only();
    let mut out = String::new();
    let mut last = None;
    for c in &snap.counters {
        type_line(&mut out, &mut last, &c.id.name, "counter");
        out.push_str(&format!("{}{} {}\n", c.id.name, label_block(&c.id, None), c.value));
    }
    for g in &snap.gauges {
        type_line(&mut out, &mut last, &g.id.name, "gauge");
        out.push_str(&format!("{}{} {}\n", g.id.name, label_block(&g.id, None), g.value));
    }
    for h in &snap.histograms {
        type_line(&mut out, &mut last, &h.id.name, "histogram");
        for &(le, count) in &h.buckets {
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                h.id.name,
                label_block(&h.id, Some(("le", format!("{le}")))),
                count
            ));
        }
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            h.id.name,
            label_block(&h.id, Some(("le", "+Inf".to_string()))),
            h.count
        ));
        out.push_str(&format!(
            "{}_sum{} {}\n",
            h.id.name,
            label_block(&h.id, None),
            h.sum_seconds
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            h.id.name,
            label_block(&h.id, None),
            h.count
        ));
    }
    out
}

/// Parse one `name{k="v",...}` prefix into `(name, labels)`.
fn parse_series(s: &str) -> Result<(String, Vec<(String, String)>), String> {
    match s.find('{') {
        None => Ok((s.to_string(), Vec::new())),
        Some(open) => {
            let name = s[..open].to_string();
            let rest = &s[open + 1..];
            let close = rest.rfind('}').ok_or_else(|| format!("unclosed label block: {s}"))?;
            let mut labels = Vec::new();
            let body = &rest[..close];
            let mut i = 0;
            let bytes = body.as_bytes();
            while i < bytes.len() {
                let eq = body[i..].find('=').ok_or_else(|| format!("bad label in {s}"))? + i;
                let key = body[i..eq].trim_start_matches(',').to_string();
                if bytes.get(eq + 1) != Some(&b'"') {
                    return Err(format!("label value not quoted: {s}"));
                }
                // Find the closing unescaped quote.
                let mut j = eq + 2;
                while j < bytes.len() {
                    if bytes[j] == b'\\' {
                        j += 2;
                        continue;
                    }
                    if bytes[j] == b'"' {
                        break;
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(format!("unterminated label value: {s}"));
                }
                labels.push((key, unescape_label(&body[eq + 2..j])));
                i = j + 1;
                if bytes.get(i) == Some(&b',') {
                    i += 1;
                }
            }
            Ok((name, labels))
        }
    }
}

/// Parse text exposition produced by [`to_prometheus`] back into the metric
/// part of a [`Snapshot`] (events and staleness samples have no exposition
/// form). Any malformed line is an error — this is the validator CI runs.
pub fn from_prometheus(text: &str) -> Result<Snapshot, String> {
    let mut types: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut snap = Snapshot::default();
    // Histograms are assembled incrementally keyed by id.
    let mut open_histos: Vec<HistogramSnapshot> = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or("TYPE line missing name")?;
            let kind = parts.next().ok_or("TYPE line missing kind")?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown metric type {kind}"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments
        }
        let sp = line.rfind(' ').ok_or_else(|| format!("no value on line: {line}"))?;
        let (series, value) = (&line[..sp], line[sp + 1..].trim());
        let (full_name, labels) = parse_series(series)?;

        // Histogram component lines end in _bucket/_sum/_count and their base
        // name carries TYPE histogram.
        let histo_base = ["_bucket", "_sum", "_count"].iter().find_map(|suf| {
            full_name
                .strip_suffix(suf)
                .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                .map(|base| (base.to_string(), *suf))
        });

        if let Some((base, suffix)) = histo_base {
            let id_labels: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            if id_labels.len() > 1 {
                return Err(format!("more than one id label on {line}"));
            }
            let id = MetricId { name: base, label: id_labels.into_iter().next() };
            let slot = match open_histos.iter_mut().find(|h| h.id == id) {
                Some(h) => h,
                None => {
                    open_histos.push(HistogramSnapshot {
                        id,
                        count: 0,
                        sum_seconds: 0.0,
                        buckets: Vec::new(),
                    });
                    open_histos.last_mut().unwrap()
                }
            };
            match suffix {
                "_bucket" => {
                    let le = &labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| format!("bucket without le: {line}"))?
                        .1;
                    let count: u64 =
                        value.parse().map_err(|e| format!("bad bucket count {value}: {e}"))?;
                    if le != "+Inf" {
                        let le: f64 =
                            le.parse().map_err(|e| format!("bad le {le}: {e}"))?;
                        slot.buckets.push((le, count));
                    }
                }
                "_sum" => {
                    slot.sum_seconds =
                        value.parse().map_err(|e| format!("bad sum {value}: {e}"))?;
                }
                "_count" => {
                    slot.count = value.parse().map_err(|e| format!("bad count {value}: {e}"))?;
                }
                _ => unreachable!(),
            }
            continue;
        }

        if labels.len() > 1 {
            return Err(format!("more than one label on {line}"));
        }
        let id = MetricId { name: full_name.clone(), label: labels.into_iter().next() };
        match types.get(&full_name).map(String::as_str) {
            Some("counter") => snap.counters.push(ScalarSnapshot {
                id,
                value: value.parse().map_err(|e| format!("bad counter {value}: {e}"))?,
            }),
            Some("gauge") => snap.gauges.push(ScalarSnapshot {
                id,
                value: value.parse().map_err(|e| format!("bad gauge {value}: {e}"))?,
            }),
            Some(other) => return Err(format!("{full_name}: unexpected sample for {other}")),
            None => return Err(format!("sample before TYPE line: {line}")),
        }
    }
    snap.histograms = open_histos;
    Ok(snap)
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

fn json_label(id: &MetricId) -> String {
    match &id.label {
        Some((k, v)) => format!("[\"{}\",\"{}\"]", json_escape(k), json_escape(v)),
        None => "null".to_string(),
    }
}

/// Render a full snapshot (metrics + events + staleness + history +
/// health) as JSON. Lossless: [`from_json`] recovers the exact input.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = format!(
        "{{\n  \"captured_unix_us\": {},\n  \"uptime_us\": {},\n  \"counters\": [",
        snap.captured_unix_us, snap.uptime_us
    );
    let mut first = true;
    for c in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"label\": {}, \"value\": {}}}",
            json_escape(&c.id.name),
            json_label(&c.id),
            c.value
        ));
    }
    out.push_str("\n  ],\n  \"gauges\": [");
    first = true;
    for g in &snap.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"label\": {}, \"value\": {}}}",
            json_escape(&g.id.name),
            json_label(&g.id),
            g.value
        ));
    }
    out.push_str("\n  ],\n  \"histograms\": [");
    first = true;
    for h in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let buckets: Vec<String> =
            h.buckets.iter().map(|(le, c)| format!("[{le},{c}]")).collect();
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"label\": {}, \"count\": {}, \"sum_seconds\": {}, \"buckets\": [{}]}}",
            json_escape(&h.id.name),
            json_label(&h.id),
            h.count,
            h.sum_seconds,
            buckets.join(",")
        ));
    }
    out.push_str("\n  ],\n  \"events\": [");
    first = true;
    for e in &snap.events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"seq\": {}, \"ts_us\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
            e.seq,
            e.ts_us,
            json_escape(&e.kind),
            json_escape(&e.detail)
        ));
    }
    out.push_str("\n  ],\n  \"heat\": [");
    first = true;
    for h in &snap.heat {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"shard\": {}, \"worker\": \"{}\", \"items\": {}, \
             \"inserts_total\": {}, \"queries_total\": {}, \"insert_rate\": {}, \
             \"query_rate\": {}, \"volume_frac\": {}}}",
            h.shard,
            json_escape(&h.worker),
            h.items,
            h.inserts_total,
            h.queries_total,
            h.insert_rate,
            h.query_rate,
            h.volume_frac
        ));
    }
    out.push_str("\n  ],\n  \"audit\": [");
    first = true;
    for d in &snap.audit {
        if !first {
            out.push(',');
        }
        first = false;
        let inputs: Vec<String> = d
            .inputs
            .iter()
            .map(|(k, v)| format!("[\"{}\",\"{}\"]", json_escape(k), json_escape(v)))
            .collect();
        let results: Vec<String> = d.result_shards.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!(
            "\n    {{\"seq\": {}, \"ts_us\": {}, \"action\": \"{}\", \"shard\": {}, \
             \"src\": \"{}\", \"dest\": \"{}\", \"inputs\": [{}], \
             \"result_shards\": [{}], \"outcome\": \"{}\", \"duration_us\": {}}}",
            d.seq,
            d.ts_us,
            json_escape(&d.action),
            d.shard,
            json_escape(&d.src),
            json_escape(&d.dest),
            inputs.join(","),
            results.join(","),
            json_escape(&d.outcome),
            d.duration_us
        ));
    }
    out.push_str("\n  ],\n  \"locks\": [");
    first = true;
    for l in &snap.locks {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"class\": \"{}\", \"rank\": {}, \"acquisitions\": {}, \
             \"contended\": {}, \"wait_count\": {}, \"wait_sum_seconds\": {}, \
             \"hold_count\": {}, \"hold_sum_seconds\": {}}}",
            json_escape(&l.class),
            l.rank,
            l.acquisitions,
            l.contended,
            l.wait_count,
            l.wait_sum_seconds,
            l.hold_count,
            l.hold_sum_seconds
        ));
    }
    let samples: Vec<String> =
        snap.staleness.samples_seconds.iter().map(|s| format!("{s}")).collect();
    out.push_str(&format!(
        "\n  ],\n  \"staleness\": {{\"count\": {}, \"samples_seconds\": [{}]}},",
        snap.staleness.count,
        samples.join(",")
    ));
    out.push_str(&format!(
        "\n  \"history\": {{\"interval_us\": {}, \"capacity\": {}, \"dropped\": {}, \"series\": [",
        snap.history.interval_us, snap.history.capacity, snap.history.dropped
    ));
    first = true;
    for s in &snap.history.series {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"key\": \"{}\", \"kind\": \"{}\"}}",
            json_escape(&s.key),
            s.kind.as_str()
        ));
    }
    out.push_str("\n  ], \"frames\": [");
    first = true;
    for f in &snap.history.frames {
        if !first {
            out.push(',');
        }
        first = false;
        let values: Vec<String> = f.values.iter().map(|v| format!("{v}")).collect();
        out.push_str(&format!(
            "\n    {{\"seq\": {}, \"start_us\": {}, \"end_us\": {}, \"values\": [{}]}}",
            f.seq,
            f.start_us,
            f.end_us,
            values.join(",")
        ));
    }
    out.push_str("\n  ]},\n  \"health\": [");
    first = true;
    for h in &snap.health {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"component\": \"{}\", \"rule\": \"{}\", \"selector\": \"{}\", \
             \"state\": \"{}\", \"value\": {}, \"z_score\": {}, \"anomalous\": {}, \
             \"transitions\": {}, \"since_us\": {}}}",
            json_escape(&h.component),
            json_escape(&h.rule),
            json_escape(&h.selector),
            h.state.as_str(),
            h.value,
            h.z_score,
            u64::from(h.anomalous),
            h.transitions,
            h.since_us
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"accounting\": {{\"enabled\": {}, \"topk\": {}, \"decay\": {}, \
         \"principals\": [",
        u64::from(snap.accounting.enabled),
        snap.accounting.topk,
        snap.accounting.decay
    ));
    first = true;
    for p in &snap.accounting.principals {
        if !first {
            out.push(',');
        }
        first = false;
        let cost: Vec<String> = p.cost.as_array().iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "\n    {{\"principal\": \"{}\", \"requests\": {}, \"cost\": [{}]}}",
            json_escape(&p.principal),
            p.requests,
            cost.join(",")
        ));
    }
    out.push_str("\n  ], \"top\": [");
    first = true;
    for t in &snap.accounting.top {
        if !first {
            out.push(',');
        }
        first = false;
        let entries: Vec<String> = t
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"principal\": \"{}\", \"count\": {}, \"err\": {}}}",
                    json_escape(&e.principal),
                    e.count,
                    e.err
                )
            })
            .collect();
        out.push_str(&format!(
            "\n    {{\"dim\": \"{}\", \"offered\": {}, \"entries\": [{}]}}",
            json_escape(&t.dim),
            t.offered,
            entries.join(",")
        ));
    }
    out.push_str("\n  ]}\n}\n");
    out
}

fn parse_id(v: &Json) -> Result<MetricId, String> {
    let name = v.get("name")?.str()?.to_string();
    let label = match v.get("label")? {
        Json::Null => None,
        Json::Arr(pair) if pair.len() == 2 => {
            Some((pair[0].str()?.to_string(), pair[1].str()?.to_string()))
        }
        _ => return Err("label must be null or a [key, value] pair".into()),
    };
    Ok(MetricId { name, label })
}

/// Parse JSON produced by [`to_json`] back into a full [`Snapshot`].
pub fn from_json(text: &str) -> Result<Snapshot, String> {
    let root = json::parse(text)?;
    let mut snap = Snapshot::default();
    for c in root.get("counters")?.arr()? {
        snap.counters.push(ScalarSnapshot { id: parse_id(c)?, value: c.get("value")?.num()? });
    }
    for g in root.get("gauges")?.arr()? {
        snap.gauges.push(ScalarSnapshot { id: parse_id(g)?, value: g.get("value")?.num()? });
    }
    for h in root.get("histograms")?.arr()? {
        let mut buckets = Vec::new();
        for b in h.get("buckets")?.arr()? {
            let pair = b.arr()?;
            if pair.len() != 2 {
                return Err("bucket must be [le, count]".into());
            }
            buckets.push((pair[0].num()?, pair[1].num()?));
        }
        snap.histograms.push(HistogramSnapshot {
            id: parse_id(h)?,
            count: h.get("count")?.num()?,
            sum_seconds: h.get("sum_seconds")?.num()?,
            buckets,
        });
    }
    for e in root.get("events")?.arr()? {
        snap.events.push(Event {
            seq: e.get("seq")?.num()?,
            ts_us: e.get("ts_us")?.num()?,
            kind: e.get("kind")?.str()?.to_string(),
            detail: e.get("detail")?.str()?.to_string(),
        });
    }
    for h in root.get("heat")?.arr()? {
        snap.heat.push(HeatEntry {
            shard: h.get("shard")?.num()?,
            worker: h.get("worker")?.str()?.to_string(),
            items: h.get("items")?.num()?,
            inserts_total: h.get("inserts_total")?.num()?,
            queries_total: h.get("queries_total")?.num()?,
            insert_rate: h.get("insert_rate")?.num()?,
            query_rate: h.get("query_rate")?.num()?,
            volume_frac: h.get("volume_frac")?.num()?,
        });
    }
    for d in root.get("audit")?.arr()? {
        let mut inputs = Vec::new();
        for pair in d.get("inputs")?.arr()? {
            let kv = pair.arr()?;
            if kv.len() != 2 {
                return Err("audit input must be a [key, value] pair".into());
            }
            inputs.push((kv[0].str()?.to_string(), kv[1].str()?.to_string()));
        }
        let mut result_shards = Vec::new();
        for s in d.get("result_shards")?.arr()? {
            result_shards.push(s.num()?);
        }
        snap.audit.push(BalanceDecision {
            seq: d.get("seq")?.num()?,
            ts_us: d.get("ts_us")?.num()?,
            action: d.get("action")?.str()?.to_string(),
            shard: d.get("shard")?.num()?,
            src: d.get("src")?.str()?.to_string(),
            dest: d.get("dest")?.str()?.to_string(),
            inputs,
            result_shards,
            outcome: d.get("outcome")?.str()?.to_string(),
            duration_us: d.get("duration_us")?.num()?,
        });
    }
    for l in root.get("locks")?.arr()? {
        snap.locks.push(LockClassSnapshot {
            class: l.get("class")?.str()?.to_string(),
            rank: l.get("rank")?.num()?,
            acquisitions: l.get("acquisitions")?.num()?,
            contended: l.get("contended")?.num()?,
            wait_count: l.get("wait_count")?.num()?,
            wait_sum_seconds: l.get("wait_sum_seconds")?.num()?,
            hold_count: l.get("hold_count")?.num()?,
            hold_sum_seconds: l.get("hold_sum_seconds")?.num()?,
        });
    }
    let st = root.get("staleness")?;
    let mut samples = Vec::new();
    for s in st.get("samples_seconds")?.arr()? {
        samples.push(s.num()?);
    }
    snap.staleness = StalenessSnapshot { count: st.get("count")?.num()?, samples_seconds: samples };
    snap.captured_unix_us = root.get("captured_unix_us")?.num()?;
    snap.uptime_us = root.get("uptime_us")?.num()?;
    let hist = root.get("history")?;
    snap.history.interval_us = hist.get("interval_us")?.num()?;
    snap.history.capacity = hist.get("capacity")?.num()?;
    snap.history.dropped = hist.get("dropped")?.num()?;
    for s in hist.get("series")?.arr()? {
        snap.history.series.push(SeriesDef {
            key: s.get("key")?.str()?.to_string(),
            kind: s.get("kind")?.str()?.parse()?,
        });
    }
    for f in hist.get("frames")?.arr()? {
        let mut values = Vec::new();
        for v in f.get("values")?.arr()? {
            values.push(v.num()?);
        }
        snap.history.frames.push(Frame {
            seq: f.get("seq")?.num()?,
            start_us: f.get("start_us")?.num()?,
            end_us: f.get("end_us")?.num()?,
            values,
        });
    }
    for h in root.get("health")?.arr()? {
        let anomalous: u64 = h.get("anomalous")?.num()?;
        snap.health.push(ComponentHealth {
            component: h.get("component")?.str()?.to_string(),
            rule: h.get("rule")?.str()?.to_string(),
            selector: h.get("selector")?.str()?.to_string(),
            state: h.get("state")?.str()?.parse()?,
            value: h.get("value")?.num()?,
            z_score: h.get("z_score")?.num()?,
            anomalous: anomalous != 0,
            transitions: h.get("transitions")?.num()?,
            since_us: h.get("since_us")?.num()?,
        });
    }
    let acc = root.get("accounting")?;
    let enabled: u64 = acc.get("enabled")?.num()?;
    snap.accounting = AccountingSnapshot {
        enabled: enabled != 0,
        topk: acc.get("topk")?.num()?,
        decay: acc.get("decay")?.num()?,
        principals: Vec::new(),
        top: Vec::new(),
    };
    for p in acc.get("principals")?.arr()? {
        let mut cost = [0u64; crate::account::COST_DIMS];
        let arr = p.get("cost")?.arr()?;
        if arr.len() != cost.len() {
            return Err(format!("accounting cost must have {} dims", cost.len()));
        }
        for (slot, v) in cost.iter_mut().zip(arr) {
            *slot = v.num()?;
        }
        snap.accounting.principals.push(PrincipalTotals {
            principal: p.get("principal")?.str()?.to_string(),
            requests: p.get("requests")?.num()?,
            cost: CostVec::from_array(cost),
        });
    }
    for t in acc.get("top")?.arr()? {
        let mut entries = Vec::new();
        for e in t.get("entries")?.arr()? {
            entries.push(TopEntry {
                principal: e.get("principal")?.str()?.to_string(),
                count: e.get("count")?.num()?,
                err: e.get("err")?.num()?,
            });
        }
        snap.accounting.top.push(DimTop {
            dim: t.get("dim")?.str()?.to_string(),
            offered: t.get("offered")?.num()?,
            entries,
        });
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// Chrome/Perfetto trace_event JSON
// ---------------------------------------------------------------------------

/// Render traces in the Chrome/Perfetto `trace_event` JSON format: one
/// complete (`"ph": "X"`) event per span, timestamps and durations in
/// microseconds. Load the output in `ui.perfetto.dev` or
/// `chrome://tracing`. Trace and span identity (trace/span/parent ids and
/// the raw annotations) ride in each event's `args`, so the export is
/// **lossless**: [`traces_from_perfetto`] recovers the exact input.
pub fn traces_to_perfetto(traces: &[Trace]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    for trace in traces {
        for s in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let ann: Vec<String> = s
                .annotations
                .iter()
                .map(|(k, v)| format!("[\"{}\",\"{}\"]", json_escape(k), json_escape(v)))
                .collect();
            out.push_str(&format!(
                "\n  {{\"ph\": \"X\", \"name\": \"{}\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": {}, \"tid\": {}, \"args\": {{\"trace_id\": {}, \"span_id\": {}, \
                 \"parent_span_id\": {}, \"end_us\": {}, \"ann\": [{}]}}}}",
                json_escape(&s.name),
                s.start_us,
                s.duration_us(),
                s.trace_id,
                s.span_id,
                s.trace_id,
                s.span_id,
                s.parent_span_id,
                s.end_us,
                ann.join(",")
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Parse Perfetto JSON produced by [`traces_to_perfetto`] back into traces,
/// grouped by `trace_id` in first-seen order. Any malformed or non-`X`
/// event is an error — this is the validator `volap-stat --traces` and CI
/// run over exported traces.
pub fn traces_from_perfetto(text: &str) -> Result<Vec<Trace>, String> {
    let root = json::parse(text)?;
    let mut traces: Vec<Trace> = Vec::new();
    for ev in root.get("traceEvents")?.arr()? {
        let ph = ev.get("ph")?.str()?;
        if ph != "X" {
            return Err(format!("unsupported event phase {ph:?}"));
        }
        let args = ev.get("args")?;
        let mut annotations = Vec::new();
        for pair in args.get("ann")?.arr()? {
            let kv = pair.arr()?;
            if kv.len() != 2 {
                return Err("annotation must be a [key, value] pair".into());
            }
            annotations.push((kv[0].str()?.to_string(), kv[1].str()?.to_string()));
        }
        let start_us: u64 = ev.get("ts")?.num()?;
        let dur: u64 = ev.get("dur")?.num()?;
        let end_us: u64 = args.get("end_us")?.num()?;
        if end_us.saturating_sub(start_us) != dur {
            return Err(format!("dur {dur} disagrees with ts {start_us}..{end_us}"));
        }
        let span = SpanRecord {
            trace_id: args.get("trace_id")?.num()?,
            span_id: args.get("span_id")?.num()?,
            parent_span_id: args.get("parent_span_id")?.num()?,
            name: ev.get("name")?.str()?.to_string(),
            start_us,
            end_us,
            annotations,
        };
        match traces.iter_mut().find(|t| t.trace_id == span.trace_id) {
            Some(t) => t.spans.push(span),
            None => traces.push(Trace { trace_id: span.trace_id, spans: vec![span] }),
        }
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthState;
    use crate::history::{HistorySnapshot, SeriesKind};

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            captured_unix_us: 1_754_000_000_123_456,
            uptime_us: 9_876_543,
            counters: vec![
                ScalarSnapshot { id: MetricId::plain("volap_a_total"), value: 3 },
                ScalarSnapshot {
                    id: MetricId::labeled("volap_b_total", "server", "server-0"),
                    value: u64::MAX,
                },
            ],
            gauges: vec![ScalarSnapshot {
                id: MetricId::labeled("volap_depth", "worker", "w-1"),
                value: -17,
            }],
            histograms: vec![HistogramSnapshot {
                id: MetricId::plain("volap_lat_seconds"),
                count: 5,
                sum_seconds: 0.12345678901234567,
                buckets: vec![(0.0, 0), (1e-9, 1), (3e-9, 5)],
            }],
            events: vec![Event {
                seq: 0,
                ts_us: 12,
                kind: "shard_split".into(),
                detail: "shard=1 \"quoted\"\nline".into(),
            }],
            heat: vec![HeatEntry {
                shard: 4,
                worker: "worker \"w0\"".into(),
                items: 120,
                inserts_total: u64::MAX,
                queries_total: 7,
                insert_rate: 123.456789012345,
                query_rate: 0.25,
                volume_frac: 0.001953125,
            }],
            audit: vec![BalanceDecision {
                seq: 3,
                ts_us: 99,
                action: "migrate".into(),
                shard: 4,
                src: "worker-0".into(),
                dest: "worker \"1\"\n".into(),
                inputs: vec![
                    ("src_load".into(), "31000".into()),
                    ("hi".into(), "25000".into()),
                ],
                result_shards: vec![4],
                outcome: "ok".into(),
                duration_us: 1234,
            }],
            locks: vec![LockClassSnapshot {
                class: "server.index".into(),
                rank: 21,
                acquisitions: u64::MAX,
                contended: 12,
                wait_count: 12,
                wait_sum_seconds: 0.001953125,
                hold_count: 12,
                hold_sum_seconds: 3.25,
            }],
            staleness: StalenessSnapshot { count: 2, samples_seconds: vec![0.001, 0.25] },
            history: HistorySnapshot {
                interval_us: 250_000,
                capacity: 4,
                dropped: 2,
                series: vec![
                    SeriesDef {
                        key: "rate(volap_a_total)".into(),
                        kind: SeriesKind::Rate,
                    },
                    SeriesDef {
                        key: "p99(volap_lat_seconds)".into(),
                        kind: SeriesKind::P99,
                    },
                    SeriesDef {
                        key: "gauge(heat_insert_imbalance)".into(),
                        kind: SeriesKind::Gauge,
                    },
                ],
                frames: vec![
                    Frame { seq: 2, start_us: 500_000, end_us: 750_000, values: vec![3.0, 1e-9] },
                    Frame {
                        seq: 3,
                        start_us: 750_000,
                        end_us: 1_000_000,
                        values: vec![0.0, 3e-9, 1.5],
                    },
                ],
            },
            health: vec![
                ComponentHealth {
                    component: "image_sync".into(),
                    rule: "staleness_p99".into(),
                    selector: "p99(volap_staleness_seconds)".into(),
                    state: HealthState::Degraded,
                    value: 1.25,
                    z_score: 4.5,
                    anomalous: true,
                    transitions: 1,
                    since_us: 750_000,
                },
                ComponentHealth {
                    component: "locks".into(),
                    rule: "contention".into(),
                    selector: "gauge(lock_contention_frac_max)".into(),
                    state: HealthState::Healthy,
                    value: 0.015625,
                    z_score: -0.5,
                    anomalous: false,
                    transitions: 0,
                    since_us: 0,
                },
            ],
            accounting: AccountingSnapshot {
                enabled: true,
                topk: 4,
                decay: 0.9,
                principals: vec![
                    PrincipalTotals {
                        principal: "tenant \"a\"\n".into(),
                        requests: 12,
                        cost: CostVec {
                            rows_scanned: u64::MAX,
                            nodes_visited: 7,
                            rollup_hits: 3,
                            queue_wait_us: 1234,
                            wall_us: 5678,
                            bytes: 4096,
                            net_hops: 9,
                            fanout: 4,
                        },
                    },
                    PrincipalTotals {
                        principal: "tenant-b".into(),
                        requests: 1,
                        cost: CostVec { rows_scanned: 17, ..CostVec::default() },
                    },
                ],
                top: vec![DimTop {
                    dim: "rows_scanned".into(),
                    offered: 123.456789,
                    entries: vec![
                        TopEntry {
                            principal: "tenant \"a\"\n".into(),
                            count: 100.25,
                            err: 0.5,
                        },
                        TopEntry { principal: "tenant-b".into(), count: 17.0, err: 0.0 },
                    ],
                }],
            },
        }
    }

    #[test]
    fn prometheus_round_trip() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let back = from_prometheus(&text).unwrap();
        assert_eq!(back, snap.metrics_only());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample_snapshot();
        let back = from_json(&to_json(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_prometheus("volap_x_total 5").is_err(), "sample before TYPE");
        assert!(from_prometheus("# TYPE volap_x_total counter\nvolap_x_total five").is_err());
        assert!(from_json("{").is_err());
        assert!(from_json("{}").is_err(), "missing keys");
        assert!(from_json(&(to_json(&sample_snapshot()) + "x")).is_err(), "trailing bytes");
    }

    fn sample_traces() -> Vec<Trace> {
        vec![
            Trace {
                trace_id: 7,
                spans: vec![
                    SpanRecord {
                        trace_id: 7,
                        span_id: 1,
                        parent_span_id: 0,
                        name: "server_route".into(),
                        start_us: 10,
                        end_us: 90,
                        annotations: vec![("server".into(), "s0".into())],
                    },
                    SpanRecord {
                        trace_id: 7,
                        span_id: 2,
                        parent_span_id: 1,
                        name: "net_hop".into(),
                        start_us: 12,
                        end_us: 80,
                        annotations: vec![("dest".into(), "w \"quoted\"\n1".into())],
                    },
                ],
            },
            Trace {
                trace_id: 9,
                spans: vec![SpanRecord {
                    trace_id: 9,
                    span_id: 3,
                    parent_span_id: 0,
                    name: "op".into(),
                    start_us: 100,
                    end_us: 100,
                    annotations: Vec::new(),
                }],
            },
        ]
    }

    #[test]
    fn perfetto_round_trip_is_lossless() {
        let traces = sample_traces();
        let text = traces_to_perfetto(&traces);
        let back = traces_from_perfetto(&text).unwrap();
        assert_eq!(back, traces);
    }

    #[test]
    fn malformed_perfetto_is_rejected() {
        assert!(traces_from_perfetto("{").is_err());
        assert!(traces_from_perfetto("{\"traceEvents\": [{\"ph\": \"B\"}]}").is_err());
        let good = traces_to_perfetto(&sample_traces());
        assert!(traces_from_perfetto(&(good.clone() + "x")).is_err(), "trailing bytes");
        // A corrupted duration must not pass the dur/ts consistency check.
        let bad = good.replace("\"dur\": 80", "\"dur\": 81");
        assert!(traces_from_perfetto(&bad).is_err());
    }
}
