//! Property tests for materialized hierarchy-level rollups: a store with
//! rollups answers every query — aligned (rollup-served) or not (leaf
//! scan) — with the same aggregate as a rollup-less store and the
//! brute-force oracle, and the invariant survives shard splits and
//! serialize/deserialize migration.

use proptest::prelude::*;
use volap_dims::{Aggregate, DimPath, Item, QueryBox, Schema};
use volap_tree::{build_store, deserialize_store, ShardStore, StoreKind, TreeConfig};

fn schema() -> Schema {
    // 3 dims × 2 levels of fanout 4: level-1 cells span 4 ordinals, both
    // rollup levels fit far under the cell-key width gate.
    Schema::uniform(3, 2, 4)
}

fn items_strategy() -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec((prop::collection::vec(0u64..16, 3), 0u32..100), 1..250)
        .prop_map(|raw| raw.into_iter().map(|(c, m)| Item::new(c, m as f64)).collect())
}

/// Hierarchy-aligned query: per dim a root / level-1 / leaf path. These are
/// the shapes rollups exist for.
fn aligned_query_strategy() -> impl Strategy<Value = QueryBox> {
    prop::collection::vec((0usize..=2, 0u64..16), 3).prop_map(|per_dim| {
        let s = schema();
        let paths: Vec<DimPath> = per_dim
            .into_iter()
            .enumerate()
            .map(|(d, (level, v))| match level {
                0 => DimPath::root(d),
                1 => DimPath::new(d, vec![v % 4]),
                _ => DimPath::new(d, vec![(v / 4) % 4, v % 4]),
            })
            .collect();
        QueryBox::from_paths(&s, &paths)
    })
}

/// Arbitrary ranges — almost never aligned, so these exercise the
/// fall-through to the ordinary traversal.
fn ragged_query_strategy() -> impl Strategy<Value = QueryBox> {
    prop::collection::vec((0u64..16, 0u64..16), 3)
        .prop_map(|v| QueryBox::from_ranges(v.into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect()))
}

fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
    let mut a = Aggregate::empty();
    for it in items.iter().filter(|it| q.contains_item(it)) {
        a.add(it.measure);
    }
    a
}

fn build(items: &[Item], rollup_levels: usize) -> Box<dyn ShardStore> {
    let cfg = TreeConfig { leaf_cap: 8, dir_cap: 4, rollup_levels, ..TreeConfig::default() };
    let store = build_store(StoreKind::HilbertPdcMds, &schema(), &cfg);
    for it in items {
        store.insert(it);
    }
    store
}

/// Exact count/min/max, approximate sum: the rollup accumulates measures in
/// cell order, the leaf scan in traversal order, so the f64 sums may differ
/// by rounding but nothing else.
fn assert_agg_matches(got: &Aggregate, want: &Aggregate) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.count, want.count);
    prop_assert!((got.sum - want.sum).abs() < 1e-6);
    if want.count > 0 {
        prop_assert_eq!(got.min.to_bits(), want.min.to_bits());
        prop_assert_eq!(got.max.to_bits(), want.max.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rollup-equipped stores agree with a rollup-less store and the oracle
    /// on aligned and ragged queries alike, and constrained level-1-aligned
    /// queries are actually served by the rollup table.
    #[test]
    fn rollup_answers_equal_leaf_scans(
        items in items_strategy(),
        aligned in prop::collection::vec(aligned_query_strategy(), 1..5),
        ragged in prop::collection::vec(ragged_query_strategy(), 1..5),
    ) {
        let plain = build(&items, 0);
        for levels in [1usize, 2] {
            let rolled = build(&items, levels);
            for q in aligned.iter().chain(ragged.iter()) {
                let (agg, trace) = rolled.query_traced(q);
                let want = brute(&items, q);
                assert_agg_matches(&agg, &want)?;
                assert_agg_matches(&plain.query(q), &want)?;
                let s = schema();
                let should_hit = q.constrains_any(&s)
                    && (1..=levels).any(|l| q.aligned_at_level(&s, l));
                prop_assert_eq!(
                    trace.rollup_hits,
                    u64::from(should_hit),
                    "query {:?} at {} level(s)", &q.ranges, levels
                );
                if should_hit {
                    prop_assert_eq!(trace.nodes_visited, 0, "rollup answers must not walk");
                }
            }
        }
    }

    /// Splitting a rollup-equipped shard yields two shards whose rollups are
    /// consistent: merged halves equal the oracle, and aligned queries are
    /// still rollup-served on both sides.
    #[test]
    fn rollups_survive_shard_splits(
        items in items_strategy(),
        queries in prop::collection::vec(aligned_query_strategy(), 1..5),
    ) {
        let store = build(&items, 1);
        if let Some(plan) = store.split_query() {
            let (left, right) = store.split(&plan);
            prop_assert_eq!(left.len() + right.len(), items.len() as u64);
            for q in &queries {
                let (la, lt) = left.query_traced(q);
                let (ra, rt) = right.query_traced(q);
                let mut merged = la;
                merged.merge(&ra);
                assert_agg_matches(&merged, &brute(&items, q))?;
                let s = schema();
                if q.constrains_any(&s) && q.aligned_at_level(&s, 1) {
                    prop_assert!(lt.rollup_hits == 1 && rt.rollup_hits == 1,
                        "split halves must keep serving aligned queries from rollups");
                }
            }
        }
    }

    /// Migration (serialize → deserialize on the receiver) rebuilds the
    /// rollup table from the item stream: same answers, still rollup-served.
    #[test]
    fn rollups_survive_migration(
        items in items_strategy(),
        queries in prop::collection::vec(aligned_query_strategy(), 1..5),
    ) {
        let cfg = TreeConfig { leaf_cap: 8, dir_cap: 4, rollup_levels: 1, ..TreeConfig::default() };
        let sender = build(&items, 1);
        let blob = sender.serialize();
        let receiver = deserialize_store(StoreKind::HilbertPdcMds, &schema(), &cfg, &blob)
            .expect("self-serialized shard deserializes");
        prop_assert_eq!(receiver.len(), items.len() as u64);
        for q in &queries {
            let (agg, trace) = receiver.query_traced(q);
            assert_agg_matches(&agg, &brute(&items, q))?;
            let s = schema();
            if q.constrains_any(&s) && q.aligned_at_level(&s, 1) {
                prop_assert_eq!(trace.rollup_hits, 1);
            }
        }
    }
}
