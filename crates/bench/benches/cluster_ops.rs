//! Criterion microbenchmarks: full-stack client operation round trips.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use volap::{Cluster, VolapConfig};
use volap_data::{DataGen, QueryGen};
use volap_dims::Schema;

fn bench_cluster_rtt(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.manager_enabled = false; // fixed topology for stable numbers
    cfg.sync_period = Duration::from_millis(200);
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 6, 1.5);
    let preload = gen.items(20_000);
    for it in &preload {
        client.insert(it).expect("insert");
    }
    let mut qg = QueryGen::new(&schema, 7, 0.65);
    let queries: Vec<_> = (0..32).map(|_| qg.query(&preload)).collect();

    let mut group = c.benchmark_group("cluster");
    group.throughput(Throughput::Elements(1));
    let mut items = gen.items(100_000).into_iter().cycle();
    group.bench_function("client_insert_rtt", |b| {
        b.iter(|| client.insert(&items.next().unwrap()).expect("insert"))
    });
    let mut qi = 0usize;
    group.bench_function("client_query_rtt", |b| {
        b.iter(|| {
            let q = &queries[qi % queries.len()];
            qi += 1;
            client.query(q).expect("query").0.count
        })
    });
    group.finish();
    cluster.shutdown();
}

criterion_group!(benches, bench_cluster_rtt);
criterion_main!(benches);
