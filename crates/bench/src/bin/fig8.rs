//! Figure 8: throughput and latency vs workload mix (insert percentage) at
//! a fixed database size, per query-coverage band.
//!
//! Paper setup: N = 1 billion, p = 20, m = 2, mixes 0/25/50/75/100 %
//! inserts. Scaled: N below, p = 8. Expected shape: throughput
//! interpolates roughly linearly between the pure-query and pure-insert
//! endpoints (insertion ≈ 3× faster than querying); query performance is
//! nearly identical across coverage bands ("coverage resilience").

use std::time::Duration;

use volap::{Cluster, VolapConfig};
use volap_bench::{drive, quick_mode, scaled, LatencyStats};
use volap_data::{mixed_stream, CoverageBand, DataGen, Op, QueryGen};
use volap_dims::Schema;

fn main() {
    let schema = Schema::tpcds();
    let preload = scaled(120_000, 15_000);
    let ops_per_cell = scaled(20_000, 3_000);
    let sessions = 6;

    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 8;
    cfg.servers = 2;
    cfg.max_shard_items = scaled(20_000, 4_000) as u64;
    cfg.sync_period = Duration::from_millis(40);
    println!("# Figure 8: performance vs workload mix (N = {preload}, p = {}, m = {})", cfg.workers, cfg.servers);
    if quick_mode() {
        println!("# (quick mode)");
    }
    let cluster = Cluster::start(cfg);

    // Preload the database.
    let mut gen = DataGen::new(&schema, 8800, 1.5);
    let preload_items = gen.items(preload);
    let ops: Vec<Op> = preload_items.iter().cloned().map(Op::Insert).collect();
    drive(&cluster, sessions, &ops);
    std::thread::sleep(Duration::from_millis(500)); // let balancing settle

    // Coverage-banded query pools.
    let sample: Vec<_> = preload_items.iter().take(20_000).cloned().collect();
    let mut qg = QueryGen::new(&schema, 8801, 0.65);
    let bins = qg.binned(&sample, scaled(60, 20), 400_000);

    println!(
        "{:>6} {:<8} {:>14} {:>14} {:>12} {:>12}",
        "mix%", "band", "tput_ops_s", "q_tput_ops_s", "q_lat_ms", "i_lat_ms"
    );
    for mix in [0.0, 0.25, 0.5, 0.75, 1.0] {
        for (b, band) in CoverageBand::all().iter().enumerate() {
            if mix >= 1.0 && b > 0 {
                continue; // pure-insert row reported once
            }
            if bins[b].is_empty() {
                continue;
            }
            let stream = mixed_stream(&mut gen, &bins[b], mix, ops_per_cell, 8810 + b as u64);
            let res = drive(&cluster, sessions, &stream);
            let q_lat = LatencyStats::from_samples(res.query_lat.clone());
            let i_lat = LatencyStats::from_samples(res.insert_lat.clone());
            let q_tput = if res.query_lat.is_empty() {
                0.0
            } else {
                res.query_lat.len() as f64 / res.elapsed.as_secs_f64()
            };
            println!(
                "{:>6.0} {:<8} {:>14.0} {:>14.0} {:>12.4} {:>12.4}",
                mix * 100.0,
                if mix >= 1.0 { "-".to_string() } else { band.to_string() },
                res.throughput(),
                q_tput,
                q_lat.mean * 1e3,
                i_lat.mean * 1e3
            );
        }
    }
    println!("# paper shape: linear tput-vs-mix; insert ~3x faster than query; bands nearly identical");
    cluster.shutdown();
}
