//! The SLO health watchdog: declarative rules over history series, with
//! hysteresis state machines and EWMA anomaly baselines.
//!
//! Each [`HealthRule`] names a component, a [`crate::history`] series key
//! as its selector, and `degraded`/`critical` thresholds with a hysteresis
//! window. The watchdog runs once per sampler interval, right after the
//! frame is captured: it reads the newest frame (rate-kind deltas are
//! normalized to per-second values first), classifies it against the
//! thresholds, and advances a per-rule `Healthy → Degraded → Critical`
//! state machine that only transitions after the classification has held
//! for `hysteresis` **consecutive** frames — a one-frame spike can't flap
//! a component, and a sustained breach transitions exactly once. Every
//! transition emits a `health_transition` event into the shared event ring.
//!
//! Independently of the static thresholds, each rule keeps an EWMA mean
//! and an EWMA squared-deviation of its selector (both [`RateEwma`]s), and
//! flags the component anomalous when the latest value sits more than
//! [`ANOMALY_Z`] deviations from the baseline — the flash-crowd detector:
//! a sudden shift trips the flag (and a `health_anomaly` event) even while
//! the absolute value is still inside the SLO.

use std::sync::{Arc, Mutex};

use crate::events::EventLog;
use crate::heat::RateEwma;
use crate::history::{History, SeriesKind};
use std::time::Duration;

/// Component health, ordered: comparisons pick the worst state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Inside every threshold.
    #[default]
    Healthy,
    /// Past `degraded_above` for a full hysteresis window.
    Degraded,
    /// Past `critical_above` for a full hysteresis window.
    Critical,
}

impl HealthState {
    /// Stable string form (events, JSON export).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }

    /// Numeric severity for the `volap_health_state` Prometheus gauge:
    /// 0 healthy, 1 degraded, 2 critical.
    pub fn score(self) -> i64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Critical => 2,
        }
    }
}

impl std::str::FromStr for HealthState {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "healthy" => Ok(HealthState::Healthy),
            "degraded" => Ok(HealthState::Degraded),
            "critical" => Ok(HealthState::Critical),
            other => Err(format!("unknown health state {other:?}")),
        }
    }
}

/// One declarative SLO rule (the `VolapConfig::health_rules` knob).
#[derive(Clone, Debug, PartialEq)]
pub struct HealthRule {
    /// Rule name (unique per component by convention).
    pub name: String,
    /// Component this rule guards; `Cluster::health()` reports per rule,
    /// the Prometheus gauge folds to the worst state per component.
    pub component: String,
    /// History series key, e.g. `p99(volap_staleness_seconds)` or
    /// `gauge(lock_contention_frac_max)`. Rate-kind series are compared as
    /// per-second rates, everything else raw.
    pub selector: String,
    /// Values above this (for a full window) classify as Degraded.
    pub degraded_above: f64,
    /// Values above this (for a full window) classify as Critical.
    pub critical_above: f64,
    /// Consecutive frames a classification must hold before the state
    /// machine transitions. `1` transitions on the first breaching frame.
    pub hysteresis: u32,
}

impl HealthRule {
    /// The shipped default rule set, sized for the scaled-down cluster
    /// defaults (see DESIGN.md §16 for the table and rationale).
    pub fn defaults() -> Vec<HealthRule> {
        let rule = |name: &str, component: &str, selector: &str, d: f64, c: f64, h: u32| {
            HealthRule {
                name: name.into(),
                component: component.into(),
                selector: selector.into(),
                degraded_above: d,
                critical_above: c,
                hysteresis: h,
            }
        };
        vec![
            rule("staleness_p99", "image_sync", "p99(volap_staleness_seconds)", 1.0, 5.0, 3),
            rule("event_drops", "event_ring", "rate(volap_events_dropped_total)", 10.0, 1000.0, 2),
            rule("contention", "locks", "gauge(lock_contention_frac_max)", 0.6, 0.95, 4),
            rule("heat_imbalance", "balance", "gauge(heat_insert_imbalance)", 8.0, 64.0, 8),
            rule("net_timeouts", "net", "rate(volap_net_timeouts_total)", 1.0, 100.0, 2),
            // Single-principal dominance: one tenant holding > 90% of the
            // decayed rows-scanned weight for 3 consecutive frames is
            // Degraded. The fraction can never exceed 1.0, so the rule
            // never escalates to Critical — a seeded hog transitions the
            // `tenants` component exactly once.
            rule("tenant_dominance", "tenants", "gauge(accounting_dominance_frac)", 0.9, 1.5, 3),
        ]
    }
}

/// Anomaly flag threshold: |z| at or above this flips `anomalous`.
pub const ANOMALY_Z: f64 = 4.0;
/// Frames of baseline warm-up before anomaly flags can fire.
const ANOMALY_WARMUP: u32 = 8;
/// Baseline EWMA half-life, in sampler intervals.
const ANOMALY_HALFLIFE_INTERVALS: f64 = 32.0;

/// One rule's reported health.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentHealth {
    /// Component the rule guards.
    pub component: String,
    /// Rule name.
    pub rule: String,
    /// The rule's history-series selector.
    pub selector: String,
    /// Current state-machine state.
    pub state: HealthState,
    /// Latest evaluated value (per-second for rate selectors).
    pub value: f64,
    /// Z-score of `value` against the rule's EWMA baseline (0 until the
    /// baseline warms up).
    pub z_score: f64,
    /// Whether the latest value sits ≥ [`ANOMALY_Z`] deviations from the
    /// baseline.
    pub anomalous: bool,
    /// State transitions since start (flap detector: a breach held for the
    /// full window bumps this exactly once).
    pub transitions: u64,
    /// Frame-end time (µs since the obs epoch) of the last transition;
    /// 0 while the rule has never transitioned.
    pub since_us: u64,
}

struct RuleState {
    rule: HealthRule,
    /// Cached series index; re-resolved while `None` (series appear as
    /// components first touch their metrics).
    idx: Option<usize>,
    state: HealthState,
    streak_target: HealthState,
    streak: u32,
    transitions: u64,
    since_us: u64,
    value: f64,
    observed: bool,
    base_mean: RateEwma,
    base_var: RateEwma,
    warmup: u32,
    z: f64,
    anomalous: bool,
}

impl RuleState {
    fn new(rule: HealthRule) -> Self {
        Self {
            rule,
            idx: None,
            state: HealthState::Healthy,
            streak_target: HealthState::Healthy,
            streak: 0,
            transitions: 0,
            since_us: 0,
            value: 0.0,
            observed: false,
            base_mean: RateEwma::default(),
            base_var: RateEwma::default(),
            warmup: 0,
            z: 0.0,
            anomalous: false,
        }
    }

    fn classify(&self, v: f64) -> HealthState {
        if v > self.rule.critical_above {
            HealthState::Critical
        } else if v > self.rule.degraded_above {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        }
    }
}

struct WatchdogInner {
    rules: Vec<RuleState>,
    last_seq: Option<u64>,
}

/// The per-interval rule evaluator. Cheap to clone (shared).
#[derive(Clone)]
pub struct Watchdog {
    inner: Arc<Mutex<WatchdogInner>>,
}

impl Watchdog {
    /// Build a watchdog over a rule set.
    pub fn new(rules: Vec<HealthRule>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(WatchdogInner {
                rules: rules.into_iter().map(RuleState::new).collect(),
                last_seq: None,
            })),
        }
    }

    /// Evaluate every rule against the newest history frame, advancing the
    /// hysteresis state machines and emitting `health_transition` /
    /// `health_anomaly` events. Idempotent per frame (re-evaluating the
    /// same seq is a no-op), and a no-op before the first frame exists.
    pub fn evaluate(&self, history: &History, events: &EventLog) {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        history.with_latest(|series, frame| {
            if inner.last_seq == Some(frame.seq) {
                return;
            }
            inner.last_seq = Some(frame.seq);
            let dt = Duration::from_secs_f64(frame.dt_seconds().max(1e-9));
            let halflife = Duration::from_secs_f64(
                frame.dt_seconds().max(1e-9) * ANOMALY_HALFLIFE_INTERVALS,
            );
            for rs in inner.rules.iter_mut() {
                if rs.idx.is_none() {
                    rs.idx = series.iter().position(|s| s.key == rs.rule.selector);
                }
                let Some(i) = rs.idx else { continue };
                let Some(&raw) = frame.values.get(i) else { continue };
                let v = match series[i].kind {
                    SeriesKind::Rate => raw / frame.dt_seconds().max(1e-9),
                    _ => raw,
                };
                rs.value = v;
                rs.observed = true;

                // Anomaly baseline: z against the EWMA mean/deviation from
                // *before* this frame, then fold the frame in.
                if rs.warmup >= ANOMALY_WARMUP {
                    let mean = rs.base_mean.rate();
                    let std = rs.base_var.rate().max(0.0).sqrt();
                    let floor = (0.05 * rs.rule.degraded_above.abs()).max(1e-12);
                    let z = (v - mean) / std.max(floor);
                    rs.z = z.clamp(-1e6, 1e6);
                    let now_anomalous = rs.z.abs() >= ANOMALY_Z;
                    if now_anomalous && !rs.anomalous {
                        events.record(
                            "health_anomaly",
                            format!(
                                "component={} rule={} value={v:.6} mean={mean:.6} z={:.2}",
                                rs.rule.component, rs.rule.name, rs.z
                            ),
                        );
                    }
                    rs.anomalous = now_anomalous;
                } else {
                    rs.warmup += 1;
                }
                let dev = v - rs.base_mean.rate();
                rs.base_mean.update_value(v, dt, halflife);
                rs.base_var.update_value(dev * dev, dt, halflife);

                // Hysteresis state machine: a classification must hold for
                // `hysteresis` consecutive frames to transition.
                let target = rs.classify(v);
                if target == rs.state {
                    rs.streak_target = rs.state;
                    rs.streak = 0;
                } else {
                    if target == rs.streak_target {
                        rs.streak += 1;
                    } else {
                        rs.streak_target = target;
                        rs.streak = 1;
                    }
                    if rs.streak >= rs.rule.hysteresis.max(1) {
                        let from = rs.state;
                        rs.state = target;
                        rs.streak = 0;
                        rs.transitions += 1;
                        rs.since_us = frame.end_us;
                        events.record(
                            "health_transition",
                            format!(
                                "component={} rule={} from={} to={} value={v:.6} seq={}",
                                rs.rule.component,
                                rs.rule.name,
                                from.as_str(),
                                target.as_str(),
                                frame.seq
                            ),
                        );
                    }
                }
            }
        });
    }

    /// Current per-rule health, sorted by component then rule.
    pub fn snapshot(&self) -> Vec<ComponentHealth> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<ComponentHealth> = inner
            .rules
            .iter()
            .map(|rs| ComponentHealth {
                component: rs.rule.component.clone(),
                rule: rs.rule.name.clone(),
                selector: rs.rule.selector.clone(),
                state: rs.state,
                value: rs.value,
                z_score: rs.z,
                anomalous: rs.anomalous,
                transitions: rs.transitions,
                since_us: rs.since_us,
            })
            .collect();
        out.sort_by(|a, b| (a.component.as_str(), a.rule.as_str()).cmp(&(&b.component, &b.rule)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_ordering_and_strings() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Critical);
        for s in [HealthState::Healthy, HealthState::Degraded, HealthState::Critical] {
            assert_eq!(s.as_str().parse::<HealthState>().unwrap(), s);
        }
        assert!("bogus".parse::<HealthState>().is_err());
        assert_eq!(HealthState::Critical.score(), 2);
    }

    #[test]
    fn default_rules_cover_the_core_components() {
        let rules = HealthRule::defaults();
        assert!(rules.len() >= 4);
        for r in &rules {
            assert!(r.degraded_above < r.critical_above, "{}: thresholds ordered", r.name);
            assert!(r.hysteresis >= 1, "{}: hysteresis at least one frame", r.name);
        }
        assert!(rules.iter().any(|r| r.component == "image_sync"));
        assert!(rules.iter().any(|r| r.component == "locks"));
    }
}
