//! Property-based tests: every tree variant against a brute-force oracle.

use proptest::prelude::*;
use volap_dims::{Aggregate, DimPath, Item, QueryBox, Schema};
use volap_tree::{build_store, SplitPlan, StoreKind, TreeConfig};

fn small_cfg() -> TreeConfig {
    TreeConfig { leaf_cap: 8, dir_cap: 4, ..TreeConfig::default() }
}

fn schema() -> Schema {
    Schema::uniform(3, 2, 4) // 3 dims, 4 bits each: dense enough to collide
}

/// Random items as (coords, measure) tuples.
fn items_strategy(n: usize) -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        (prop::collection::vec(0u64..16, 3), 0u32..100),
        1..=n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(coords, m)| Item::new(coords, m as f64))
            .collect()
    })
}

/// Random query: per-dim either full range or a level-aligned block.
fn query_strategy() -> impl Strategy<Value = QueryBox> {
    prop::collection::vec((0usize..=2, 0u64..16), 3).prop_map(|per_dim| {
        let s = schema();
        let paths: Vec<DimPath> = per_dim
            .into_iter()
            .enumerate()
            .map(|(d, (level, v))| match level {
                0 => DimPath::root(d),
                1 => DimPath::new(d, vec![v % 4]),
                _ => DimPath::new(d, vec![(v / 4) % 4, v % 4]),
            })
            .collect();
        QueryBox::from_paths(&s, &paths)
    })
}

fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
    let mut a = Aggregate::empty();
    for it in items.iter().filter(|it| q.contains_item(it)) {
        a.add(it.measure);
    }
    a
}

fn all_kinds() -> [StoreKind; 7] {
    [
        StoreKind::Array,
        StoreKind::PdcMbr,
        StoreKind::PdcMds,
        StoreKind::HilbertPdcMbr,
        StoreKind::HilbertPdcMds,
        StoreKind::HilbertRTree,
        StoreKind::RTree,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every variant returns exactly the brute-force aggregate for random
    /// data and random hierarchy-aligned queries.
    #[test]
    fn all_variants_match_oracle(items in items_strategy(120), q in query_strategy()) {
        let s = schema();
        let expect = brute(&items, &q);
        for kind in all_kinds() {
            let store = build_store(kind, &s, &small_cfg());
            for it in &items {
                store.insert(it);
            }
            let got = store.query(&q);
            prop_assert_eq!(got.count, expect.count, "{} count", kind);
            prop_assert!((got.sum - expect.sum).abs() < 1e-9, "{} sum", kind);
            if expect.count > 0 {
                prop_assert_eq!(got.min, expect.min, "{} min", kind);
                prop_assert_eq!(got.max, expect.max, "{} max", kind);
            }
        }
    }

    /// Bulk loading and point insertion build query-equivalent stores.
    #[test]
    fn bulk_equals_point(items in items_strategy(150), q in query_strategy()) {
        let s = schema();
        for kind in [StoreKind::HilbertPdcMds, StoreKind::PdcMds, StoreKind::RTree] {
            let bulk = build_store(kind, &s, &small_cfg());
            bulk.bulk_insert(items.clone());
            let point = build_store(kind, &s, &small_cfg());
            for it in &items {
                point.insert(it);
            }
            prop_assert_eq!(bulk.len(), point.len());
            let a = bulk.query(&q);
            let b = point.query(&q);
            prop_assert_eq!(a.count, b.count, "{}", kind);
            prop_assert!((a.sum - b.sum).abs() < 1e-9);
        }
    }

    /// serialize → deserialize is lossless for every variant.
    #[test]
    fn serialize_roundtrip(items in items_strategy(80)) {
        let s = schema();
        for kind in all_kinds() {
            let store = build_store(kind, &s, &small_cfg());
            store.bulk_insert(items.clone());
            let blob = store.serialize();
            let back = volap_tree::deserialize_store(kind, &s, &small_cfg(), &blob).unwrap();
            prop_assert_eq!(back.len(), store.len());
            let q = QueryBox::all(&s);
            let a = back.query(&q);
            let b = store.query(&q);
            prop_assert_eq!(a.count, b.count);
            prop_assert!((a.sum - b.sum).abs() < 1e-9);
        }
    }

    /// Splitting by any legal hyperplane preserves the multiset of items
    /// and partitions strictly by side.
    #[test]
    fn split_partitions_and_preserves(items in items_strategy(100), dim in 0usize..3, t in 0u64..15) {
        let s = schema();
        let store = build_store(StoreKind::HilbertPdcMds, &s, &small_cfg());
        store.bulk_insert(items.clone());
        let plan = SplitPlan { dim, threshold: t };
        let (l, r) = store.split(&plan);
        prop_assert_eq!(l.len() + r.len(), store.len());
        for it in l.items() {
            prop_assert!(it.coords[dim] <= t);
        }
        for it in r.items() {
            prop_assert!(it.coords[dim] > t);
        }
        let q = QueryBox::all(&s);
        let mut merged = l.query(&q);
        merged.merge(&r.query(&q));
        let orig = store.query(&q);
        prop_assert_eq!(merged.count, orig.count);
        prop_assert!((merged.sum - orig.sum).abs() < 1e-9);
    }

    /// The planned median split is always non-degenerate when items differ.
    #[test]
    fn planned_split_is_nondegenerate(items in items_strategy(60)) {
        let s = schema();
        let distinct = items
            .windows(2)
            .any(|w| w[0].coords != w[1].coords)
            || items.len() > 1 && items[0].coords != items[items.len() - 1].coords;
        let store = build_store(StoreKind::HilbertPdcMds, &s, &small_cfg());
        store.bulk_insert(items.clone());
        if let Some(plan) = store.split_query() {
            let (l, r) = store.split(&plan);
            prop_assert!(!l.is_empty() && !r.is_empty(), "planned splits must be non-degenerate");
        } else {
            // Only identical items (or a singleton) may refuse to split.
            let all_same = items.windows(2).all(|w| w[0].coords == w[1].coords);
            prop_assert!(all_same || items.len() < 2, "refused despite distinct items: {distinct}");
        }
    }

    /// The total aggregate equals the sum of all measures regardless of
    /// insertion order.
    #[test]
    fn total_is_order_independent(items in items_strategy(100), seed in any::<u64>()) {
        let s = schema();
        let mut shuffled = items.clone();
        // Fisher-Yates with a simple xorshift.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let a = build_store(StoreKind::HilbertPdcMds, &s, &small_cfg());
        let b = build_store(StoreKind::HilbertPdcMds, &s, &small_cfg());
        for it in &items {
            a.insert(it);
        }
        for it in &shuffled {
            b.insert(it);
        }
        let ta = a.total();
        let tb = b.total();
        prop_assert_eq!(ta.count, tb.count);
        prop_assert!((ta.sum - tb.sum).abs() < 1e-9);
        prop_assert_eq!(ta.min, tb.min);
        prop_assert_eq!(ta.max, tb.max);
    }
}
