//! Probabilistically Bounded Staleness analysis (§IV-F, Figure 10).
//!
//! The paper quantifies *query freshness*: the time between an insert
//! issued on one server and its effect being visible to queries issued on a
//! *different* server (the "elapsed time"). The key structural fact — which
//! the simulation here models exactly as §IV-F does — is that data lives on
//! workers shared by all servers, so an insert is invisible to a remote
//! session only while
//!
//! 1. it is still in flight to its shard (the insert latency), or
//! 2. it *expanded* a shard's bounding box and the remote server's local
//!    image has not yet received that expansion through the periodic
//!    (default 3 s) synchronization.
//!
//! Case 2 is rare (the measured expansion probability drops as the database
//! grows) but bounds the tail: visibility is always achieved within one
//! sync period plus propagation, the paper's "always under 3 seconds".
//!
//! Missed-insert counts follow a thinned Poisson process: inserts arrive at
//! rate λ, each is relevant to a query with probability equal to its
//! coverage `c`, and an insert of age `u` is missed with probability
//! `P[V > u]` where `V` is the visibility delay. The expected number of
//! missed inserts among those at least `e` old is therefore
//! `m(e) = λ · c · E[(V − e)⁺]`, and the miss count is Poisson(m(e)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Monte-Carlo freshness simulator.
#[derive(Debug, Clone)]
pub struct FreshnessSim {
    /// System-wide insert rate λ (inserts / second).
    pub insert_rate: f64,
    /// Query coverage: probability an insert falls in the query region.
    pub coverage: f64,
    /// Server synchronization period (seconds; paper default 3.0).
    pub sync_period: f64,
    /// Watch propagation + remote image-apply latency (seconds).
    pub apply_latency: f64,
    /// Probability an insert expands its shard's bounding box.
    pub expansion_prob: f64,
    /// Empirical insert-latency samples (seconds), e.g. measured from a
    /// cluster run. Must be non-empty.
    pub insert_latency_samples: Vec<f64>,
}

impl FreshnessSim {
    /// Expected missed inserts `m(e)` for queries issued `elapsed` seconds
    /// after the reference insert (Figure 10a's y-axis).
    ///
    /// Sampling is stratified over the two visibility branches (plain
    /// insert latency vs. latency + sync phase for box-expanding inserts),
    /// so even expansion probabilities of 10⁻⁶ are resolved exactly rather
    /// than lost to Monte-Carlo noise.
    pub fn avg_missed(&self, elapsed: f64, trials: usize, seed: u64) -> f64 {
        assert!(!self.insert_latency_samples.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut base_excess = 0.0f64;
        let mut exp_excess = 0.0f64;
        for _ in 0..trials {
            let lat =
                self.insert_latency_samples[rng.gen_range(0..self.insert_latency_samples.len())];
            base_excess += (lat - elapsed).max(0.0);
            // The expansion becomes visible remotely at the issuing server's
            // next periodic push (uniform phase) plus propagation.
            let v = lat + rng.gen::<f64>() * self.sync_period + self.apply_latency;
            exp_excess += (v - elapsed).max(0.0);
        }
        let base = base_excess / trials as f64;
        let exp = exp_excess / trials as f64;
        let mean_excess = (1.0 - self.expansion_prob) * base + self.expansion_prob * exp;
        self.insert_rate * self.coverage * mean_excess
    }

    /// `P[missed = k]` for `k` in `0..=k_max` at the given elapsed time
    /// (Figure 10b): Poisson with mean [`FreshnessSim::avg_missed`].
    pub fn missed_pmf(&self, elapsed: f64, k_max: usize, trials: usize, seed: u64) -> Vec<f64> {
        let m = self.avg_missed(elapsed, trials, seed);
        let mut pmf = Vec::with_capacity(k_max + 1);
        let mut term = (-m).exp(); // P[0]
        pmf.push(term);
        for k in 1..=k_max {
            term *= m / k as f64;
            pmf.push(term);
        }
        pmf
    }

    /// The largest possible visibility delay given `trials` latency samples
    /// — the empirical "consistency always observed in under X seconds"
    /// bound. When expansions are possible at all, the worst case is a
    /// box-expanding insert that just missed a sync push.
    pub fn max_visibility(&self, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_lat = (0..trials)
            .map(|_| {
                self.insert_latency_samples[rng.gen_range(0..self.insert_latency_samples.len())]
            })
            .fold(0.0, f64::max);
        if self.expansion_prob > 0.0 {
            max_lat + self.sync_period + self.apply_latency
        } else {
            max_lat
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FreshnessSim {
        FreshnessSim {
            insert_rate: 50_000.0,
            coverage: 0.5,
            sync_period: 3.0,
            apply_latency: 0.01,
            expansion_prob: 1e-5,
            // Bimodal insert latency: mostly ~1.5 ms, occasional 100 ms
            // stalls — shaped like a loaded-system latency distribution.
            insert_latency_samples: (0..1000)
                .map(|i| if i % 50 == 0 { 0.1 } else { 0.0015 })
                .collect(),
        }
    }

    #[test]
    fn avg_missed_decreases_to_zero() {
        let s = sim();
        let at = |e: f64| s.avg_missed(e, 200_000, 42);
        let m0 = at(0.0);
        let m1 = at(0.25);
        let m2 = at(1.0);
        let m3 = at(3.5);
        assert!(m0 > m1 && m1 > m2, "monotone decreasing: {m0} {m1} {m2}");
        // At e=0 the in-flight inserts dominate: λ·c·E[latency] ≈ 90.
        assert!(m0 > 30.0 && m0 < 300.0, "m0 = {m0}");
        // Past the insert-latency tail only rare expansions remain.
        assert!(m1 < 0.2 * m0, "m(0.25s) must collapse, got {m1} vs {m0}");
        // Beyond sync period + latency nothing can be missed.
        assert!(m3 < 1e-9, "m(3.5s) = {m3}");
    }

    #[test]
    fn pmf_sums_near_one_and_matches_mean() {
        let s = sim();
        let pmf = s.missed_pmf(1.0, 10, 100_000, 7);
        let total: f64 = pmf.iter().sum();
        assert!(total > 0.999, "PMF covers the mass: {total}");
        let mean_from_pmf: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        let m = s.avg_missed(1.0, 100_000, 7);
        assert!((mean_from_pmf - m).abs() < 0.05 + 0.1 * m);
    }

    #[test]
    fn consistency_bound_within_sync_period() {
        let s = sim();
        let max_v = s.max_visibility(500_000, 9);
        // V <= max insert latency + sync period + apply latency.
        assert!(max_v <= 0.1 + 3.0 + 0.01 + 1e-9, "max visibility {max_v}");
        assert!(max_v > 0.0015, "some samples must exceed the common case");
    }

    #[test]
    fn zero_rate_means_zero_missed() {
        let mut s = sim();
        s.insert_rate = 0.0;
        assert_eq!(s.avg_missed(0.0, 1000, 1), 0.0);
        let pmf = s.missed_pmf(0.0, 3, 1000, 1);
        assert!((pmf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_coverage_misses_more() {
        let mut a = sim();
        a.coverage = 0.25;
        let mut b = sim();
        b.coverage = 1.0;
        assert!(b.avg_missed(0.0, 50_000, 3) > 3.0 * a.avg_missed(0.0, 50_000, 3));
    }
}
