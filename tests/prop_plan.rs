//! Property tests for the distributed EXPLAIN/ANALYZE plan encodings: the
//! JSON and binary forms are both lossless for arbitrary plans (including
//! nested forwards and pathological strings), and the binary decoder never
//! panics on arbitrary or truncated input.

use proptest::prelude::*;
use volap::{QueryPlan, ShardExec, WorkerExec};

fn arb_shard_exec() -> impl Strategy<Value = ShardExec> {
    // Traversal counters stay below 2^32 so that summing them across a
    // whole plan (QueryTrace::merge is a checked add) cannot overflow;
    // the id/size/time fields exercise the full u64 domain.
    let counter = 0u64..=u32::MAX as u64;
    (
        (any::<u64>(), any::<u64>(), counter.clone()),
        (counter.clone(), counter.clone(), counter.clone(), counter, any::<u64>()),
    )
        .prop_map(
            |(
                (shard, items, nodes_visited),
                (covered_hits, items_scanned, pruned, rollup_hits, wall_us),
            )| {
                ShardExec {
                    shard,
                    items,
                    nodes_visited,
                    covered_hits,
                    items_scanned,
                    pruned,
                    rollup_hits,
                    wall_us,
                }
            },
        )
}

/// Worker names exercise the JSON escaper: quotes, backslashes, a control
/// character, and multi-byte UTF-8, alongside realistic name characters.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z0-9_\"\\\u{1}\u{e9}\u{4e16}-]{0,12}"
}

fn arb_worker_leaf() -> impl Strategy<Value = WorkerExec> {
    (
        arb_name(),
        prop::collection::vec(any::<u64>(), 0..6),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        prop::collection::vec(arb_shard_exec(), 0..4),
    )
        .prop_map(|(worker, requested, alias_chases, fanout, wall_us, shards)| WorkerExec {
            worker,
            requested,
            alias_chases,
            fanout,
            wall_us,
            shards,
            forwards: vec![],
        })
}

/// Up to `depth` levels of forward nesting — deeper than any stable cluster
/// produces, well under the decoder's forward-depth cap.
fn arb_worker(depth: u32) -> BoxedStrategy<WorkerExec> {
    if depth == 0 {
        return arb_worker_leaf().boxed();
    }
    (arb_worker_leaf(), prop::collection::vec(arb_worker(depth - 1), 0..3))
        .prop_map(|(mut w, forwards)| {
            w.forwards = forwards;
            w
        })
        .boxed()
}

fn arb_plan() -> impl Strategy<Value = QueryPlan> {
    (
        (arb_name(), any::<u64>(), any::<u64>(), any::<u64>()),
        (
            prop::collection::vec(any::<u64>(), 0..8),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(arb_worker(2), 0..3),
        ),
    )
        .prop_map(
            |(
                (server, image_generation, staleness_samples, staleness_p95_us),
                (image_leaves, route_us, wall_us, workers),
            )| QueryPlan {
                server,
                image_generation,
                staleness_samples,
                staleness_p95_us,
                image_leaves,
                route_us,
                wall_us,
                workers,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan_binary_round_trips(plan in arb_plan()) {
        let bytes = plan.encode();
        let back = QueryPlan::decode(&bytes).expect("self-encoded plans decode");
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn plan_json_round_trips(plan in arb_plan()) {
        let json = plan.to_json();
        let back = QueryPlan::from_json(&json).expect("self-encoded JSON parses");
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn plan_totals_and_render_are_consistent(plan in arb_plan()) {
        // totals() equals a manual sum over every shard, forwards included.
        fn walk(w: &WorkerExec, sum: &mut [u64; 5]) {
            for s in &w.shards {
                sum[0] += s.nodes_visited;
                sum[1] += s.covered_hits;
                sum[2] += s.items_scanned;
                sum[3] += s.pruned;
                sum[4] += s.rollup_hits;
            }
            for f in &w.forwards {
                walk(f, sum);
            }
        }
        let mut sum = [0u64; 5];
        for w in &plan.workers {
            walk(w, &mut sum);
        }
        let t = plan.totals();
        prop_assert_eq!(
            [t.nodes_visited, t.covered_hits, t.items_scanned, t.pruned, t.rollup_hits],
            sum
        );
        // The renderer never panics and names the routing server.
        let rendered = plan.render();
        prop_assert!(rendered.contains(plan.server.as_str()));
    }

    #[test]
    fn plan_decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics are not. (The bytes shim aborts on
        // underflow, so every read in the decoder must be length-guarded.)
        let _ = QueryPlan::decode(&bytes);
    }

    #[test]
    fn plan_decode_never_panics_on_truncations(plan in arb_plan()) {
        let bytes = plan.encode();
        for cut in 0..bytes.len() {
            prop_assert!(QueryPlan::decode(&bytes[..cut]).is_err(), "truncated at {} decoded", cut);
        }
    }
}
