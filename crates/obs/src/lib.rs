//! # volap-obs — the cluster observability core
//!
//! A zero-dependency, lock-free-on-the-record-path observability layer for
//! the VOLAP reproduction. The paper's evaluation (Figures 6–10) hinges on
//! per-stage insert/query latency and on the staleness of server images;
//! this crate makes both measurable from a *running* cluster instead of an
//! offline model:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket log2
//!   latency [`Histogram`]s. Registration takes a mutex once; recording is
//!   pure relaxed atomics. A registry-wide switch (the
//!   `VolapConfig::obs_histograms` knob upstream) turns every histogram
//!   into a single load-and-branch.
//! * [`EventLog`] — a bounded ring-buffer log of structured events (shard
//!   splits, migrations, sync rounds, route misses) with per-thread ring
//!   shards and a merge-on-snapshot reader.
//! * [`StalenessProbe`] — an empirical PBS probe: servers stamp box
//!   expansions, sync pushes, and remote image applies, and the probe turns
//!   them into measured expansion-visibility delays — the measured
//!   counterpart of the `FreshnessSim` Monte-Carlo model.
//! * [`Snapshot`] + [`export`] — one coherent view of everything, rendered
//!   as Prometheus text exposition or JSON; both exporters have parsers so
//!   output round-trips and CI can validate it.
//!
//! [`Obs`] bundles the three instruments; the cluster crate owns one `Obs`
//! per deployment (shared through its `ImageStore`) and surfaces it as
//! `Cluster::snapshot()`.

pub mod account;
pub mod audit;
pub mod events;
pub mod export;
pub mod health;
pub mod heat;
pub mod history;
pub mod json;
pub mod lock;
pub mod registry;
pub mod snapshot;
pub mod staleness;
pub mod trace;

pub use account::{
    AccountConfig, Accounting, AccountingSnapshot, CostVec, DimTop, PrincipalId, PrincipalTotals,
    SpaceSaving, TopEntry, COST_DIMS, COST_DIM_NAMES,
};
pub use audit::{AuditLog, BalanceDecision};
pub use events::{Event, EventLog};
pub use health::{ComponentHealth, HealthRule, HealthState, Watchdog};
pub use heat::{HeatEntry, HeatMap, RateEwma};
pub use history::{
    series_key, Frame, History, HistoryConfig, HistorySnapshot, SeriesDef, SeriesKind,
};
pub use lock::{
    CheckMode, LockClass, LockClassSnapshot, LockOrderViolation, ObsMutex, ObsMutexGuard,
    ObsRwLock, ObsRwLockReadGuard, ObsRwLockWriteGuard,
};
pub use registry::{
    bucket_index, bucket_le_seconds, Counter, Gauge, HistView, Histogram, HistogramSnapshot,
    MetricId, MetricView, Registry, ScalarSnapshot, Timer, HIST_BUCKETS,
};
pub use snapshot::Snapshot;
pub use staleness::{StalenessProbe, StalenessSnapshot};
pub use trace::{SpanGuard, SpanRecord, Trace, TraceConfig, TraceCtx, Tracer};

/// Sizing and switches for one [`Obs`] instance.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Whether latency histograms record at all (counters, gauges, events,
    /// and the staleness probe are always on — they are too cheap to gate).
    pub histograms: bool,
    /// Total events retained across the ring shards.
    pub event_capacity: usize,
    /// Whether per-shard heat tracking (EWMA insert/query rates) starts
    /// enabled. Runtime-togglable via [`HeatMap::set_enabled`]; off, the
    /// hot-path cost is one relaxed load and a branch.
    pub heat_enabled: bool,
    /// Total load-balance decisions retained across the audit ring shards.
    pub audit_capacity: usize,
    /// Causal-tracing sizing and sampling (the `VolapConfig::trace_sample` /
    /// `trace_slow_threshold` knobs upstream).
    pub trace: TraceConfig,
    /// Metrics time-series ring sizing (the `VolapConfig::history_interval`
    /// / `history_capacity` knobs upstream). Capture happens only when the
    /// owner drives [`Obs::sample_tick`], typically from a sampler thread.
    pub history: HistoryConfig,
    /// SLO rules the health watchdog evaluates each sampler interval.
    pub health_rules: Vec<HealthRule>,
    /// Per-principal workload accounting sizing and switch (the
    /// `VolapConfig::accounting_*` knobs upstream). Sketch decay advances
    /// once per [`Obs::sample_tick`].
    pub accounting: AccountConfig,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            histograms: true,
            event_capacity: 4096,
            heat_enabled: true,
            audit_capacity: 1024,
            trace: TraceConfig::default(),
            history: HistoryConfig::default(),
            health_rules: HealthRule::defaults(),
            accounting: AccountConfig::default(),
        }
    }
}

/// The bundled observability core one cluster owns. Cheap to clone; clones
/// share all state.
#[derive(Clone)]
pub struct Obs {
    registry: Registry,
    events: EventLog,
    staleness: StalenessProbe,
    tracer: Tracer,
    heat: HeatMap,
    audit: AuditLog,
    history: History,
    watchdog: Watchdog,
    accounting: Accounting,
    epoch: std::time::Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(ObsConfig::default())
    }
}

impl Obs {
    /// Build an observability core.
    pub fn new(cfg: ObsConfig) -> Self {
        let registry = Registry::new(cfg.histograms);
        let staleness = StalenessProbe::new(registry.histogram("volap_staleness_seconds"));
        let epoch = std::time::Instant::now();
        Self {
            registry,
            events: EventLog::new(cfg.event_capacity),
            staleness,
            tracer: Tracer::new(cfg.trace),
            heat: HeatMap::new(cfg.heat_enabled),
            audit: AuditLog::new(cfg.audit_capacity),
            history: History::new(&cfg.history, epoch),
            watchdog: Watchdog::new(cfg.health_rules),
            accounting: Accounting::new(&cfg.accounting),
            epoch,
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The staleness probe.
    pub fn staleness(&self) -> &StalenessProbe {
        &self.staleness
    }

    /// The causal tracer (span collector + slow-query flight recorder).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The per-shard heat map.
    pub fn heat(&self) -> &HeatMap {
        &self.heat
    }

    /// The load-balance decision audit trail.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The metrics time-series ring (empty until [`sample_tick`]s happen).
    ///
    /// [`sample_tick`]: Self::sample_tick
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Current per-rule SLO health, sorted by component then rule.
    pub fn health(&self) -> Vec<ComponentHealth> {
        self.watchdog.snapshot()
    }

    /// The per-principal workload accounting core.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// The instant this core was built; history frame timestamps and
    /// `Snapshot::uptime_us` are measured from it.
    pub fn epoch(&self) -> std::time::Instant {
        self.epoch
    }

    /// One sampler tick: capture a history frame from the live registry /
    /// heat map / event ring, then run the health watchdog over it. Called
    /// by the cluster's sampler thread every `history_interval`; safe (and
    /// a no-op) when the history ring is disabled or zero-capacity.
    pub fn sample_tick(&self) {
        if self.history.capture(&self.registry, &self.heat, &self.events, Some(&self.accounting))
        {
            self.watchdog.evaluate(&self.history, &self.events);
        }
    }

    /// Route lock-order violations into this core's event log as
    /// `lock_order_violation` events. The hook is process-global (lock
    /// telemetry itself is); the cluster installs it once at start.
    pub fn install_lock_hook(&self) {
        let events = self.events.clone();
        lock::set_violation_hook(Some(Box::new(move |v| {
            events.record("lock_order_violation", v.to_string());
        })));
    }

    /// One coherent snapshot of metrics, events, heat, balance decisions,
    /// lock contention, and measured staleness. Lock telemetry is
    /// process-global, so its per-class metrics appear identically in every
    /// core's snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let (mut counters, mut gauges, mut histograms) = self.registry.snapshot();
        let locks = lock::export_into(&mut counters, &mut histograms);
        gauges.push(build_info_gauge());
        counters.sort_by(|a, b| a.id.cmp(&b.id));
        gauges.sort_by(|a, b| a.id.cmp(&b.id));
        histograms.sort_by(|a, b| a.id.cmp(&b.id));
        let captured_unix_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Snapshot {
            captured_unix_us,
            uptime_us: self.epoch.elapsed().as_micros() as u64,
            counters,
            gauges,
            histograms,
            events: self.events.snapshot(),
            heat: self.heat.snapshot(),
            audit: self.audit.snapshot(),
            locks,
            staleness: self.staleness.snapshot(),
            history: self.history.snapshot(),
            health: self.health(),
            accounting: self.accounting.snapshot(),
        }
    }
}

/// The `volap_build_info` gauge: crate version, build profile, and rustc
/// version folded into one label value (the registry carries at most one
/// label pair per metric), with the conventional constant value 1. Present
/// in every [`Obs::snapshot`], so both expositions carry it and the
/// `from_prometheus ∘ to_prometheus` round trip preserves it like any
/// other labeled gauge.
pub fn build_info_gauge() -> ScalarSnapshot<i64> {
    let build = format!(
        "volap {} {} {}",
        env!("CARGO_PKG_VERSION"),
        if cfg!(debug_assertions) { "debug" } else { "release" },
        env!("VOLAP_RUSTC_VERSION"),
    );
    ScalarSnapshot { id: MetricId::labeled("volap_build_info", "build", &build), value: 1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_snapshot_round_trips_through_both_exporters() {
        let obs = Obs::new(ObsConfig::default());
        obs.registry().counter("volap_x_total").add(9);
        obs.registry().gauge_labeled("volap_g", "worker", "w0").set(3);
        obs.registry().histogram("volap_h_seconds").observe_ns(1500);
        obs.events().record("test_event", "k=v".into());
        obs.staleness().expansion(1, "s0");
        obs.staleness().pushed(1, "s0");
        obs.staleness().applied(1, "s1");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("volap_x_total"), 9);
        assert_eq!(snap.staleness.count, 1);
        assert_eq!(snap.events.len(), 1);
        let json_back = export::from_json(&export::to_json(&snap)).unwrap();
        assert_eq!(json_back, snap);
        let prom_back = export::from_prometheus(&export::to_prometheus(&snap)).unwrap();
        assert_eq!(prom_back, snap.metrics_only());
        // The staleness distribution is in the exposition as a histogram.
        assert_eq!(prom_back.histogram("volap_staleness_seconds").unwrap().count, 1);
    }

    #[test]
    fn build_info_gauge_rides_every_snapshot_and_round_trips() {
        let obs = Obs::new(ObsConfig::default());
        let snap = obs.snapshot();
        let info = snap
            .gauges
            .iter()
            .find(|g| g.id.name == "volap_build_info")
            .expect("build info gauge present in every snapshot");
        assert_eq!(info.value, 1, "build info uses the conventional constant value");
        let label = info.id.label.as_ref().expect("build label attached");
        assert_eq!(label.0, "build");
        assert!(label.1.starts_with("volap "), "label folds crate version: {}", label.1);
        assert!(
            label.1.contains("debug") || label.1.contains("release"),
            "label folds the build profile: {}",
            label.1
        );
        assert!(label.1.contains("rustc"), "label folds the rustc version: {}", label.1);
        let prom = export::to_prometheus(&snap);
        assert!(prom.contains("volap_build_info{build="), "exposition carries build info");
        let back = export::from_prometheus(&prom).unwrap();
        assert_eq!(back, snap.metrics_only(), "round trip preserves the gauge");
    }

    #[test]
    fn histograms_knob_disables_recording() {
        let obs = Obs::new(ObsConfig { histograms: false, event_capacity: 64, ..ObsConfig::default() });
        let h = obs.registry().histogram("volap_h_seconds");
        h.observe_ns(5);
        assert_eq!(h.count(), 0);
        // Staleness raw samples still record; only its histogram is gated.
        obs.staleness().expansion(1, "s0");
        obs.staleness().pushed(1, "s0");
        obs.staleness().applied(1, "s1");
        let snap = obs.snapshot();
        assert_eq!(snap.staleness.count, 1);
        assert_eq!(snap.histogram("volap_staleness_seconds").unwrap().count, 0);
    }
}
