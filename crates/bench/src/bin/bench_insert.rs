//! Per-item vs batched ingest benchmark, recorded to `BENCH_insert.json`.
//!
//! Loads the same item stream into a fresh tree through per-item
//! `ConcurrentTree::insert` and through `ConcurrentTree::insert_batch` in
//! fixed-size chunks (the shape a worker sees from a coalescing server),
//! prints items/sec for both at a small (10 k) and a large (500 k) tree,
//! and writes machine-readable results so the ingest trajectory is tracked
//! from PR to PR. Single-threaded on purpose: the batched speedup must come
//! from sorted runs and amortized descents, not from extra cores.

use std::time::Instant;

use volap_data::DataGen;
use volap_dims::{Item, Mds, Schema};
use volap_tree::{ConcurrentTree, InsertPolicy, TreeConfig};

const CHUNK: usize = 65_536;

struct Row {
    items: usize,
    item_per_s: f64,
    batch_per_s: f64,
}

fn fresh(schema: &Schema) -> ConcurrentTree<Mds> {
    ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, TreeConfig::default())
}

fn load(tree: &ConcurrentTree<Mds>, items: &[Item], batched: bool) -> f64 {
    let t = Instant::now();
    if batched {
        for chunk in items.chunks(CHUNK) {
            tree.insert_batch(chunk);
        }
    } else {
        for it in items {
            tree.insert(it);
        }
    }
    items.len() as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let schema = Schema::tpcds();
    let rounds = 3;
    // Deliberately a one-thread bench (the batched win comes from sorted
    // runs, not parallelism); BenchEnv still parses the common flags and
    // records the machine size.
    let env = volap_bench::BenchEnv::setup("bench_insert");
    let cores = env.cores;
    let mut rows = Vec::new();
    println!("# insert_item_vs_batch ({cores} cores, chunk {CHUNK}, best of {rounds}, 1 thread)");
    println!("{:<10} {:>14} {:>14} {:>9}", "items", "item/s", "batch/s", "speedup");
    for n in [10_000usize, 500_000] {
        let mut gen = DataGen::new(&schema, 11, 1.5);
        let items = gen.items(n);
        let (mut item_per_s, mut batch_per_s) = (0f64, 0f64);
        for _ in 0..rounds {
            let a = fresh(&schema);
            item_per_s = item_per_s.max(load(&a, &items, false));
            let b = fresh(&schema);
            batch_per_s = batch_per_s.max(load(&b, &items, true));
            assert_eq!(a.len(), b.len(), "batched load diverged");
            let (ta, tb) = (a.total(), b.total());
            assert_eq!(ta.count, tb.count, "batched totals diverged");
            assert!((ta.sum - tb.sum).abs() < 1e-6, "batched sums diverged");
        }
        println!(
            "{n:<10} {item_per_s:>14.0} {batch_per_s:>14.0} {:>8.2}x",
            batch_per_s / item_per_s
        );
        rows.push(Row { items: n, item_per_s, batch_per_s });
    }
    let best = rows.last().expect("at least one size measured");
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"insert_item_vs_batch\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n  \"threads\": 1,\n"));
    json.push_str(&format!(
        "  {},\n",
        env.headline("batch_per_s", best.batch_per_s.round(), true)
    ));
    json.push_str(&format!("  \"chunk\": {CHUNK},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"items\": {}, \"item_per_s\": {:.0}, \"batch_per_s\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.items,
            r.item_per_s,
            r.batch_per_s,
            r.batch_per_s / r.item_per_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_insert.json", &json).expect("write BENCH_insert.json");
    println!("wrote BENCH_insert.json");
}
