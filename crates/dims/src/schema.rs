//! Dimension hierarchy schemas and their bit layouts.

use std::sync::Arc;

/// One level of a dimension hierarchy.
///
/// `fanout` is the maximum number of children a node at the level above can
/// have (e.g. a `Month` level has fanout 12). The level is laid out in
/// `ceil(log2(fanout))` bits of the dimension's leaf ordinal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelDef {
    /// Human-readable level name ("Year", "State", …).
    pub name: String,
    /// Maximum branching at this level; must be at least 2.
    pub fanout: u64,
}

impl LevelDef {
    /// Create a level definition.
    pub fn new(name: impl Into<String>, fanout: u64) -> Self {
        assert!(fanout >= 2, "level fanout must be at least 2");
        Self { name: name.into(), fanout }
    }

    /// Number of ordinal bits this level occupies.
    #[inline]
    pub fn bits(&self) -> u32 {
        64 - (self.fanout - 1).leading_zeros()
    }
}

/// A dimension: a named hierarchy of levels, root (ALL) excluded.
///
/// Level 1 is the coarsest explicit level; level `depth()` is the leaf
/// level. A full hierarchical path therefore has `depth()` components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionDef {
    /// Dimension name ("Store", "Date", …).
    pub name: String,
    /// Levels from coarsest to finest.
    pub levels: Vec<LevelDef>,
    /// `shifts[l]`: how far left the component of level `l+1` sits in the
    /// leaf ordinal (number of bits below it).
    shifts: Vec<u32>,
    /// Total ordinal bits of this dimension.
    total_bits: u32,
}

impl DimensionDef {
    /// Create a dimension from its levels (coarsest first).
    pub fn new(name: impl Into<String>, levels: Vec<LevelDef>) -> Self {
        assert!(!levels.is_empty(), "dimension must have at least one level");
        let total_bits: u32 = levels.iter().map(LevelDef::bits).sum();
        assert!(total_bits <= 64, "dimension ordinal exceeds 64 bits");
        let mut shifts = Vec::with_capacity(levels.len());
        let mut below = total_bits;
        for l in &levels {
            below -= l.bits();
            shifts.push(below);
        }
        Self { name: name.into(), levels, shifts, total_bits }
    }

    /// Number of hierarchy levels (excluding the implicit ALL root).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total bits of the leaf ordinal.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Bits occupied by level `level` (1-based).
    #[inline]
    pub fn level_bits(&self, level: usize) -> u32 {
        self.levels[level - 1].bits()
    }

    /// Number of ordinal bits *below* level `level` (1-based); the subtree of
    /// a path ending at `level` spans `2^remaining_bits(level)` ordinals.
    /// `remaining_bits(0)` is the whole dimension.
    #[inline]
    pub fn remaining_bits(&self, level: usize) -> u32 {
        if level == 0 {
            self.total_bits
        } else {
            self.shifts[level - 1]
        }
    }

    /// Exclusive upper bound of the ordinal space (`2^total_bits`), saturated
    /// at `u64::MAX` for 64-bit dimensions.
    #[inline]
    pub fn ordinal_end(&self) -> u64 {
        if self.total_bits == 64 {
            u64::MAX
        } else {
            1u64 << self.total_bits
        }
    }

    /// Compose a full path (one component per level) into a leaf ordinal.
    pub fn ordinal(&self, components: &[u64]) -> u64 {
        assert_eq!(components.len(), self.depth(), "path must reach leaf level");
        let mut ord = 0u64;
        for (i, (&c, l)) in components.iter().zip(&self.levels).enumerate() {
            assert!(c < l.fanout, "component {c} exceeds fanout {} at level {}", l.fanout, i + 1);
            ord |= c << self.shifts[i];
        }
        ord
    }

    /// Decompose a leaf ordinal into its per-level components.
    pub fn components(&self, ordinal: u64) -> Vec<u64> {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| (ordinal >> self.shifts[i]) & mask(l.bits()))
            .collect()
    }

    /// Inclusive ordinal range `[lo, hi]` of the hierarchy node reached by
    /// the path prefix `components` (may be shorter than `depth()`; empty
    /// means the ALL root).
    pub fn prefix_range(&self, components: &[u64]) -> (u64, u64) {
        assert!(components.len() <= self.depth(), "path deeper than hierarchy");
        let mut prefix = 0u64;
        for (i, (&c, l)) in components.iter().zip(&self.levels).enumerate() {
            assert!(c < l.fanout, "component {c} exceeds fanout {} at level {}", l.fanout, i + 1);
            prefix |= c << self.shifts[i];
        }
        let rem = self.remaining_bits(components.len());
        let span = mask(rem);
        (prefix, prefix | span)
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A full hierarchy schema: the ordered list of dimensions plus derived
/// layout tables. Cheaply cloneable (`Arc` inside); every tree, shard and
/// server shares one.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    dims: Vec<DimensionDef>,
    /// Maximum level bit width across dimensions, per (1-based) level; used
    /// by the Figure-3 expansion.
    max_level_bits: Vec<u32>,
    /// Per-dimension MDS entry cap (see [`crate::Mds`]).
    mds_cap: usize,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.dims == other.inner.dims
    }
}
impl Eq for Schema {}

impl Schema {
    /// Build a schema from dimensions. `mds_cap` is the maximum number of
    /// describing boxes an [`crate::Mds`] keeps per dimension before
    /// coarsening (the DC-tree's compaction rule); 4 is a good default.
    pub fn new(dims: Vec<DimensionDef>, mds_cap: usize) -> Self {
        assert!(!dims.is_empty(), "schema must have at least one dimension");
        assert!(dims.len() <= 64, "schema supports at most 64 dimensions");
        assert!(mds_cap >= 1, "MDS cap must be at least 1");
        let max_depth = dims.iter().map(DimensionDef::depth).max().unwrap();
        let max_level_bits = (1..=max_depth)
            .map(|l| {
                dims.iter()
                    .filter(|d| d.depth() >= l)
                    .map(|d| d.level_bits(l))
                    .max()
                    .unwrap()
            })
            .collect();
        Self { inner: Arc::new(SchemaInner { dims, max_level_bits, mds_cap }) }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.inner.dims.len()
    }

    /// The dimension definitions.
    #[inline]
    pub fn dimensions(&self) -> &[DimensionDef] {
        &self.inner.dims
    }

    /// Dimension `d` (0-based).
    #[inline]
    pub fn dim(&self, d: usize) -> &DimensionDef {
        &self.inner.dims[d]
    }

    /// Maximum bit width of (1-based) `level` across all dimensions that
    /// reach it.
    #[inline]
    pub fn max_level_bits(&self, level: usize) -> u32 {
        self.inner.max_level_bits[level - 1]
    }

    /// Deepest hierarchy across dimensions.
    #[inline]
    pub fn max_depth(&self) -> usize {
        self.inner.max_level_bits.len()
    }

    /// MDS per-dimension entry cap.
    #[inline]
    pub fn mds_cap(&self) -> usize {
        self.inner.mds_cap
    }

    /// Natural logarithm of the total ordinal-space volume; used to
    /// normalize box volumes so they stay in `[0, 1]` even at 64 dimensions.
    pub fn log_domain_volume(&self) -> f64 {
        self.inner
            .dims
            .iter()
            .map(|d| d.total_bits() as f64 * std::f64::consts::LN_2)
            .sum()
    }

    /// The TPC-DS schema of the paper's Figure 1: 8 hierarchical dimensions.
    ///
    /// Fanouts are modelled after the TPC-DS specification's domain sizes
    /// (e.g. 12 months, 31 days, 20 income bands); exact store/city counts
    /// are scale-factor dependent in TPC-DS, so representative values are
    /// used. What the experiments depend on is the hierarchy *shape*.
    pub fn tpcds() -> Self {
        let dims = vec![
            DimensionDef::new(
                "Store",
                vec![
                    LevelDef::new("Country", 16),
                    LevelDef::new("State", 32),
                    LevelDef::new("City", 64),
                ],
            ),
            DimensionDef::new(
                "Customer",
                vec![
                    LevelDef::new("BYear", 64),
                    LevelDef::new("BMonth", 12),
                    LevelDef::new("BDay", 31),
                ],
            ),
            DimensionDef::new(
                "Item",
                vec![
                    LevelDef::new("Category", 16),
                    LevelDef::new("Class", 16),
                    LevelDef::new("Brand", 32),
                ],
            ),
            DimensionDef::new(
                "Date",
                vec![
                    LevelDef::new("Year", 16),
                    LevelDef::new("Month", 12),
                    LevelDef::new("Day", 31),
                ],
            ),
            DimensionDef::new(
                "Address",
                vec![
                    LevelDef::new("Country", 16),
                    LevelDef::new("State", 32),
                    LevelDef::new("City", 64),
                ],
            ),
            DimensionDef::new("Household", vec![LevelDef::new("IncomeBand", 20)]),
            DimensionDef::new("Promotion", vec![LevelDef::new("Name", 256)]),
            DimensionDef::new(
                "Time",
                vec![LevelDef::new("Hour", 24), LevelDef::new("Minute", 60)],
            ),
        ];
        Self::new(dims, 4)
    }

    /// A uniform synthetic schema: `d` dimensions, each with `depth` levels
    /// of the given `fanout`. Used by the paper's dimension-scaling
    /// experiment (Figure 5, d = 4…64).
    pub fn uniform(d: usize, depth: usize, fanout: u64) -> Self {
        let dims = (0..d)
            .map(|i| {
                DimensionDef::new(
                    format!("Dim{i}"),
                    (1..=depth)
                        .map(|l| LevelDef::new(format!("L{l}"), fanout))
                        .collect(),
                )
            })
            .collect();
        Self::new(dims, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_bits_are_ceil_log2() {
        assert_eq!(LevelDef::new("x", 2).bits(), 1);
        assert_eq!(LevelDef::new("x", 3).bits(), 2);
        assert_eq!(LevelDef::new("x", 12).bits(), 4);
        assert_eq!(LevelDef::new("x", 16).bits(), 4);
        assert_eq!(LevelDef::new("x", 17).bits(), 5);
        assert_eq!(LevelDef::new("x", 31).bits(), 5);
        assert_eq!(LevelDef::new("x", 256).bits(), 8);
    }

    #[test]
    fn ordinal_roundtrip() {
        let dim = DimensionDef::new(
            "Date",
            vec![LevelDef::new("Year", 16), LevelDef::new("Month", 12), LevelDef::new("Day", 31)],
        );
        assert_eq!(dim.total_bits(), 4 + 4 + 5);
        let ord = dim.ordinal(&[5, 11, 30]);
        assert_eq!(dim.components(ord), vec![5, 11, 30]);
        // Year occupies the top 4 bits.
        assert_eq!(ord >> 9, 5);
    }

    #[test]
    fn prefix_ranges_nest() {
        let dim = DimensionDef::new(
            "Date",
            vec![LevelDef::new("Year", 16), LevelDef::new("Month", 12), LevelDef::new("Day", 31)],
        );
        let (alo, ahi) = dim.prefix_range(&[]);
        let (ylo, yhi) = dim.prefix_range(&[7]);
        let (mlo, mhi) = dim.prefix_range(&[7, 3]);
        let (dlo, dhi) = dim.prefix_range(&[7, 3, 14]);
        assert_eq!((alo, ahi), (0, (1 << 13) - 1));
        assert!(alo <= ylo && yhi <= ahi);
        assert!(ylo <= mlo && mhi <= yhi);
        assert!(mlo <= dlo && dhi <= mhi);
        assert_eq!(dlo, dhi, "leaf-level prefix is a single ordinal");
        assert_eq!(dlo, dim.ordinal(&[7, 3, 14]));
    }

    #[test]
    fn sibling_prefixes_are_disjoint_and_ordered() {
        let dim = DimensionDef::new(
            "D",
            vec![LevelDef::new("A", 4), LevelDef::new("B", 8)],
        );
        let mut last_hi = None;
        for a in 0..4u64 {
            let (lo, hi) = dim.prefix_range(&[a]);
            if let Some(prev) = last_hi {
                assert!(lo > prev, "sibling ranges must be disjoint and increasing");
            }
            last_hi = Some(hi);
        }
    }

    #[test]
    fn tpcds_shape_matches_figure_1() {
        let s = Schema::tpcds();
        assert_eq!(s.dims(), 8);
        let names: Vec<_> = s.dimensions().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            ["Store", "Customer", "Item", "Date", "Address", "Household", "Promotion", "Time"]
        );
        assert_eq!(s.dim(5).depth(), 1); // Household → IncomeBand
        assert_eq!(s.dim(7).depth(), 2); // Time → Hour → Minute
        assert_eq!(s.max_depth(), 3);
        // Figure-3 expansion inputs: max width of level 1 across dims.
        assert_eq!(s.max_level_bits(1), 8); // Promotion Name (256)
        assert_eq!(s.max_level_bits(2), 6); // Time Minute (60)
        assert_eq!(s.max_level_bits(3), 6); // City (64)
    }

    #[test]
    fn uniform_schema_dimensions() {
        let s = Schema::uniform(64, 2, 16);
        assert_eq!(s.dims(), 64);
        assert!(s.dimensions().iter().all(|d| d.total_bits() == 8));
    }

    #[test]
    #[should_panic(expected = "exceeds fanout")]
    fn ordinal_rejects_out_of_fanout() {
        let dim = DimensionDef::new("D", vec![LevelDef::new("A", 12)]);
        dim.ordinal(&[12]);
    }

    #[test]
    fn schema_equality_is_structural() {
        assert_eq!(Schema::tpcds(), Schema::tpcds());
        assert_ne!(Schema::tpcds(), Schema::uniform(8, 3, 16));
    }
}
