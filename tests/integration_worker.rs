//! Direct worker-protocol tests: drive a single worker over the wire
//! without servers or manager, exercising the §III-E state machine.

use std::time::Duration;

use volap::worker::{create_empty_shard, spawn_worker};
use volap::{ImageStore, Request, Response, VolapConfig};
use volap_coord::CoordService;
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};
use volap_net::{Endpoint, Network};

const TIMEOUT: Duration = Duration::from_secs(5);

fn setup(schema: &Schema) -> (Network, ImageStore, VolapConfig, Endpoint) {
    let net = Network::new();
    let image = ImageStore::new(CoordService::new(), schema.clone());
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.worker_threads = 2;
    cfg.stats_period = Duration::from_millis(25);
    let driver = net.endpoint("driver");
    (net, image, cfg, driver)
}

fn ask(driver: &Endpoint, to: &str, req: Request, schema: &Schema) -> Response {
    let bytes = driver.request(to, req.encode(), TIMEOUT).expect("request");
    Response::decode(schema, &bytes).expect("decode")
}

#[test]
fn insert_query_roundtrip_over_wire() {
    let schema = Schema::uniform(3, 2, 8);
    let (net, image, cfg, driver) = setup(&schema);
    let w = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();

    let mut gen = DataGen::new(&schema, 1, 1.0);
    for it in gen.items(100) {
        let resp = ask(&driver, "w0", Request::Insert { shard: 1, item: it }, &schema);
        assert_eq!(resp, Response::Ack);
    }
    match ask(
        &driver,
        "w0",
        Request::Query { shards: vec![1], query: QueryBox::all(&schema) },
        &schema,
    ) {
        Response::Agg { agg, shards_searched } => {
            assert_eq!(agg.count, 100);
            assert_eq!(shards_searched, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
    w.stop();
}

#[test]
fn unknown_shard_and_garbage_are_rejected() {
    let schema = Schema::uniform(2, 2, 8);
    let (net, image, cfg, driver) = setup(&schema);
    let w = spawn_worker(&net, &image, &cfg, "w0");
    let mut gen = DataGen::new(&schema, 2, 1.0);
    let item = gen.item();
    match ask(&driver, "w0", Request::Insert { shard: 99, item }, &schema) {
        Response::Err(e) => assert!(e.contains("unknown shard")),
        other => panic!("unexpected {other:?}"),
    }
    // Garbage payload gets an error reply, not a hang.
    let bytes = driver.request("w0", vec![0xDE, 0xAD], TIMEOUT).unwrap();
    assert!(matches!(Response::decode(&schema, &bytes), Ok(Response::Err(_))));
    // Ping works.
    assert_eq!(ask(&driver, "w0", Request::Ping, &schema), Response::Ack);
    w.stop();
}

#[test]
fn split_over_wire_updates_image_and_aliases() {
    let schema = Schema::uniform(2, 2, 16);
    let (net, image, cfg, driver) = setup(&schema);
    let w = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();
    let mut gen = DataGen::new(&schema, 3, 1.0);
    let items = gen.items(500);
    assert_eq!(
        ask(&driver, "w0", Request::BulkInsert { shard: 1, items: items.clone() }, &schema),
        Response::Ack
    );
    // Split 1 -> (10, 11).
    let (left, right) = match ask(
        &driver,
        "w0",
        Request::SplitShard { shard: 1, left_id: 10, right_id: 11 },
        &schema,
    ) {
        Response::SplitDone { left, right } => (left, right),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(left.len + right.len, 500);
    assert!(left.len > 0 && right.len > 0);
    // Image: old record gone, halves present.
    assert!(image.shard(1).is_none());
    assert_eq!(image.shard(10).unwrap().worker, "w0");
    assert_eq!(image.shard(11).unwrap().worker, "w0");
    // Old-ID traffic still works through the alias (bounded staleness).
    let it = gen.item();
    assert_eq!(ask(&driver, "w0", Request::Insert { shard: 1, item: it }, &schema), Response::Ack);
    match ask(
        &driver,
        "w0",
        Request::Query { shards: vec![1], query: QueryBox::all(&schema) },
        &schema,
    ) {
        Response::Agg { agg, shards_searched } => {
            assert_eq!(agg.count, 501);
            assert_eq!(shards_searched, 2, "alias expands to both halves");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Splitting an already-split shard fails gracefully.
    match ask(&driver, "w0", Request::SplitShard { shard: 1, left_id: 20, right_id: 21 }, &schema) {
        Response::Err(e) => assert!(e.contains("busy or gone")),
        other => panic!("unexpected {other:?}"),
    }
    w.stop();
}

#[test]
fn bulk_insert_through_split_and_migration_aliases() {
    let schema = Schema::uniform(2, 2, 16);
    let (net, image, cfg, driver) = setup(&schema);
    let w0 = spawn_worker(&net, &image, &cfg, "w0");
    let w1 = spawn_worker(&net, &image, &cfg, "w1");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();
    let mut gen = DataGen::new(&schema, 6, 1.0);
    ask(&driver, "w0", Request::BulkInsert { shard: 1, items: gen.items(400) }, &schema);
    // Split twice so the alias for 1 is a chain: 1 -> (10, 11), 10 -> (12, 13).
    for (shard, l, r) in [(1, 10, 11), (10, 12, 13)] {
        match ask(
            &driver,
            "w0",
            Request::SplitShard { shard, left_id: l, right_id: r },
            &schema,
        ) {
            Response::SplitDone { left, right } => assert!(left.len > 0 && right.len > 0),
            other => panic!("unexpected {other:?}"),
        }
    }
    // A bulk insert addressed to the pre-split ID must partition across the
    // whole alias chain in one request.
    assert_eq!(
        ask(&driver, "w0", Request::BulkInsert { shard: 1, items: gen.items(200) }, &schema),
        Response::Ack
    );
    match ask(
        &driver,
        "w0",
        Request::Query { shards: vec![1], query: QueryBox::all(&schema) },
        &schema,
    ) {
        Response::Agg { agg, shards_searched } => {
            assert_eq!(agg.count, 600);
            assert_eq!(shards_searched, 3, "alias chain expands to all three leaves");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Move one leaf away: the partitioned group for it must be forwarded as
    // a single bulk request, the rest stay local.
    assert_eq!(
        ask(&driver, "w0", Request::Migrate { shard: 12, dest: "w1".into() }, &schema),
        Response::Ack
    );
    assert_eq!(
        ask(&driver, "w0", Request::BulkInsert { shard: 1, items: gen.items(100) }, &schema),
        Response::Ack
    );
    let mut total = 0;
    for (worker, shards) in [("w0", vec![11, 13]), ("w1", vec![12])] {
        match ask(
            &driver,
            worker,
            Request::Query { shards, query: QueryBox::all(&schema) },
            &schema,
        ) {
            Response::Agg { agg, .. } => total += agg.count,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(total, 700, "every bulk item landed exactly once across the halves");
    w0.stop();
    w1.stop();
}

#[test]
fn migrate_over_wire_forwards_and_updates_image() {
    let schema = Schema::uniform(2, 2, 16);
    let (net, image, cfg, driver) = setup(&schema);
    let w0 = spawn_worker(&net, &image, &cfg, "w0");
    let w1 = spawn_worker(&net, &image, &cfg, "w1");
    create_empty_shard(&driver, "w0", &schema, 5, TIMEOUT).unwrap();
    let mut gen = DataGen::new(&schema, 4, 1.0);
    let items = gen.items(300);
    ask(&driver, "w0", Request::BulkInsert { shard: 5, items }, &schema);

    assert_eq!(
        ask(&driver, "w0", Request::Migrate { shard: 5, dest: "w1".into() }, &schema),
        Response::Ack
    );
    assert_eq!(image.shard(5).unwrap().worker, "w1");
    // Queries through the OLD worker are forwarded transparently.
    match ask(
        &driver,
        "w0",
        Request::Query { shards: vec![5], query: QueryBox::all(&schema) },
        &schema,
    ) {
        Response::Agg { agg, .. } => assert_eq!(agg.count, 300),
        other => panic!("unexpected {other:?}"),
    }
    // Inserts through the old worker land on the new one.
    let it = gen.item();
    assert_eq!(ask(&driver, "w0", Request::Insert { shard: 5, item: it }, &schema), Response::Ack);
    match ask(
        &driver,
        "w1",
        Request::Query { shards: vec![5], query: QueryBox::all(&schema) },
        &schema,
    ) {
        Response::Agg { agg, .. } => assert_eq!(agg.count, 301),
        other => panic!("unexpected {other:?}"),
    }
    // Migrating to self is a no-op ack; to a dead worker an error.
    assert_eq!(
        ask(&driver, "w1", Request::Migrate { shard: 5, dest: "w1".into() }, &schema),
        Response::Ack
    );
    match ask(&driver, "w1", Request::Migrate { shard: 5, dest: "ghost".into() }, &schema) {
        Response::Err(e) => assert!(e.contains("adopt failed")),
        other => panic!("unexpected {other:?}"),
    }
    // The failed migration must have reverted to serving state.
    match ask(
        &driver,
        "w1",
        Request::Query { shards: vec![5], query: QueryBox::all(&schema) },
        &schema,
    ) {
        Response::Agg { agg, .. } => assert_eq!(agg.count, 301),
        other => panic!("unexpected {other:?}"),
    }
    w0.stop();
    w1.stop();
}

#[test]
fn worker_stats_reflect_contents() {
    let schema = Schema::uniform(2, 2, 8);
    let (net, image, cfg, driver) = setup(&schema);
    let w = spawn_worker(&net, &image, &cfg, "w0");
    create_empty_shard(&driver, "w0", &schema, 1, TIMEOUT).unwrap();
    create_empty_shard(&driver, "w0", &schema, 2, TIMEOUT).unwrap();
    let mut gen = DataGen::new(&schema, 5, 1.0);
    ask(&driver, "w0", Request::BulkInsert { shard: 1, items: gen.items(40) }, &schema);
    ask(&driver, "w0", Request::BulkInsert { shard: 2, items: gen.items(7) }, &schema);
    match ask(&driver, "w0", Request::GetWorkerStats, &schema) {
        Response::WorkerStats { mut shards } => {
            shards.sort_by_key(|r| r.id);
            assert_eq!(shards.len(), 2);
            assert_eq!((shards[0].id, shards[0].len), (1, 40));
            assert_eq!((shards[1].id, shards[1].len), (2, 7));
            assert!(shards[0].mbr.ranges().is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
    w.stop();
}
