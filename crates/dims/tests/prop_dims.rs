//! Property-based tests for schemas, keys and query geometry.

use proptest::prelude::*;
use volap_dims::{DimPath, Item, Key, Mbr, Mds, QueryBox, Schema};

/// A small random schema: 1–4 dimensions, 1–3 levels, fanouts 2–16.
fn schemas() -> impl Strategy<Value = Schema> {
    prop::collection::vec(prop::collection::vec(2u64..=16, 1..=3), 1..=4).prop_map(|dims| {
        let defs = dims
            .into_iter()
            .enumerate()
            .map(|(i, fanouts)| {
                volap_dims::DimensionDef::new(
                    format!("D{i}"),
                    fanouts
                        .into_iter()
                        .enumerate()
                        .map(|(l, f)| volap_dims::LevelDef::new(format!("L{l}"), f))
                        .collect(),
                )
            })
            .collect();
        Schema::new(defs, 3)
    })
}

/// Random valid items for a schema, driven by a seed.
fn items_for(schema: &Schema, seed: u64, n: usize) -> Vec<Item> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| {
            let coords: Vec<u64> = (0..schema.dims())
                .map(|d| {
                    let dim = schema.dim(d);
                    let comps: Vec<u64> =
                        dim.levels.iter().map(|l| next() % l.fanout).collect();
                    dim.ordinal(&comps)
                })
                .collect();
            Item::new(coords, (i % 7) as f64 + 0.5)
        })
        .collect()
}

/// A random query anchored on an item: per dimension the ALL root or a
/// prefix of the anchor.
fn query_for(schema: &Schema, anchor: &Item, seed: u64) -> QueryBox {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let paths: Vec<DimPath> = (0..schema.dims())
        .map(|d| {
            let full = anchor.path(schema, d);
            let depth = full.components.len();
            match next() % (depth as u64 + 1) {
                0 => DimPath::root(d),
                l => DimPath::new(d, full.components[..l as usize].to_vec()),
            }
        })
        .collect();
    QueryBox::from_paths(schema, &paths)
}

proptest! {
    /// Ordinals round-trip through components for every dimension.
    #[test]
    fn ordinal_component_roundtrip(schema in schemas(), seed in any::<u64>()) {
        for it in items_for(&schema, seed, 16) {
            prop_assert!(it.validate(&schema));
            for d in 0..schema.dims() {
                let comps = schema.dim(d).components(it.coords[d]);
                prop_assert_eq!(schema.dim(d).ordinal(&comps), it.coords[d]);
            }
        }
    }

    /// Both key types always contain every item folded into them, and the
    /// MDS region is a subset of the MBR region.
    #[test]
    fn keys_contain_their_items(schema in schemas(), seed in any::<u64>()) {
        let items = items_for(&schema, seed, 24);
        let mut mbr = Mbr::empty(&schema);
        let mut mds = Mds::empty(&schema);
        for it in &items {
            mbr.extend_item(&schema, it);
            mds.extend_item(&schema, it);
        }
        for it in &items {
            prop_assert!(mbr.contains_item(it));
            prop_assert!(mds.contains_item(it));
        }
        // The MDS region sits inside its own hull (note: hierarchy-aligned
        // coarsening may overshoot the raw item hull when fanouts are not
        // powers of two, so the MDS is not always inside the item MBR).
        let hull = mds.to_mbr(&schema);
        prop_assert!(mds.volume_frac(&schema) <= hull.volume_frac(&schema) + 1e-12);
        for it in &items {
            prop_assert!(hull.contains_item(it));
        }
    }

    /// MDS per-dimension ranges are sorted, disjoint, hierarchy-aligned and
    /// capped.
    #[test]
    fn mds_structural_invariants(schema in schemas(), seed in any::<u64>()) {
        let items = items_for(&schema, seed, 40);
        let mut mds = Mds::empty(&schema);
        for it in &items {
            mds.extend_item(&schema, it);
        }
        for d in 0..schema.dims() {
            let ranges = mds.dim_ranges(d);
            prop_assert!(ranges.len() <= schema.mds_cap());
            let mut last_hi: Option<u64> = None;
            for &(lo, hi) in ranges {
                prop_assert!(lo <= hi);
                if let Some(prev) = last_hi {
                    prop_assert!(lo > prev, "ranges must be disjoint and sorted");
                }
                last_hi = Some(hi);
                let len = hi - lo + 1;
                prop_assert!(len.is_power_of_two(), "aligned block size");
                prop_assert_eq!(lo % len, 0, "aligned block start");
            }
        }
    }

    /// Query relations are mutually consistent: coverage implies overlap
    /// (for non-empty keys), and overlap agrees with a brute-force check on
    /// the items.
    #[test]
    fn query_relations_consistent(schema in schemas(), seed in any::<u64>()) {
        let items = items_for(&schema, seed, 24);
        let q = query_for(&schema, &items[0], seed ^ 0xABCD);
        let mut mbr = Mbr::empty(&schema);
        let mut mds = Mds::empty(&schema);
        for it in &items {
            mbr.extend_item(&schema, it);
            mds.extend_item(&schema, it);
        }
        let any_inside = items.iter().any(|it| q.contains_item(it));
        if any_inside {
            prop_assert!(mbr.overlaps_query(&q));
            prop_assert!(mds.overlaps_query(&q));
        }
        // Coverage of either key implies every item is inside the query.
        if mbr.covered_by_query(&q) || mds.covered_by_query(&q) {
            for it in &items {
                prop_assert!(q.contains_item(it), "coverage implies every item inside");
            }
        }
    }

    /// extend_key is a join: the union covers everything either side did,
    /// and overlap_frac is symmetric.
    #[test]
    fn key_union_and_symmetry(schema in schemas(), seed in any::<u64>()) {
        let items = items_for(&schema, seed, 20);
        let (a_items, b_items) = items.split_at(10);
        let build = |subset: &[Item]| {
            let mut k = Mds::empty(&schema);
            for it in subset {
                k.extend_item(&schema, it);
            }
            k
        };
        let a = build(a_items);
        let b = build(b_items);
        let ab = a.overlap_frac(&schema, &b);
        let ba = b.overlap_frac(&schema, &a);
        prop_assert!((ab - ba).abs() < 1e-12, "overlap symmetric");
        let mut joined = a.clone();
        joined.extend_key(&schema, &b);
        for it in &items {
            prop_assert!(joined.contains_item(it));
        }
        prop_assert!(joined.volume_frac(&schema) + 1e-12 >= a.volume_frac(&schema));
        prop_assert!(joined.volume_frac(&schema) + 1e-12 >= b.volume_frac(&schema));
    }

    /// Prefix ranges of sibling paths never overlap, children nest inside
    /// parents.
    #[test]
    fn prefix_ranges_nest_and_partition(schema in schemas(), seed in any::<u64>()) {
        let items = items_for(&schema, seed, 4);
        for it in &items {
            for d in 0..schema.dims() {
                let full = it.path(&schema, d);
                let mut prev: Option<(u64, u64)> = None;
                for level in (0..=full.components.len()).rev() {
                    let p = DimPath::new(d, full.components[..level].to_vec());
                    let (lo, hi) = p.range(&schema);
                    if let Some((plo, phi)) = prev {
                        prop_assert!(lo <= plo && phi <= hi, "parent must contain child");
                    }
                    prev = Some((lo, hi));
                }
            }
        }
    }
}
