//! Property tests: `insert_batch` is observationally equivalent to per-item
//! `insert` — same totals, same query results, same brute-force answers —
//! under aggressive splitting (tiny node capacities), every insert policy,
//! both key types, and concurrent `query_par` readers.

use std::sync::Arc;

use proptest::prelude::*;
use volap_dims::{Aggregate, DimPath, Item, Mbr, Mds, QueryBox, Schema};
use volap_tree::{ConcurrentTree, InsertPolicy, TreeConfig};

fn small_cfg() -> TreeConfig {
    // leaf_cap 8 / dir_cap 4: a few hundred items force several levels of
    // splits, so batches routinely split mid-run.
    TreeConfig { leaf_cap: 8, dir_cap: 4, ..TreeConfig::default() }
}

fn schema() -> Schema {
    Schema::uniform(3, 2, 4)
}

fn items_strategy(n: usize) -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec((prop::collection::vec(0u64..16, 3), 0u32..100), 1..=n).prop_map(|raw| {
        raw.into_iter()
            .map(|(coords, m)| Item::new(coords, m as f64))
            .collect()
    })
}

fn query_strategy() -> impl Strategy<Value = QueryBox> {
    prop::collection::vec((0usize..=2, 0u64..16), 3).prop_map(|per_dim| {
        let s = schema();
        let paths: Vec<DimPath> = per_dim
            .into_iter()
            .enumerate()
            .map(|(d, (level, v))| match level {
                0 => DimPath::root(d),
                1 => DimPath::new(d, vec![v % 4]),
                _ => DimPath::new(d, vec![(v / 4) % 4, v % 4]),
            })
            .collect();
        QueryBox::from_paths(&s, &paths)
    })
}

fn brute(items: &[Item], q: &QueryBox) -> Aggregate {
    let mut a = Aggregate::empty();
    for it in items.iter().filter(|it| q.contains_item(it)) {
        a.add(it.measure);
    }
    a
}

fn policies() -> [InsertPolicy; 3] {
    [
        InsertPolicy::Hilbert { expand: true },
        InsertPolicy::Hilbert { expand: false },
        InsertPolicy::Geometric,
    ]
}

fn assert_agg_eq(a: &Aggregate, b: &Aggregate, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.count, b.count, "{} count", ctx);
    prop_assert!((a.sum - b.sum).abs() < 1e-9, "{} sum", ctx);
    if a.count > 0 {
        prop_assert_eq!(a.min, b.min, "{} min", ctx);
        prop_assert_eq!(a.max, b.max, "{} max", ctx);
    }
    Ok(())
}

/// Run the equivalence check for one key type: seed both trees per-item,
/// then feed the rest per-item to one and batched (in `chunk`-sized calls)
/// to the other, and compare totals plus query answers against each other
/// and the brute-force oracle.
fn check_equivalence<K: volap_dims::Key>(
    policy: InsertPolicy,
    items: &[Item],
    seed_n: usize,
    chunk: usize,
    q: &QueryBox,
) -> Result<(), TestCaseError> {
    let s = schema();
    let a: ConcurrentTree<K> = ConcurrentTree::new(s.clone(), policy, small_cfg());
    let b: ConcurrentTree<K> = ConcurrentTree::new(s.clone(), policy, small_cfg());
    let seed_n = seed_n.min(items.len());
    for it in &items[..seed_n] {
        a.insert(it);
        b.insert(it);
    }
    for it in &items[seed_n..] {
        a.insert(it);
    }
    for batch in items[seed_n..].chunks(chunk.max(1)) {
        b.insert_batch(batch);
    }
    let ctx = format!("{policy:?} chunk={chunk}");
    prop_assert_eq!(a.len(), b.len(), "{} len", &ctx);
    prop_assert_eq!(b.len(), items.len() as u64, "{} total len", &ctx);
    assert_agg_eq(&a.total(), &b.total(), &ctx)?;
    for query in [q.clone(), QueryBox::all(&s)] {
        let expect = brute(items, &query);
        assert_agg_eq(&a.query(&query), &expect, &ctx)?;
        assert_agg_eq(&b.query(&query), &expect, &ctx)?;
        assert_agg_eq(&b.query_par(&query), &expect, &ctx)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// insert_batch ≡ insert for every policy and both key types, with the
    /// batch arriving in random-size chunks onto a random-size per-item
    /// prefix (so runs start against an already-split tree).
    #[test]
    fn batch_equals_per_item(
        items in items_strategy(300),
        seed_n in 0usize..60,
        chunk in 1usize..80,
        q in query_strategy(),
    ) {
        for policy in policies() {
            check_equivalence::<Mds>(policy, &items, seed_n, chunk, &q)?;
            check_equivalence::<Mbr>(policy, &items, seed_n, chunk, &q)?;
        }
    }

    /// One giant batch into an empty tree: every leaf split along the way is
    /// a mid-batch split.
    #[test]
    fn single_batch_equals_per_item(items in items_strategy(400), q in query_strategy()) {
        for policy in policies() {
            check_equivalence::<Mds>(policy, &items, 0, items.len(), &q)?;
        }
    }

    /// Duplicate-heavy batches (many equal Hilbert keys → long runs) stay
    /// equivalent.
    #[test]
    fn duplicate_keys_form_long_runs(base in items_strategy(20), reps in 2usize..12, q in query_strategy()) {
        let items: Vec<Item> = base.iter().cycle().take(base.len() * reps).cloned().collect();
        for policy in policies() {
            check_equivalence::<Mds>(policy, &items, 3, 64, &q)?;
        }
    }
}

/// Batched writers racing `query_par` readers: totals must be exact at the
/// end and every intermediate read must be a well-formed aggregate (no
/// panics, no torn runs — a partially applied run would briefly break the
/// tree's internal invariants and can deadlock or miscount).
#[test]
fn concurrent_batch_inserts_and_par_queries() {
    let s = schema();
    let tree: Arc<ConcurrentTree<Mds>> = Arc::new(ConcurrentTree::new(
        s.clone(),
        InsertPolicy::Hilbert { expand: true },
        small_cfg(),
    ));
    // Deterministic pseudo-random items.
    let mut state = 0xA5A5_5A5A_1234_5678u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    let items: Vec<Item> = (0..6000)
        .map(|i| {
            let coords: Vec<u64> = (0..3).map(|_| next() % 16).collect();
            Item::new(coords, (i % 100) as f64)
        })
        .collect();
    let n_writers = 3;
    let chunk = items.len() / n_writers;
    std::thread::scope(|scope| {
        for t in 0..n_writers {
            let tree = Arc::clone(&tree);
            let slice = items[t * chunk..(t + 1) * chunk].to_vec();
            scope.spawn(move || {
                for batch in slice.chunks(97) {
                    tree.insert_batch(batch);
                }
            });
        }
        // A per-item writer interleaved with the batch writers.
        let leftover = items[n_writers * chunk..].to_vec();
        let ptree = Arc::clone(&tree);
        scope.spawn(move || {
            for it in leftover {
                ptree.insert(&it);
            }
        });
        let qtree = Arc::clone(&tree);
        let q = QueryBox::all(&s);
        scope.spawn(move || {
            for i in 0..300 {
                // Force the forked path with a tiny cutoff half the time.
                let agg = if i % 2 == 0 {
                    qtree.query_par(&q)
                } else {
                    qtree.query_par_with(&q, 64).0
                };
                assert!(agg.count <= 6000);
            }
        });
    });
    assert_eq!(tree.len(), items.len() as u64);
    let expect = brute(&items, &QueryBox::all(&s));
    let got = tree.query_par(&QueryBox::all(&s));
    assert_eq!(got.count, expect.count);
    assert!((got.sum - expect.sum).abs() < 1e-6);
    assert_eq!(got.min, expect.min);
    assert_eq!(got.max, expect.max);
}
