//! Binary wire codec for VOLAP messages and coordination records.
//!
//! A small hand-rolled protocol over [`bytes`]: length-prefixed strings,
//! fixed-width integers, and composites for [`Item`], [`QueryBox`], [`Mbr`]
//! and [`Aggregate`]. Every encoder has a matching checked decoder that
//! fails with a message instead of panicking on malformed input.

use bytes::{Buf, BufMut};
use volap_dims::{Aggregate, Item, Key, Mbr, QueryBox, Schema};

/// Decoding failure description.
pub type WireError = String;

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(format!("truncated message: need {n} bytes for {what}, have {}", buf.remaining()))
    } else {
        Ok(())
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut &[u8]) -> Result<String, WireError> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "string body")?;
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|e| format!("invalid UTF-8 string: {e}"))
}

/// Append a length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

/// Read a length-prefixed byte blob.
pub fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    need(buf, 4, "blob length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "blob body")?;
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

/// Append an item (coordinate vector + measure).
pub fn put_item(buf: &mut Vec<u8>, item: &Item) {
    buf.put_u16(item.coords.len() as u16);
    for &c in item.coords.iter() {
        buf.put_u64(c);
    }
    buf.put_f64(item.measure);
}

/// Read an item.
pub fn get_item(buf: &mut &[u8]) -> Result<Item, WireError> {
    need(buf, 2, "item dims")?;
    let dims = buf.get_u16() as usize;
    need(buf, dims * 8 + 8, "item body")?;
    let coords: Vec<u64> = (0..dims).map(|_| buf.get_u64()).collect();
    Ok(Item::new(coords, buf.get_f64()))
}

/// Append a query box.
pub fn put_query(buf: &mut Vec<u8>, q: &QueryBox) {
    buf.put_u16(q.ranges.len() as u16);
    for &(lo, hi) in q.ranges.iter() {
        buf.put_u64(lo);
        buf.put_u64(hi);
    }
}

/// Read a query box.
pub fn get_query(buf: &mut &[u8]) -> Result<QueryBox, WireError> {
    need(buf, 2, "query dims")?;
    let dims = buf.get_u16() as usize;
    need(buf, dims * 16, "query ranges")?;
    let ranges: Vec<(u64, u64)> = (0..dims).map(|_| (buf.get_u64(), buf.get_u64())).collect();
    for &(lo, hi) in &ranges {
        if lo > hi {
            return Err(format!("inverted query range {lo}..{hi}"));
        }
    }
    Ok(QueryBox::from_ranges(ranges))
}

/// Append a (possibly empty) bounding rectangle.
pub fn put_mbr(buf: &mut Vec<u8>, m: &Mbr) {
    match m.ranges() {
        None => buf.put_u16(0),
        Some(r) => {
            buf.put_u16(r.len() as u16);
            for &(lo, hi) in r {
                buf.put_u64(lo);
                buf.put_u64(hi);
            }
        }
    }
}

/// Read a bounding rectangle; `schema` supplies the dimensionality for the
/// empty case.
pub fn get_mbr(buf: &mut &[u8], schema: &Schema) -> Result<Mbr, WireError> {
    need(buf, 2, "mbr dims")?;
    let dims = buf.get_u16() as usize;
    if dims == 0 {
        return Ok(Mbr::empty(schema));
    }
    if dims != schema.dims() {
        return Err(format!("mbr has {dims} dims, schema has {}", schema.dims()));
    }
    need(buf, dims * 16, "mbr ranges")?;
    let ranges: Vec<(u64, u64)> = (0..dims).map(|_| (buf.get_u64(), buf.get_u64())).collect();
    for &(lo, hi) in &ranges {
        if lo > hi {
            return Err(format!("inverted mbr range {lo}..{hi}"));
        }
    }
    Ok(Mbr::from_ranges(ranges))
}

/// Append an aggregate.
pub fn put_agg(buf: &mut Vec<u8>, a: &Aggregate) {
    buf.put_u64(a.count);
    buf.put_f64(a.sum);
    buf.put_f64(a.min);
    buf.put_f64(a.max);
}

/// Read an aggregate.
pub fn get_agg(buf: &mut &[u8]) -> Result<Aggregate, WireError> {
    need(buf, 32, "aggregate")?;
    Ok(Aggregate { count: buf.get_u64(), sum: buf.get_f64(), min: buf.get_f64(), max: buf.get_f64() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut buf = Vec::new();
        put_str(&mut buf, "worker-03");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r: &[u8] = &buf;
        assert_eq!(get_str(&mut r).unwrap(), "worker-03");
        assert_eq!(get_bytes(&mut r).unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn item_query_mbr_agg_roundtrip() {
        let schema = Schema::uniform(3, 2, 8);
        let item = Item::new(vec![1, 2, 3], 4.5);
        let q = QueryBox::from_ranges(vec![(0, 10), (2, 2), (0, 63)]);
        let mut m = Mbr::empty(&schema);
        m.extend_item(&schema, &item);
        let a = Aggregate::of(7.0);

        let mut buf = Vec::new();
        put_item(&mut buf, &item);
        put_query(&mut buf, &q);
        put_mbr(&mut buf, &m);
        put_mbr(&mut buf, &Mbr::empty(&schema));
        put_agg(&mut buf, &a);

        let mut r: &[u8] = &buf;
        assert_eq!(get_item(&mut r).unwrap(), item);
        assert_eq!(get_query(&mut r).unwrap(), q);
        assert_eq!(get_mbr(&mut r, &schema).unwrap(), m);
        assert!(get_mbr(&mut r, &schema).unwrap().is_empty());
        assert_eq!(get_agg(&mut r).unwrap(), a);
        assert!(r.is_empty());
    }

    #[test]
    fn decoders_reject_truncation() {
        let mut buf = Vec::new();
        put_item(&mut buf, &Item::new(vec![1, 2], 3.0));
        for cut in 0..buf.len() {
            let mut r: &[u8] = &buf[..cut];
            assert!(get_item(&mut r).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn decoders_reject_inverted_ranges() {
        let mut buf = Vec::new();
        buf.put_u16(1);
        buf.put_u64(9);
        buf.put_u64(3);
        let mut r: &[u8] = &buf;
        assert!(get_query(&mut r).is_err());
        let schema = Schema::uniform(1, 1, 4);
        let mut r: &[u8] = &buf;
        assert!(get_mbr(&mut r, &schema).is_err());
    }
}
