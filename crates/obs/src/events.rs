//! A bounded ring-buffer log for structured events.
//!
//! Writers append to **per-thread ring shards**: each thread is assigned a
//! fixed shard (by a cached thread ordinal), so in steady state a shard's
//! mutex is touched by exactly one writer and is uncontended — the cost of
//! recording an event is an uncontended lock, a `VecDeque` push, and at
//! capacity a pop of the oldest entry. Readers merge all shards on
//! [`EventLog::snapshot`], restoring global order via a shared sequence
//! counter. Overflow drops the *oldest* events per shard and is counted, so
//! a snapshot always says how much history it is missing.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of ring shards. Threads map onto shards by ordinal; with the
/// handful of service threads a simulated cluster runs, collisions are rare
/// and harmless (the shard mutex is still only briefly held).
const SHARDS: usize = 16;

static NEXT_THREAD_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ORDINAL: Cell<usize> =
        Cell::new(NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed));
}

/// This thread's cached ordinal — shared with the span collector so both
/// rings shard writers the same way.
pub(crate) fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|o| o.get())
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Microseconds since the log's epoch (creation time).
    pub ts_us: u64,
    /// Event kind, e.g. `"shard_split"`.
    pub kind: String,
    /// Free-form `key=value` detail string.
    pub detail: String,
}

struct EventLogInner {
    epoch: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    /// Per-shard bounded rings.
    shards: Vec<Mutex<VecDeque<Event>>>,
    cap_per_shard: usize,
}

/// The event log. Cheap to clone (shared).
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<EventLogInner>,
}

impl EventLog {
    /// A log retaining roughly `capacity` events in total.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(EventLogInner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
                cap_per_shard: (capacity / SHARDS).max(4),
            }),
        }
    }

    /// Record one event.
    pub fn record(&self, kind: &str, detail: String) {
        let inner = &*self.inner;
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let ts_us = inner.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let slot = thread_ordinal() % SHARDS;
        let mut ring = inner.shards[slot].lock().unwrap();
        if ring.len() >= inner.cap_per_shard {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event { seq, ts_us, kind: kind.to_string(), detail });
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by ring overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Merge every shard into one sequence-ordered view.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            all.extend(shard.lock().unwrap().iter().cloned());
        }
        all.sort_by_key(|e| e.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_bounds_memory() {
        let log = EventLog::new(64);
        for i in 0..200 {
            log.record("tick", format!("i={i}"));
        }
        let events = log.snapshot();
        assert!(events.len() <= 200);
        assert_eq!(log.recorded(), 200);
        assert_eq!(log.recorded() - log.dropped(), events.len() as u64);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq, "snapshot is sequence-ordered");
        }
        // Single-threaded writers land in one shard: the newest events win.
        assert_eq!(events.last().unwrap().detail, "i=199");
    }

    #[test]
    fn concurrent_writers_merge() {
        let log = EventLog::new(100_000);
        std::thread::scope(|s| {
            for t in 0..8 {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        log.record("w", format!("t={t} i={i}"));
                    }
                });
            }
        });
        let events = log.snapshot();
        assert_eq!(events.len(), 4000, "nothing dropped below capacity");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4000, "sequence numbers are unique");
        assert_eq!(seqs, sorted, "snapshot is globally ordered");
    }
}
