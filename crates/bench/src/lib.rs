//! Shared harness utilities for the experiment binaries.
//!
//! Every figure and table of the paper's evaluation (§IV) has a binary in
//! `src/bin/` that regenerates it at laptop scale; see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for recorded results. This library
//! holds the measurement plumbing they share: latency capture, percentile
//! summaries, multi-session cluster drivers, and ASCII heat-map rendering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use volap::Cluster;
use volap_data::Op;
use volap_dims::Aggregate;

/// Summary statistics over a latency sample set.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: usize,
    /// Mean seconds.
    pub mean: f64,
    /// Median seconds.
    pub p50: f64,
    /// 95th percentile seconds.
    pub p95: f64,
    /// Maximum seconds.
    pub max: f64,
}

impl LatencyStats {
    /// Compute from raw (unsorted) samples in seconds.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self { n: 0, mean: 0.0, p50: 0.0, p95: 0.0, max: 0.0 };
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        Self {
            n,
            mean: samples.iter().sum::<f64>() / n as f64,
            p50: samples[n / 2],
            p95: samples[(n * 95 / 100).min(n - 1)],
            max: samples[n - 1],
        }
    }
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Outcome of driving an operation stream against a cluster.
#[derive(Debug)]
pub struct DriveResult {
    /// Total operations executed.
    pub ops: u64,
    /// Wall time for the whole stream.
    pub elapsed: Duration,
    /// Insert latencies (seconds).
    pub insert_lat: Vec<f64>,
    /// Query latencies (seconds).
    pub query_lat: Vec<f64>,
    /// Shards searched per query.
    pub shards_searched: Vec<u32>,
    /// Merged aggregate over all query results (sanity checking).
    pub agg: Aggregate,
}

impl DriveResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Execute `ops` against the cluster from `sessions` concurrent client
/// sessions (work-stealing over one shared cursor), measuring per-op
/// latency. This mirrors the paper's benchmark clients: throughput comes
/// from parallel sessions, latency from per-operation timing.
pub fn drive(cluster: &Cluster, sessions: usize, ops: &[Op]) -> DriveResult {
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let start = Instant::now();
    // (insert latencies, query latencies, shards-searched counts, query total)
    type SessionResult = (Vec<f64>, Vec<f64>, Vec<u32>, Aggregate);
    let results: Vec<SessionResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions.max(1))
            .map(|_| {
                let client = cluster.client();
                s.spawn(move || {
                    let mut ins = Vec::new();
                    let mut qry = Vec::new();
                    let mut shards = Vec::new();
                    let mut agg = Aggregate::empty();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= ops.len() {
                            break;
                        }
                        // Routing is eventually consistent (a shard may be
                        // mid-split/mid-migration): retry transient errors
                        // briefly before giving up, like a real client.
                        match &ops[i] {
                            Op::Insert(item) => {
                                let t = Instant::now();
                                let mut attempt = 0;
                                loop {
                                    match client.insert(item) {
                                        Ok(()) => break,
                                        Err(e) if attempt < 50 => {
                                            attempt += 1;
                                            let _ = e;
                                            std::thread::sleep(Duration::from_millis(5));
                                        }
                                        Err(e) => panic!("insert failed after retries: {e}"),
                                    }
                                }
                                ins.push(t.elapsed().as_secs_f64());
                            }
                            Op::Query(q) => {
                                let t = Instant::now();
                                let mut attempt = 0;
                                let (a, n) = loop {
                                    match client.query(q) {
                                        Ok(r) => break r,
                                        Err(e) if attempt < 50 => {
                                            attempt += 1;
                                            let _ = e;
                                            std::thread::sleep(Duration::from_millis(5));
                                        }
                                        Err(e) => panic!("query failed after retries: {e}"),
                                    }
                                };
                                qry.push(t.elapsed().as_secs_f64());
                                shards.push(n);
                                agg.merge(&a);
                            }
                        }
                    }
                    (ins, qry, shards, agg)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver thread")).collect()
    });
    let elapsed = start.elapsed();
    let mut out = DriveResult {
        ops: ops.len() as u64,
        elapsed,
        insert_lat: Vec::new(),
        query_lat: Vec::new(),
        shards_searched: Vec::new(),
        agg: Aggregate::empty(),
    };
    for (ins, qry, shards, agg) in results {
        out.insert_lat.extend(ins);
        out.query_lat.extend(qry);
        out.shards_searched.extend(shards);
        out.agg.merge(&agg);
    }
    out
}

/// Render a y-flipped ASCII heat map of `(x, y)` points (both normalized to
/// their bounds) as the paper's Figure 9 does with colour.
pub fn heatmap(points: &[(f64, f64)], cols: usize, rows: usize, x_label: &str, y_label: &str) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    if points.is_empty() {
        return "(no data)".to_string();
    }
    let (mut x_max, mut y_max) = (f64::MIN, f64::MIN);
    let (mut x_min, mut y_min) = (f64::MAX, f64::MAX);
    for &(x, y) in points {
        x_max = x_max.max(x);
        y_max = y_max.max(y);
        x_min = x_min.min(x);
        y_min = y_min.min(y);
    }
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);
    let mut grid = vec![0u32; cols * rows];
    for &(x, y) in points {
        let c = (((x - x_min) / x_span) * (cols - 1) as f64).round() as usize;
        let r = (((y - y_min) / y_span) * (rows - 1) as f64).round() as usize;
        grid[r * cols + c] += 1;
    }
    let peak = *grid.iter().max().unwrap() as f64;
    let mut out = String::new();
    out.push_str(&format!("{y_label} (top = {y_max:.4}, bottom = {y_min:.4})\n"));
    for r in (0..rows).rev() {
        out.push_str("  |");
        for c in 0..cols {
            let v = grid[r * cols + c] as f64;
            let shade = if v == 0.0 {
                b' '
            } else {
                let idx = 1 + ((v / peak) * (SHADES.len() - 2) as f64).round() as usize;
                SHADES[idx.min(SHADES.len() - 1)]
            };
            out.push(shade as char);
        }
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    out.push_str(&format!("   {x_label}: {x_min:.2} .. {x_max:.2}\n"));
    out
}

/// Shared per-binary environment for the `bench_*` bins: core/thread
/// accounting, the `--check` / `--no-run` flags, and the global rayon pool
/// (the PR-6 bench convention, in one place instead of per binary).
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    /// Machine cores (`available_parallelism`).
    pub cores: usize,
    /// Effective thread count: `--threads N` if given, else `cores`.
    pub threads: usize,
    /// Whether `--check` was passed (gate thresholds instead of just
    /// reporting).
    pub check: bool,
    /// Whether `--no-run` was passed (functional smoke only, no timing).
    pub no_run: bool,
}

impl BenchEnv {
    /// Parse the common bench flags, size the global rayon pool when
    /// `--threads N` is given, and warn when the run is effectively
    /// single-threaded. Panics on unknown arguments (`--quick` is accepted
    /// and read separately by [`quick_mode`]).
    pub fn setup(bin: &str) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut threads = 0usize;
        let mut check = false;
        let mut no_run = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--threads" => {
                    let v = args.next().unwrap_or_default();
                    threads = v
                        .parse()
                        .unwrap_or_else(|_| panic!("--threads needs a number, got {v:?}"));
                }
                "--check" => check = true,
                "--no-run" => no_run = true,
                "--quick" => {}
                other => panic!(
                    "unknown argument {other:?} (expected --threads N, --check, --no-run, or --quick)"
                ),
            }
        }
        if threads > 0 {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .expect("--threads must run before the global pool initializes");
        }
        let effective = if threads > 0 { threads } else { cores };
        if effective == 1 {
            eprintln!(
                "WARNING: {bin} is running on a single thread (cores={cores}); treat \
                 absolute throughput numbers with suspicion on a loaded shared core."
            );
        }
        Self { cores, threads: effective, check, no_run }
    }

    /// The `"cores": N, "threads": N` fragment every `BENCH_*.json` carries.
    pub fn json_fields(&self) -> String {
        format!("\"cores\": {}, \"threads\": {}", self.cores, self.threads)
    }

    /// The uniform `"headline"` fragment every `BENCH_*.json` carries: the
    /// one number a dashboard should plot for this bench, with its name and
    /// direction, so tooling never needs per-bench knowledge to trend a
    /// result. Panics on a non-finite value — a bench must never publish
    /// `NaN` as its headline.
    pub fn headline(&self, metric: &str, value: f64, higher_is_better: bool) -> String {
        assert!(value.is_finite(), "headline {metric} is not finite: {value}");
        format!(
            "\"headline\": {{\"metric\": \"{metric}\", \"value\": {value}, \
             \"higher_is_better\": {higher_is_better}}}"
        )
    }
}

/// Run-level dispersion for an overhead gate built from per-round
/// throughput samples of an on/off pair. `floor_frac` is the two-sigma
/// band of the *difference of the means* relative to the baseline — a
/// measured overhead smaller than this is indistinguishable from run
/// noise, and the gate should say so rather than let a quiet machine
/// masquerade as a fast implementation.
#[derive(Debug, Clone, Copy)]
pub struct GateNoise {
    /// Relative sample stddev of the feature-on rounds.
    pub rel_stddev_on: f64,
    /// Relative sample stddev of the feature-off (baseline) rounds.
    pub rel_stddev_off: f64,
    /// Two-sigma noise floor for the overhead fraction.
    pub floor_frac: f64,
}

impl GateNoise {
    /// Compute from per-round throughput samples (on, off order matches
    /// the bench's `ingest[0]`, `ingest[1]` convention).
    pub fn from_rounds(on: &[f64], off: &[f64]) -> Self {
        let (mean_on, sd_on) = mean_stddev(on);
        let (mean_off, sd_off) = mean_stddev(off);
        let sem = |sd: f64, n: usize| sd / (n.max(1) as f64).sqrt();
        let diff_sigma =
            (sem(sd_on, on.len()).powi(2) + sem(sd_off, off.len()).powi(2)).sqrt();
        let base = if mean_off > 0.0 { mean_off } else { 1.0 };
        Self {
            rel_stddev_on: if mean_on > 0.0 { sd_on / mean_on } else { 0.0 },
            rel_stddev_off: sd_off / base,
            floor_frac: 2.0 * diff_sigma / base,
        }
    }

    /// The `"noise"` JSON fragment overhead gates embed next to their
    /// overhead numbers.
    pub fn json_fragment(&self) -> String {
        format!(
            "\"noise\": {{\"rel_stddev_on\": {:.4}, \"rel_stddev_off\": {:.4}, \
             \"floor_frac\": {:.4}}}",
            self.rel_stddev_on, self.rel_stddev_off, self.floor_frac
        )
    }

    /// Print the run-level dispersion, and warn when `overhead` sits below
    /// the noise floor (the measurement is then a bound, not an estimate).
    pub fn report(&self, overhead: f64) {
        println!(
            "run noise: stddev on {:.2}% off {:.2}%, two-sigma floor {:.2}%",
            self.rel_stddev_on * 100.0,
            self.rel_stddev_off * 100.0,
            self.floor_frac * 100.0
        );
        if overhead.abs() < self.floor_frac {
            println!(
                "WARNING: measured overhead {:.2}% is below the {:.2}% noise floor; \
                 treat it as \"no detectable overhead\", not as a precise estimate",
                overhead * 100.0,
                self.floor_frac * 100.0
            );
        }
    }
}

/// Mean and sample standard deviation (0.0 for fewer than two samples).
pub fn mean_stddev(v: &[f64]) -> (f64, f64) {
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if v.len() < 2 {
        return (mean, 0.0);
    }
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Whether `--quick` / `VOLAP_QUICK=1` was passed (CI-speed runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("VOLAP_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Scale a full-size parameter down in quick mode.
pub fn scaled(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Pretty-print a duration as milliseconds with 3 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_are_ordered() {
        let s = LatencyStats::from_samples(vec![0.5, 0.1, 0.9, 0.2, 0.3]);
        assert_eq!(s.n, 5);
        assert!(s.p50 <= s.p95 && s.p95 <= s.max);
        assert!((s.mean - 0.4).abs() < 1e-12);
        let empty = LatencyStats::from_samples(vec![]);
        assert_eq!(empty.n, 0);
    }

    #[test]
    fn heatmap_renders_all_rows() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i * i) as f64)).collect();
        let map = heatmap(&pts, 20, 10, "x", "y");
        assert_eq!(map.lines().count(), 13); // header + 10 rows + axis + label
        assert!(map.contains('@') || map.contains('#') || map.contains('.'));
        assert_eq!(heatmap(&[], 5, 5, "x", "y"), "(no data)");
    }

    #[test]
    fn gate_noise_and_headline_fragments() {
        let (mean, sd) = mean_stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
        assert_eq!(mean_stddev(&[3.0]), (3.0, 0.0));
        // Identical on/off rounds: zero spread, zero floor.
        let quiet = GateNoise::from_rounds(&[10.0; 8], &[10.0; 8]);
        assert_eq!(quiet.floor_frac, 0.0);
        // Noisy rounds produce a positive floor scaled by the baseline.
        let noisy = GateNoise::from_rounds(&[9.0, 11.0, 10.0, 12.0], &[10.0, 12.0, 11.0, 9.0]);
        assert!(noisy.floor_frac > 0.0 && noisy.rel_stddev_off > 0.0);
        let frag = noisy.json_fragment();
        assert!(frag.starts_with("\"noise\": {") && frag.contains("floor_frac"));
        let env = BenchEnv { cores: 4, threads: 4, check: false, no_run: false };
        let h = env.headline("ingest_per_s", 123456.0, true);
        assert!(h.contains("\"metric\": \"ingest_per_s\""));
        assert!(h.contains("\"value\": 123456"));
        assert!(h.contains("\"higher_is_better\": true"));
    }

    #[test]
    fn drive_executes_every_op() {
        let schema = volap_dims::Schema::uniform(2, 2, 8);
        let mut cfg = volap::VolapConfig::new(schema.clone());
        cfg.workers = 1;
        cfg.servers = 1;
        cfg.manager_enabled = false;
        let cluster = Cluster::start(cfg);
        let mut gen = volap_data::DataGen::new(&schema, 1, 1.0);
        let mut ops: Vec<Op> = gen.items(50).into_iter().map(Op::Insert).collect();
        ops.push(Op::Query(volap_dims::QueryBox::all(&schema)));
        let res = drive(&cluster, 3, &ops);
        assert_eq!(res.ops, 51);
        assert_eq!(res.insert_lat.len(), 50);
        assert_eq!(res.query_lat.len(), 1);
        assert!(res.throughput() > 0.0);
        cluster.shutdown();
    }
}

pub mod scaleup;
