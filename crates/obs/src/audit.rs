//! A bounded audit trail of load-balance decisions.
//!
//! Every manager action — orphan reap, shard split, migration — is recorded
//! as one structured [`BalanceDecision`]: the inputs that drove it (shard
//! sizes, heat rates, thresholds), the chosen action, the resulting shard
//! ids, and the outcome with its duration. The ring uses the same
//! per-thread-shard design as [`crate::events::EventLog`] (uncontended
//! mutex per writer thread, global sequencing, counted oldest-first
//! eviction), so a snapshot always knows how much history it is missing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::events::thread_ordinal;

const SHARDS: usize = 16;

/// One recorded load-balance decision.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BalanceDecision {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Microseconds since the log's epoch (creation time).
    pub ts_us: u64,
    /// Chosen action: `"split"`, `"migrate"`, or `"orphan_reap"`.
    pub action: String,
    /// The shard the decision acted on.
    pub shard: u64,
    /// Worker holding the shard when the decision fired.
    pub src: String,
    /// Destination worker (migrations) or empty.
    pub dest: String,
    /// The inputs that drove the decision, as ordered `(key, value)` pairs
    /// (shard sizes, thresholds, heat rates — values pre-rendered).
    pub inputs: Vec<(String, String)>,
    /// Shard ids that exist because of this decision (split halves; the
    /// moved shard for migrations).
    pub result_shards: Vec<u64>,
    /// `"ok"` or a short failure tag.
    pub outcome: String,
    /// Wall time the action took, start of decision to acknowledgement.
    pub duration_us: u64,
}

struct AuditLogInner {
    epoch: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    shards: Vec<Mutex<VecDeque<BalanceDecision>>>,
    cap_per_shard: usize,
}

/// The audit ring. Cheap to clone (shared).
#[derive(Clone)]
pub struct AuditLog {
    inner: Arc<AuditLogInner>,
}

impl AuditLog {
    /// A ring retaining roughly `capacity` decisions in total.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(AuditLogInner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
                cap_per_shard: (capacity / SHARDS).max(4),
            }),
        }
    }

    /// Record one decision. `seq` and `ts_us` are stamped here; whatever the
    /// caller put in those fields is overwritten.
    pub fn record(&self, mut decision: BalanceDecision) {
        let inner = &*self.inner;
        decision.seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        decision.ts_us = inner.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let slot = thread_ordinal() % SHARDS;
        let mut ring = inner.shards[slot].lock().unwrap();
        if ring.len() >= inner.cap_per_shard {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(decision);
    }

    /// Total decisions ever recorded.
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Decisions evicted by ring overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Merge every shard into one sequence-ordered view.
    pub fn snapshot(&self) -> Vec<BalanceDecision> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            all.extend(shard.lock().unwrap().iter().cloned());
        }
        all.sort_by_key(|d| d.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(shard: u64) -> BalanceDecision {
        BalanceDecision {
            action: "split".into(),
            shard,
            src: "worker-0".into(),
            inputs: vec![("len".into(), "21000".into()), ("max".into(), "20000".into())],
            result_shards: vec![shard + 100, shard + 101],
            outcome: "ok".into(),
            duration_us: 42,
            ..Default::default()
        }
    }

    #[test]
    fn records_in_order_and_bounds_memory() {
        let log = AuditLog::new(64);
        for i in 0..200 {
            log.record(decision(i));
        }
        let all = log.snapshot();
        assert!(all.len() <= 200);
        assert_eq!(log.recorded(), 200);
        assert_eq!(log.recorded() - log.dropped(), all.len() as u64);
        for w in all.windows(2) {
            assert!(w[0].seq < w[1].seq, "snapshot is sequence-ordered");
        }
        // Single-threaded writers land in one shard: the newest win, and the
        // caller-provided seq was overwritten by the ring's own stamp.
        assert_eq!(all.last().unwrap().shard, 199);
        assert_eq!(all.last().unwrap().seq, 199);
    }

    #[test]
    fn structured_fields_survive() {
        let log = AuditLog::new(16);
        log.record(decision(7));
        let d = &log.snapshot()[0];
        assert_eq!(d.action, "split");
        assert_eq!(d.inputs[1], ("max".to_string(), "20000".to_string()));
        assert_eq!(d.result_shards, vec![107, 108]);
        assert_eq!(d.outcome, "ok");
    }
}
