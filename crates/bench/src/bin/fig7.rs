//! Figure 7: insert and query throughput/latency during horizontal
//! scale-up (same experiment as Figure 6, performance view).
//!
//! Paper setup: N ≈ p × 50 M with p = 4…20 workers, benchmarks at each
//! step for inserts and low/medium/high coverage queries. Expected shape:
//! a near-flat insert curve (≈ 50 k/s on 20 EC2 nodes) and a gently
//! sloping query curve (≈ 20 k/s), i.e. performance sustained while both
//! the database and the worker pool grow.

use volap_bench::scaleup::{bands, run, ScaleUpParams};
use volap_bench::{quick_mode, scaled};

fn main() {
    let params = ScaleUpParams {
        initial_workers: 4,
        workers_per_phase: 2,
        phases: scaled(9, 3),
        items_per_worker: scaled(8_000, 2_000),
        queries_per_band: scaled(30, 8),
        sessions: 6,
        max_shard_items: scaled(4_000, 1_500) as u64,
    };
    println!("# Figure 7: throughput and latency vs system size (TPC-DS)");
    if quick_mode() {
        println!("# (quick mode)");
    }
    let result = run(&params);
    println!(
        "{:>6} {:>8} {:>10} {:<10} {:>14} {:>12} {:>12}",
        "phase", "workers", "db_size", "op", "tput_ops_s", "lat_ms", "lat_p95_ms"
    );
    for p in &result.phases {
        println!(
            "{:>6} {:>8} {:>10} {:<10} {:>14.0} {:>12.4} {:>12.4}",
            p.phase,
            p.workers,
            p.db_size,
            "insert",
            p.insert_tput,
            p.insert_lat.mean * 1e3,
            p.insert_lat.p95 * 1e3
        );
        for (b, band) in bands().iter().enumerate() {
            if p.query_lat[b].n == 0 {
                continue;
            }
            println!(
                "{:>6} {:>8} {:>10} {:<10} {:>14.0} {:>12.4} {:>12.4}",
                p.phase,
                p.workers,
                p.db_size,
                format!("q-{band}"),
                p.query_tput[b],
                p.query_lat[b].mean * 1e3,
                p.query_lat[b].p95 * 1e3
            );
        }
    }
    // Shape summary: insert curve flatness and query slope.
    if result.phases.len() >= 2 {
        let first = &result.phases[0];
        let last = result.phases.last().unwrap();
        println!(
            "# insert throughput: first phase {:.0}/s, last phase {:.0}/s (ratio {:.2}; paper: nearly flat)",
            first.insert_tput,
            last.insert_tput,
            last.insert_tput / first.insert_tput
        );
        println!(
            "# db grew {:.1}x while workers grew {:.1}x",
            last.db_size as f64 / first.db_size as f64,
            last.workers as f64 / first.workers as f64
        );
    }
}
