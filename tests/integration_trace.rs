//! End-to-end causal tracing: a sampled query through a multi-server,
//! multi-shard cluster must yield one assembled trace whose spans cover
//! every layer it crossed — server routing, net hops, worker queues, and
//! per-shard tree execution — with correct parent/child edges, and that
//! trace must survive both the Perfetto and binary round trips.

use std::time::Duration;

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};
use volap_obs::export;
use volap_obs::Trace;

fn traced_cluster() -> (Cluster, Schema) {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2; // 4 shards
    cfg.manager_enabled = false; // stable shard set -> deterministic span shape
    cfg.trace_sample = 1; // sample everything
    cfg.trace_slow_threshold = Duration::ZERO; // every root enters the recorder
    (Cluster::start(cfg), schema)
}

/// The trace in the slow ring whose root carries the given `op` annotation,
/// most recent first.
fn find_trace(traces: &[Trace], op: &str) -> Option<Trace> {
    traces
        .iter()
        .rev()
        .find(|t| t.root().is_some_and(|r| r.annotation("op") == Some(op)))
        .cloned()
}

#[test]
fn sampled_query_produces_a_complete_causal_trace() {
    let (cluster, schema) = traced_cluster();
    assert_eq!(cluster.shard_count(), 4);

    let mut gen = DataGen::new(&schema, 11, 1.2);
    cluster.client_on(0).bulk_insert(gen.items(400)).expect("bulk");

    // Ingest went through server-0; query through server-1. Its routing
    // image lags by up to one sync period (bounded staleness), so poll
    // until the cross-server view converges.
    let client = cluster.client_on(1);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (agg, shards_searched) = loop {
        let (agg, shards) = client.query(&QueryBox::all(&schema)).expect("query");
        if agg.count == 400 || std::time::Instant::now() > deadline {
            break (agg, shards);
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(agg.count, 400, "server-1's image converged");
    assert_eq!(shards_searched, 4);

    let slow = cluster.slow_traces();
    let trace = find_trace(&slow, "query").expect("query trace recorded");

    // Root: the server-side routing span.
    let root = trace.root().expect("trace has a root");
    assert_eq!(root.name, "server_route");
    assert_eq!(root.parent_span_id, 0);
    assert_eq!(root.annotation("server"), Some("server-1"));
    assert!(root.duration_us() > 0 || root.start_us == root.end_us);

    // One net hop per worker destination, each a direct child of the root.
    let hops: Vec<_> = trace
        .children_of(root.span_id)
        .into_iter()
        .filter(|s| s.name == "net_hop")
        .collect();
    assert_eq!(hops.len(), 2, "one hop per worker:\n{}", trace.render_tree());
    for hop in &hops {
        assert!(hop.annotation("dest").is_some_and(|d| d.starts_with("worker-")));
        assert!(hop.annotation("error").is_none());

        // Under each hop: the measured queue wait and the worker-side
        // execution span.
        let kids = trace.children_of(hop.span_id);
        let queue = kids.iter().find(|s| s.name == "worker_queue");
        let exec = kids.iter().find(|s| s.name == "worker_query");
        assert!(queue.is_some(), "worker_queue under hop:\n{}", trace.render_tree());
        let exec = exec.unwrap_or_else(|| panic!("worker_query under hop:\n{}", trace.render_tree()));

        // Per-shard tree execution, annotated with traversal statistics.
        let scans: Vec<_> = trace
            .children_of(exec.span_id)
            .into_iter()
            .filter(|s| s.name == "tree_exec")
            .collect();
        assert_eq!(scans.len(), 2, "two shards per worker:\n{}", trace.render_tree());
        for scan in &scans {
            assert!(scan.annotation("shard").is_some());
            assert!(scan.annotation("nodes_visited").is_some());
            let scanned: u64 =
                scan.annotation("items_scanned").unwrap().parse().expect("numeric");
            let _ = scanned; // may be 0 for covered subtrees
        }
    }

    // Every span in the trace belongs to it and links to a present parent.
    for span in &trace.spans {
        assert_eq!(span.trace_id, trace.trace_id);
        if span.parent_span_id != 0 {
            assert!(
                trace.spans.iter().any(|s| s.span_id == span.parent_span_id),
                "orphaned span {}:\n{}",
                span.name,
                trace.render_tree()
            );
        }
        assert!(span.end_us >= span.start_us);
    }

    // Render never panics and shows the whole tree.
    let rendered = trace.render_tree();
    assert!(rendered.contains("server_route"));
    assert!(rendered.contains("tree_exec"));

    cluster.shutdown();
}

#[test]
fn sampled_insert_traces_the_single_hop_path() {
    let (cluster, schema) = traced_cluster();
    let mut gen = DataGen::new(&schema, 13, 1.0);
    for item in gen.items(10) {
        cluster.client_on(0).insert(&item).expect("insert");
    }

    let trace = find_trace(&cluster.slow_traces(), "insert").expect("insert trace");
    let root = trace.root().expect("root");
    assert_eq!(root.name, "server_route");
    let hops: Vec<_> = trace
        .children_of(root.span_id)
        .into_iter()
        .filter(|s| s.name == "net_hop")
        .collect();
    assert_eq!(hops.len(), 1, "insert routes to exactly one worker");
    let kids = trace.children_of(hops[0].span_id);
    assert!(kids.iter().any(|s| s.name == "worker_queue"));
    assert!(kids.iter().any(|s| s.name == "worker_insert"));
    cluster.shutdown();
}

#[test]
fn traces_round_trip_through_perfetto_and_binary_formats() {
    let (cluster, schema) = traced_cluster();
    let mut gen = DataGen::new(&schema, 17, 1.2);
    cluster.client_on(0).bulk_insert(gen.items(200)).expect("bulk");
    cluster.client_on(0).query(&QueryBox::all(&schema)).expect("query");

    let slow = cluster.slow_traces();
    assert!(!slow.is_empty());

    let json = export::traces_to_perfetto(&slow);
    let parsed = export::traces_from_perfetto(&json).expect("perfetto parses");
    assert_eq!(parsed, slow, "Perfetto export is lossless");

    for trace in &slow {
        let decoded = Trace::decode(&trace.encode()).expect("binary decodes");
        assert_eq!(&decoded, trace, "binary format is lossless");
    }
    cluster.shutdown();
}

#[test]
fn tracing_disabled_by_default_records_nothing() {
    let schema = Schema::uniform(2, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.manager_enabled = false;
    assert_eq!(cfg.trace_sample, 0, "tracing defaults off");
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 5, 1.0);
    client.bulk_insert(gen.items(100)).expect("bulk");
    client.query(&QueryBox::all(&schema)).expect("query");
    assert!(cluster.slow_traces().is_empty());
    assert!(cluster.tracer().spans().is_empty());
    cluster.shutdown();
}

#[test]
fn flight_recorder_threshold_filters_fast_requests() {
    let (cluster, schema) = traced_cluster();
    // Raise the threshold far beyond anything this workload can take.
    cluster.tracer().set_slow_threshold(Duration::from_secs(3600));
    let mut gen = DataGen::new(&schema, 19, 1.0);
    cluster.client_on(0).bulk_insert(gen.items(100)).expect("bulk");
    cluster.client_on(0).query(&QueryBox::all(&schema)).expect("query");
    assert!(cluster.slow_traces().is_empty(), "nothing should be this slow");
    // Spans were still collected (sampling is on) — only the recorder gate
    // filtered them.
    assert!(!cluster.tracer().spans().is_empty());
    cluster.shutdown();
}
