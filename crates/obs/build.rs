//! Captures the compiler version at build time for the `volap_build_info`
//! gauge (`volap_obs::build_info_gauge`). No dependencies: just `$RUSTC
//! --version`.

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = std::process::Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "rustc unknown".to_string());
    println!("cargo:rustc-env=VOLAP_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-changed=build.rs");
}
