//! Quickstart: boot a small VOLAP cluster, stream in TPC-DS-style facts,
//! and run hierarchical aggregate queries while data keeps arriving.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{DimPath, QueryBox, Schema};

fn main() {
    // The paper's Figure-1 schema: 8 hierarchical dimensions.
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 4;
    cfg.servers = 2;
    println!("starting VOLAP: {} workers, {} servers, shard store = {}", cfg.workers, cfg.servers, cfg.store_kind);
    let cluster = Cluster::start(cfg);
    let client = cluster.client();

    // Stream in 20k synthetic retail facts.
    let mut gen = DataGen::new(&schema, 42, 1.5);
    let n = 20_000;
    let t = Instant::now();
    for item in gen.items(n) {
        client.insert(&item).expect("insert");
    }
    let dt = t.elapsed();
    println!(
        "ingested {n} items in {dt:?} ({:.0} items/s, point inserts through the full stack)",
        n as f64 / dt.as_secs_f64()
    );

    // Query 1: total sales across the whole database.
    let (all, shards) = client.query(&QueryBox::all(&schema)).expect("query");
    println!(
        "ALL: count={} sum={:.2} mean={:.2} (searched {shards} shards)",
        all.count,
        all.sum,
        all.mean().unwrap_or(0.0)
    );

    // Query 2: drill into one Store country (dimension 0, level 1).
    let mut paths: Vec<DimPath> = (0..schema.dims()).map(DimPath::root).collect();
    paths[0] = DimPath::new(0, vec![0]);
    let q = QueryBox::from_paths(&schema, &paths);
    let (country, _) = client.query(&q).expect("query");
    println!(
        "Store.Country=0: count={} ({:.1}% of facts) sum={:.2}",
        country.count,
        100.0 * country.count as f64 / all.count as f64,
        country.sum
    );

    // Query 3: conjunctive drill-down — one country AND one item category
    // AND one year, everything else unconstrained.
    paths[2] = DimPath::new(2, vec![0]); // Item.Category = 0
    paths[3] = DimPath::new(3, vec![0]); // Date.Year = 0
    let q = QueryBox::from_paths(&schema, &paths);
    let (drill, _) = client.query(&q).expect("query");
    println!(
        "country 0 x category 0 x year 0: count={} sum={:.2}",
        drill.count, drill.sum
    );

    cluster.shutdown();
    println!("done");
}
