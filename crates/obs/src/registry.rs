//! The metrics registry: named counters, gauges, and fixed-bucket log2
//! latency histograms.
//!
//! Registration (name → handle) takes a `Mutex` once; the **record path
//! never locks**: counters and gauges are single atomics, histograms are a
//! fixed array of atomic buckets indexed by the bit length of the observed
//! nanosecond value. Handles are cheap `Arc` clones meant to be acquired at
//! component startup and stored, not looked up per operation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of histogram buckets. Bucket `i < HIST_BUCKETS-1` holds values
/// whose bit length is `i` (i.e. `ns ≤ 2^i − 1`); the last bucket is the
/// overflow. 40 buckets cover 0 ns .. ~9 minutes, plenty for any latency
/// this system produces.
pub const HIST_BUCKETS: usize = 40;

/// Bucket index for a nanosecond observation: its bit length, clipped.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Upper bound (inclusive, in seconds) of finite bucket `i`.
#[inline]
pub fn bucket_le_seconds(i: usize) -> f64 {
    (((1u64 << i) - 1) as f64) * 1e-9
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (tests, detached components).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistoCore {
    /// Shared with the owning registry: flipping it off turns every
    /// `observe` into a single relaxed load and a branch.
    enabled: Arc<AtomicBool>,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

/// A log2-bucketed latency histogram over nanosecond observations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistoCore>);

impl Histogram {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self(Arc::new(HistoCore {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }))
    }

    /// A histogram not attached to any registry, always enabled.
    pub fn detached() -> Self {
        Self::new(Arc::new(AtomicBool::new(true)))
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        let core = &*self.0;
        if !core.enabled.load(Ordering::Relaxed) {
            return;
        }
        core.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`].
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Start a timer that records into this histogram when dropped.
    #[inline]
    pub fn start(&self) -> Timer {
        Timer { hist: self.clone(), start: Instant::now(), armed: true }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// A drop-recording timer from [`Histogram::start`]. Recording on drop keeps
/// every early-return path of a handler covered; call [`Timer::cancel`] to
/// discard the measurement instead.
pub struct Timer {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl Timer {
    /// Discard this measurement.
    pub fn cancel(mut self) {
        self.armed = false;
    }

    /// Elapsed time so far (the timer keeps running).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.observe(self.start.elapsed());
        }
    }
}

/// A metric's identity: a name plus an optional single `key="value"` label
/// pair (enough to distinguish per-server / per-worker instances without a
/// full label-set model).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name (`[a-z0-9_]+` by convention, `volap_` prefixed).
    pub name: String,
    /// Optional `(key, value)` label.
    pub label: Option<(String, String)>,
}

impl MetricId {
    /// An unlabeled id.
    pub fn plain(name: impl Into<String>) -> Self {
        Self { name: name.into(), label: None }
    }

    /// A labeled id.
    pub fn labeled(name: impl Into<String>, k: impl Into<String>, v: impl Into<String>) -> Self {
        Self { name: name.into(), label: Some((k.into(), v.into())) }
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Borrowed view of one metric's current value, passed to the callback of
/// [`Registry::visit`].
pub enum MetricView<'a> {
    /// A counter's current total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's current totals (per-bucket, non-cumulative).
    Histogram(&'a HistView),
}

/// Raw histogram state for [`Registry::visit`]: total count plus the
/// per-bucket (non-cumulative) counts.
pub struct HistView {
    /// Total observation count.
    pub count: u64,
    /// Per-bucket counts, index = [`bucket_index`].
    pub buckets: [u64; HIST_BUCKETS],
}

/// A snapshot of one counter or gauge.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarSnapshot<T> {
    /// Metric identity.
    pub id: MetricId,
    /// Value at snapshot time.
    pub value: T,
}

/// A snapshot of one histogram: cumulative finite buckets plus totals.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric identity.
    pub id: MetricId,
    /// Total observation count (the implicit `+Inf` bucket).
    pub count: u64,
    /// Sum of observations in seconds.
    pub sum_seconds: f64,
    /// Cumulative counts for the finite buckets: `(le_seconds, count ≤ le)`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Approximate quantile from the bucket upper bounds (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        for &(le, c) in &self.buckets {
            if c >= target.max(1) {
                return le;
            }
        }
        f64::INFINITY
    }
}

struct RegistryInner {
    hist_enabled: Arc<AtomicBool>,
    slots: Mutex<BTreeMap<MetricId, Slot>>,
}

/// The registry: a name → handle map. Cheap to clone (shared).
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new(true)
    }
}

impl Registry {
    /// Create a registry; `histograms` arms or disarms every histogram it
    /// ever hands out (the `VolapConfig::obs_histograms` knob).
    pub fn new(histograms: bool) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                hist_enabled: Arc::new(AtomicBool::new(histograms)),
                slots: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Arm or disarm every histogram handed out by this registry.
    pub fn set_histograms_enabled(&self, on: bool) {
        self.inner.hist_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether histograms currently record.
    pub fn histograms_enabled(&self) -> bool {
        self.inner.hist_enabled.load(Ordering::Relaxed)
    }

    fn slot_for(&self, id: MetricId, make: impl FnOnce(&Self) -> Slot) -> Slot {
        let mut slots = self.inner.slots.lock().unwrap();
        let slot = slots.entry(id).or_insert_with(|| make(self));
        match slot {
            Slot::Counter(c) => Slot::Counter(c.clone()),
            Slot::Gauge(g) => Slot::Gauge(g.clone()),
            Slot::Histogram(h) => Slot::Histogram(h.clone()),
        }
    }

    /// Get or register an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_id(MetricId::plain(name))
    }

    /// Get or register a labeled counter.
    pub fn counter_labeled(&self, name: &str, k: &str, v: &str) -> Counter {
        self.counter_id(MetricId::labeled(name, k, v))
    }

    /// Get or register a counter by full id.
    pub fn counter_id(&self, id: MetricId) -> Counter {
        match self.slot_for(id.clone(), |_| Slot::Counter(Counter::default())) {
            Slot::Counter(c) => c,
            _ => panic!("metric {id:?} already registered with a different kind"),
        }
    }

    /// Get or register an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_id(MetricId::plain(name))
    }

    /// Get or register a labeled gauge.
    pub fn gauge_labeled(&self, name: &str, k: &str, v: &str) -> Gauge {
        self.gauge_id(MetricId::labeled(name, k, v))
    }

    /// Get or register a gauge by full id.
    pub fn gauge_id(&self, id: MetricId) -> Gauge {
        match self.slot_for(id.clone(), |_| Slot::Gauge(Gauge::default())) {
            Slot::Gauge(g) => g,
            _ => panic!("metric {id:?} already registered with a different kind"),
        }
    }

    /// Get or register an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_id(MetricId::plain(name))
    }

    /// Get or register a labeled histogram.
    pub fn histogram_labeled(&self, name: &str, k: &str, v: &str) -> Histogram {
        self.histogram_id(MetricId::labeled(name, k, v))
    }

    /// Get or register a histogram by full id.
    pub fn histogram_id(&self, id: MetricId) -> Histogram {
        let make =
            |reg: &Self| Slot::Histogram(Histogram::new(Arc::clone(&reg.inner.hist_enabled)));
        match self.slot_for(id.clone(), make) {
            Slot::Histogram(h) => h,
            _ => panic!("metric {id:?} already registered with a different kind"),
        }
    }

    /// Sum of all counters with the given name across labels.
    pub fn sum_counters(&self, name: &str) -> u64 {
        let slots = self.inner.slots.lock().unwrap();
        slots
            .iter()
            .filter(|(id, _)| id.name == name)
            .map(|(_, s)| match s {
                Slot::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Visit every metric in id order without cloning ids or allocating:
    /// the sampler in [`crate::history`] runs this once per interval, so the
    /// steady-state cost is one registry mutex hold plus relaxed loads.
    /// Histogram buckets are surfaced through a stack-resident [`HistView`]
    /// reused across calls.
    pub fn visit(&self, mut f: impl FnMut(&MetricId, MetricView<'_>)) {
        let slots = self.inner.slots.lock().unwrap();
        let mut view = HistView { count: 0, buckets: [0; HIST_BUCKETS] };
        for (id, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => f(id, MetricView::Counter(c.get())),
                Slot::Gauge(g) => f(id, MetricView::Gauge(g.get())),
                Slot::Histogram(h) => {
                    view.count = h.count();
                    view.buckets = h.bucket_counts();
                    f(id, MetricView::Histogram(&view));
                }
            }
        }
    }

    /// Snapshot every metric, sorted by id.
    pub fn snapshot(
        &self,
    ) -> (Vec<ScalarSnapshot<u64>>, Vec<ScalarSnapshot<i64>>, Vec<HistogramSnapshot>) {
        let slots = self.inner.slots.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histos = Vec::new();
        for (id, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    counters.push(ScalarSnapshot { id: id.clone(), value: c.get() })
                }
                Slot::Gauge(g) => gauges.push(ScalarSnapshot { id: id.clone(), value: g.get() }),
                Slot::Histogram(h) => {
                    let per_bucket = h.bucket_counts();
                    let mut cum = 0u64;
                    let mut buckets = Vec::with_capacity(HIST_BUCKETS - 1);
                    for (i, &c) in per_bucket.iter().enumerate().take(HIST_BUCKETS - 1) {
                        cum += c;
                        buckets.push((bucket_le_seconds(i), cum));
                    }
                    histos.push(HistogramSnapshot {
                        id: id.clone(),
                        count: h.count(),
                        sum_seconds: h.sum_seconds(),
                        buckets,
                    });
                }
            }
        }
        (counters, gauges, histos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = Registry::new(true);
        let c = reg.counter("volap_test_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("volap_test_total").get(), 5, "handles share state");
        let g = reg.gauge_labeled("volap_depth", "worker", "w0");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let a = reg.counter_labeled("volap_lbl_total", "server", "s0");
        let b = reg.counter_labeled("volap_lbl_total", "server", "s1");
        a.add(2);
        b.add(3);
        assert_eq!(reg.sum_counters("volap_lbl_total"), 5);
    }

    #[test]
    fn histogram_buckets_and_disable() {
        let reg = Registry::new(true);
        let h = reg.histogram("volap_lat_seconds");
        h.observe_ns(0);
        h.observe_ns(1);
        h.observe_ns(3);
        h.observe_ns(1 << 20);
        assert_eq!(h.count(), 4);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[2], 1);
        assert_eq!(b[21], 1);
        reg.set_histograms_enabled(false);
        h.observe_ns(5);
        assert_eq!(h.count(), 4, "disabled histogram must not record");
        reg.set_histograms_enabled(true);
        {
            let _t = h.start();
        }
        assert_eq!(h.count(), 5, "timer drop records");
        let t = h.start();
        t.cancel();
        assert_eq!(h.count(), 5, "cancelled timer does not record");
    }

    #[test]
    fn bucket_index_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index((1 << 39) - 1), 39);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Every value in finite bucket i satisfies ns <= 2^i - 1.
        for i in 0..HIST_BUCKETS - 1 {
            let le = bucket_le_seconds(i);
            assert!(le >= 0.0);
            if i > 0 {
                assert!(le > bucket_le_seconds(i - 1), "le strictly increasing");
            }
        }
    }

    #[test]
    fn snapshot_is_cumulative_and_sorted() {
        let reg = Registry::new(true);
        reg.counter("volap_b_total").inc();
        reg.counter("volap_a_total").inc();
        let h = reg.histogram("volap_h_seconds");
        h.observe_ns(1);
        h.observe_ns(100);
        let (counters, _, histos) = reg.snapshot();
        assert_eq!(counters[0].id.name, "volap_a_total");
        assert_eq!(counters[1].id.name, "volap_b_total");
        let hs = &histos[0];
        assert_eq!(hs.count, 2);
        let mut prev = 0;
        for &(_, c) in &hs.buckets {
            assert!(c >= prev, "cumulative buckets are monotone");
            prev = c;
        }
        assert_eq!(hs.buckets.last().unwrap().1, 2, "finite buckets cover both samples");
    }
}
