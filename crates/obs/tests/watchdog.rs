//! Health watchdog semantics (hysteresis, escalation, anomaly flags),
//! history-ring exactness under concurrent ingest, and exporter round-trips
//! of snapshots carrying history + health sections.

use std::time::Duration;

use volap_obs::export;
use volap_obs::{
    EventLog, HealthRule, HealthState, HeatMap, History, HistoryConfig, Obs, ObsConfig, Registry,
    Watchdog,
};

struct Rig {
    reg: Registry,
    heat: HeatMap,
    events: EventLog,
    history: History,
    watchdog: Watchdog,
}

impl Rig {
    fn new(rules: Vec<HealthRule>) -> Self {
        let cfg = HistoryConfig {
            enabled: true,
            interval: Duration::from_millis(5),
            capacity: 1024,
        };
        Self {
            reg: Registry::new(true),
            heat: HeatMap::new(false),
            events: EventLog::new(256),
            history: History::new(&cfg, std::time::Instant::now()),
            watchdog: Watchdog::new(rules),
        }
    }

    /// One sampler interval: capture a frame, evaluate the rules. Sleeps a
    /// hair so the frame has a non-zero span.
    fn tick(&self) {
        std::thread::sleep(Duration::from_millis(2));
        assert!(
            self.history.capture(&self.reg, &self.heat, &self.events, None),
            "capture refused"
        );
        self.watchdog.evaluate(&self.history, &self.events);
    }

    fn state_of(&self, component: &str, rule: &str) -> volap_obs::ComponentHealth {
        self.watchdog
            .snapshot()
            .into_iter()
            .find(|h| h.component == component && h.rule == rule)
            .expect("rule present")
    }

    fn transition_events(&self) -> usize {
        self.events.snapshot().iter().filter(|e| e.kind == "health_transition").count()
    }
}

fn gauge_rule(hysteresis: u32) -> HealthRule {
    HealthRule {
        name: "g".into(),
        component: "c".into(),
        selector: "gauge(volap_g)".into(),
        degraded_above: 10.0,
        critical_above: 100.0,
        hysteresis,
    }
}

#[test]
fn breaches_shorter_than_hysteresis_do_not_transition() {
    let rig = Rig::new(vec![gauge_rule(3)]);
    let g = rig.reg.gauge("volap_g");
    g.set(1);
    for _ in 0..3 {
        rig.tick();
    }
    // Two breaching frames, then recovery: one short of the window.
    g.set(50);
    rig.tick();
    rig.tick();
    g.set(1);
    rig.tick();
    let h = rig.state_of("c", "g");
    assert_eq!(h.state, HealthState::Healthy, "short breach must not flip the state");
    assert_eq!(h.transitions, 0);
    assert_eq!(rig.transition_events(), 0, "no transition events for a sub-window breach");
}

#[test]
fn sustained_breach_transitions_exactly_once_and_recovers() {
    let rig = Rig::new(vec![gauge_rule(3)]);
    let g = rig.reg.gauge("volap_g");
    g.set(1);
    rig.tick();
    g.set(50);
    // Window fills on the third breaching frame: exactly one transition.
    rig.tick();
    rig.tick();
    assert_eq!(rig.state_of("c", "g").state, HealthState::Healthy);
    rig.tick();
    let h = rig.state_of("c", "g");
    assert_eq!(h.state, HealthState::Degraded);
    assert_eq!(h.transitions, 1);
    assert!(h.since_us > 0);
    // Staying degraded must not flap or re-emit.
    for _ in 0..5 {
        rig.tick();
    }
    let h = rig.state_of("c", "g");
    assert_eq!(h.state, HealthState::Degraded);
    assert_eq!(h.transitions, 1, "sustained breach re-transitioned");
    assert_eq!(rig.transition_events(), 1);
    // Recovery needs its own full window, then transitions back once.
    g.set(1);
    rig.tick();
    rig.tick();
    assert_eq!(rig.state_of("c", "g").state, HealthState::Degraded);
    rig.tick();
    let h = rig.state_of("c", "g");
    assert_eq!(h.state, HealthState::Healthy);
    assert_eq!(h.transitions, 2);
    assert_eq!(rig.transition_events(), 2);
    let evs = rig.events.snapshot();
    let details: Vec<&str> = evs
        .iter()
        .filter(|e| e.kind == "health_transition")
        .map(|e| e.detail.as_str())
        .collect();
    assert!(details[0].contains("from=healthy") && details[0].contains("to=degraded"));
    assert!(details[1].contains("from=degraded") && details[1].contains("to=healthy"));
}

#[test]
fn critical_values_escalate_directly() {
    let rig = Rig::new(vec![gauge_rule(2)]);
    let g = rig.reg.gauge("volap_g");
    g.set(1);
    rig.tick();
    g.set(500); // past critical_above
    rig.tick();
    rig.tick();
    let h = rig.state_of("c", "g");
    assert_eq!(h.state, HealthState::Critical);
    assert_eq!(h.transitions, 1, "healthy -> critical is one transition, not two");
}

#[test]
fn interrupted_streaks_restart_the_window() {
    let rig = Rig::new(vec![gauge_rule(3)]);
    let g = rig.reg.gauge("volap_g");
    g.set(1);
    rig.tick();
    // Alternate breach / recover so no 3-frame streak ever completes.
    for _ in 0..4 {
        g.set(50);
        rig.tick();
        rig.tick();
        g.set(1);
        rig.tick();
    }
    let h = rig.state_of("c", "g");
    assert_eq!(h.state, HealthState::Healthy);
    assert_eq!(h.transitions, 0, "flapping input produced a transition");
}

#[test]
fn anomaly_flags_on_baseline_departure_without_threshold_breach() {
    // Thresholds far away: only the z-score can fire.
    let rule = HealthRule {
        name: "g".into(),
        component: "c".into(),
        selector: "gauge(volap_g)".into(),
        degraded_above: 100_000.0,
        critical_above: 200_000.0,
        hysteresis: 2,
    };
    let rig = Rig::new(vec![rule]);
    let g = rig.reg.gauge("volap_g");
    g.set(10);
    for _ in 0..12 {
        rig.tick(); // warm the EWMA baseline well past the 8-frame warmup
    }
    assert!(!rig.state_of("c", "g").anomalous, "stable series flagged anomalous");
    g.set(50_000); // huge departure, still below degraded_above
    rig.tick();
    let h = rig.state_of("c", "g");
    assert_eq!(h.state, HealthState::Healthy, "anomaly must not change SLO state");
    assert!(h.anomalous, "baseline departure not flagged (z = {})", h.z_score);
    assert!(h.z_score.abs() >= 4.0);
    let anomalies =
        rig.events.snapshot().iter().filter(|e| e.kind == "health_anomaly").count();
    assert_eq!(anomalies, 1, "anomaly event must fire on the rising edge only");
    rig.tick(); // still departed: flag stays, no second event
    assert_eq!(
        rig.events.snapshot().iter().filter(|e| e.kind == "health_anomaly").count(),
        1
    );
}

#[test]
fn history_deltas_stay_exact_under_concurrent_ingest() {
    // Satellite 4 at the obs level: sample continuously while writer
    // threads hammer a counter; every increment must land in exactly one
    // frame, so the ring's deltas sum to the final counter total.
    let obs = Obs::new(ObsConfig {
        history: HistoryConfig {
            enabled: true,
            interval: Duration::from_millis(1),
            capacity: 100_000,
        },
        ..ObsConfig::default()
    });
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 50_000;
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let c = obs.registry().counter("volap_ingest_total");
            s.spawn(move || {
                for _ in 0..PER_WRITER {
                    c.inc();
                }
            });
        }
        let obs = &obs;
        s.spawn(move || {
            for _ in 0..200 {
                obs.sample_tick();
                std::thread::sleep(Duration::from_micros(200));
            }
        });
    });
    obs.sample_tick(); // final frame covers the tail
    let hist = obs.history().snapshot();
    assert_eq!(hist.dropped, 0, "ring sized to be lossless");
    hist.validate().expect("ring valid under concurrency");
    let total = obs.registry().counter("volap_ingest_total").get();
    assert_eq!(total, (WRITERS as u64) * PER_WRITER);
    let framed = hist.delta_sum("rate(volap_ingest_total)");
    assert_eq!(framed, total as f64, "frame deltas lost or double-counted increments");
}

#[test]
fn exporters_round_trip_history_and_health() {
    let obs = Obs::new(ObsConfig {
        history: HistoryConfig {
            enabled: true,
            interval: Duration::from_millis(5),
            capacity: 64,
        },
        ..ObsConfig::default()
    });
    obs.registry().counter("volap_x_total").add(7);
    obs.registry().histogram("volap_h_seconds").observe_ns(1_500);
    obs.events().record("test_event", "k=v".into());
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(2));
        obs.sample_tick();
    }
    let snap = obs.snapshot();
    assert!(!snap.history.frames.is_empty());
    assert!(!snap.health.is_empty());
    assert!(snap.uptime_us > 0);
    assert!(snap.captured_unix_us > 0);

    let back = export::from_json(&export::to_json(&snap)).expect("JSON parse");
    assert_eq!(back, snap, "JSON round trip lost history/health data");

    let prom = export::to_prometheus(&snap);
    let prom_back = export::from_prometheus(&prom).expect("prometheus parse");
    assert_eq!(prom_back, snap.metrics_only());
    assert!(
        prom.contains("volap_health_state{component=\"image_sync\"}"),
        "health gauge missing from exposition"
    );
    assert!(prom.contains("volap_uptime_microseconds"));
    assert!(prom.contains("volap_history_frames"));

    // metrics_only folding must be idempotent (the round-trip relies on it).
    assert_eq!(prom_back.metrics_only(), prom_back);
}
