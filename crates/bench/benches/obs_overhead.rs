//! Criterion microbenchmarks: the observability record path.
//!
//! Measures the primitives every hot path pays per operation — counter
//! increment, histogram observation (enabled and disabled), the drop-timer,
//! and an event-log append — plus a contended 8-thread histogram hammer.
//! `bench_obs` (bin) guards the end-to-end ingest overhead in
//! `BENCH_obs.json`; these benches watch the per-record cost at criterion
//! precision so a regression is attributable to a specific primitive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use volap_obs::{Obs, ObsConfig, Registry, TraceConfig, Tracer};

fn bench_record_path(c: &mut Criterion) {
    let reg = Registry::new(true);
    let counter = reg.counter("volap_bench_total");
    let hist = reg.histogram("volap_bench_seconds");
    let reg_off = Registry::new(false);
    let hist_off = reg_off.histogram("volap_bench_seconds");
    let obs = Obs::new(ObsConfig::default());

    let mut group = c.benchmark_group("obs_record");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            counter.get()
        })
    });
    group.bench_function("histogram_observe", |b| {
        let mut ns = 1u64;
        b.iter(|| {
            ns = ns.wrapping_mul(2654435761).max(1);
            hist.observe_ns(ns);
            ns
        })
    });
    group.bench_function("histogram_observe_disabled", |b| {
        b.iter(|| {
            hist_off.observe_ns(1234);
            hist_off.count()
        })
    });
    group.bench_function("timer_start_drop", |b| {
        b.iter(|| {
            let _timer = hist.start();
        })
    });
    group.bench_function("event_record", |b| {
        b.iter(|| obs.events().record("bench", String::from("k=v")))
    });
    group.finish();
}

fn bench_contended_histogram(c: &mut Criterion) {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = Registry::new(true);
    let hist = reg.histogram("volap_contended_seconds");
    let mut group = c.benchmark_group("obs_contended");
    group.throughput(Throughput::Elements((THREADS as u64) * PER_THREAD));
    group.sample_size(10);
    group.bench_function("histogram_8_threads", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let hist = hist.clone();
                    s.spawn(move || {
                        for i in 0..PER_THREAD {
                            hist.observe_ns((t as u64) * PER_THREAD + i);
                        }
                    });
                }
            });
            hist.count()
        })
    });
    group.finish();
}

fn bench_trace_path(c: &mut Criterion) {
    let off = Tracer::new(TraceConfig { sample: 0, ..TraceConfig::default() });
    let sampled = Tracer::new(TraceConfig { sample: 64, ..TraceConfig::default() });
    let always = Tracer::new(TraceConfig { sample: 1, ..TraceConfig::default() });
    let ctx = always.sample_root().expect("always-on samples");

    let mut group = c.benchmark_group("obs_trace");
    group.throughput(Throughput::Elements(1));
    // The cost every unsampled request pays: one relaxed load + a branch.
    group.bench_function("sample_root_off", |b| b.iter(|| off.sample_root().is_none()));
    // Amortized decision cost at the production rate (63 misses + 1 hit).
    group.bench_function("sample_root_1_in_64", |b| {
        b.iter(|| sampled.sample_root().is_some())
    });
    // Full span lifecycle for a sampled request: child ctx + guard + record.
    group.bench_function("span_record", |b| {
        b.iter(|| {
            let child = always.child(&ctx);
            let mut span = always.span(&child, "bench");
            span.annotate("k", "v");
        })
    });
    group.finish();
}

criterion_group!(benches, bench_record_path, bench_contended_histogram, bench_trace_path);
criterion_main!(benches);
