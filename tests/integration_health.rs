//! Cluster-level continuous telemetry: the acceptance workload for the
//! history ring + SLO watchdog. A 2-server / 4-shard cluster with an
//! artificially slow image sync must breach a staleness rule, turn
//! `Cluster::health()` Degraded within a sampler interval of the breach
//! landing in a frame, leave a `health_transition` event in the event ring,
//! and flip `volap_health_state` in the Prometheus exposition. A second
//! test pins down frame-delta exactness against live registry totals while
//! ingest runs.

use std::time::{Duration, Instant};

use volap::{Cluster, HealthRule, HealthState, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};
use volap_obs::export;

fn eventually(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

#[test]
fn seeded_slo_breach_degrades_health_and_surfaces_everywhere() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2; // 4 shards
    cfg.manager_enabled = false;
    // Seed the breach: image sync delayed to 400 ms, so every cross-server
    // delta is applied hundreds of milliseconds stale — far past the rule.
    cfg.sync_period = Duration::from_millis(400);
    cfg.history_interval = Duration::from_millis(40);
    cfg.health_rules = vec![HealthRule {
        name: "staleness_p99".into(),
        component: "image_sync".into(),
        selector: "p99(volap_staleness_seconds)".into(),
        degraded_above: 0.05,
        critical_above: 60.0, // unreachable: the test pins Degraded, not Critical
        hysteresis: 1,
    }];
    let cluster = Cluster::start(cfg);
    assert_eq!(cluster.shard_count(), 4);
    assert!(cluster.health().iter().all(|h| h.state == HealthState::Healthy));

    // Drive inserts through both servers until the slow sync has measured
    // stale applications and the watchdog has seen the frame. The workload
    // keeps expanding shard boxes so each sync round has deltas to apply.
    let mut gen = DataGen::new(&schema, 11, 1.3);
    let mut degraded = |cluster: &Cluster| {
        for (i, item) in gen.items(64).into_iter().enumerate() {
            cluster.client_on(i % 2).insert(&item).expect("insert");
        }
        cluster
            .health()
            .iter()
            .any(|h| h.component == "image_sync" && h.state == HealthState::Degraded)
    };
    assert!(
        eventually(Duration::from_secs(15), || degraded(&cluster)),
        "staleness breach never degraded image_sync health: {:?}",
        cluster.health()
    );

    let snap = cluster.snapshot();
    // The transition left an event in the ring...
    let transition = snap
        .events_of("health_transition")
        .find(|e| e.detail.contains("component=image_sync") && e.detail.contains("to=degraded"))
        .cloned();
    assert!(transition.is_some(), "no health_transition event for the breach");
    // ...the snapshot carries the health section and the frames behind it...
    let h = snap
        .health
        .iter()
        .find(|h| h.component == "image_sync")
        .expect("image_sync in snapshot health");
    assert_eq!(h.state, HealthState::Degraded);
    assert!(h.value > 0.05, "breaching value not recorded: {}", h.value);
    assert!(h.transitions >= 1);
    assert!(!snap.history.frames.is_empty());
    snap.history.validate().expect("history ring invalid");
    // ...and the Prometheus exposition reports the degraded gauge.
    let prom = export::to_prometheus(&snap);
    let line = prom
        .lines()
        .find(|l| l.starts_with("volap_health_state{component=\"image_sync\"}"))
        .expect("volap_health_state gauge missing");
    let score: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(score >= 1.0, "exposition still healthy: {line}");

    // Queries still answer while degraded: the watchdog observes, it does
    // not gate the data path.
    let (agg, _) = cluster.client().query(&QueryBox::all(&schema)).expect("query");
    assert!(agg.count > 0);
    cluster.shutdown();
}

#[test]
fn history_frames_account_for_live_ingest_exactly() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false; // stable shard set -> exact counters
    cfg.sync_period = Duration::from_millis(20);
    cfg.history_interval = Duration::from_millis(20);
    cfg.history_capacity = 4096;
    let cluster = Cluster::start(cfg);

    const INSERTS: u64 = 1_200;
    const QUERIES: u64 = 30;
    let mut gen = DataGen::new(&schema, 13, 1.2);
    for (i, item) in gen.items(INSERTS as usize).into_iter().enumerate() {
        cluster.client_on(i % 2).insert(&item).expect("insert");
    }
    for i in 0..QUERIES {
        cluster.client_on(i as usize % 2).query(&QueryBox::all(&schema)).expect("query");
    }

    // Wait for the sampler to frame the tail of the workload, then the
    // ring's per-frame deltas must sum to the live counters exactly.
    assert!(
        eventually(Duration::from_secs(10), || {
            let hist = cluster.history();
            hist.delta_sum_all_labels("volap_server_inserts_total") >= INSERTS as f64
                && hist.delta_sum_all_labels("volap_server_queries_total") >= QUERIES as f64
        }),
        "sampler never framed the whole workload"
    );
    let hist = cluster.history();
    hist.validate().expect("history ring invalid");
    assert_eq!(hist.dropped, 0, "ring sized to be lossless for this workload");
    let snap = cluster.snapshot();
    assert_eq!(
        hist.delta_sum_all_labels("volap_server_inserts_total"),
        snap.counter("volap_server_inserts_total") as f64,
        "frame deltas disagree with the live insert counter"
    );
    assert_eq!(
        hist.delta_sum_all_labels("volap_server_queries_total"),
        snap.counter("volap_server_queries_total") as f64,
        "frame deltas disagree with the live query counter"
    );
    assert_eq!(snap.counter("volap_server_inserts_total"), INSERTS);

    // Satellite: the snapshot is stamped with capture time and uptime, and
    // both survive the JSON round trip.
    assert!(snap.captured_unix_us > 0 && snap.uptime_us > 0);
    let back = export::from_json(&export::to_json(&snap)).expect("JSON parse");
    assert_eq!(back.captured_unix_us, snap.captured_unix_us);
    assert_eq!(back.uptime_us, snap.uptime_us);
    assert_eq!(back.history, snap.history);
    cluster.shutdown();
}
