//! Figure 6: real-time load balancing during horizontal scale-up.
//!
//! Paper setup: phases interleave loading with adding two workers; the
//! figure plots the min/max data size per worker over time (the red region)
//! with cumulative split and migration counts on the right axis. Paper
//! scale: N ≈ p × 50 M, p = 4…20. Scaled here to N ≈ p × (items/worker
//! below), same worker counts.
//!
//! Expected shape: each time workers are added, the minimum drops to zero
//! (new workers are empty), then the balancer closes the min/max gap by
//! migrating shards; loading then raises both curves together.

use volap_bench::scaleup::{run, ScaleUpParams};
use volap_bench::{quick_mode, scaled};

fn main() {
    let params = ScaleUpParams {
        initial_workers: 4,
        workers_per_phase: 2,
        phases: scaled(9, 3), // p = 4, 6, ..., 20 at full scale
        items_per_worker: scaled(8_000, 2_000),
        queries_per_band: scaled(20, 6),
        sessions: 4,
        max_shard_items: scaled(4_000, 1_500) as u64,
    };
    println!(
        "# Figure 6: load balancing during scale-up (p = {}..{}, items/worker = {})",
        params.initial_workers,
        params.initial_workers + params.workers_per_phase * (params.phases - 1),
        params.items_per_worker
    );
    if quick_mode() {
        println!("# (quick mode)");
    }
    let result = run(&params);
    println!(
        "{:>9} {:>8} {:>10} {:>10} {:>8} {:>12}",
        "t_s", "workers", "min_load", "max_load", "splits", "migrations"
    );
    for s in &result.samples {
        println!(
            "{:>9.2} {:>8} {:>10} {:>10} {:>8} {:>12}",
            s.t, s.workers, s.min_load, s.max_load, s.splits, s.migrations
        );
    }
    // Shape checks mirrored in EXPERIMENTS.md.
    let max_workers = result.samples.iter().map(|s| s.workers).max().unwrap_or(0);
    let final_ = result.samples.last().expect("samples");
    println!("# final: workers={max_workers} splits={} migrations={}", final_.splits, final_.migrations);
    let dropped_to_zero = result
        .samples
        .windows(2)
        .any(|w| w[1].workers > w[0].workers && w[1].min_load == 0);
    println!("# min dropped to 0 on worker addition: {dropped_to_zero}");
    let gap_closed = result
        .samples
        .iter()
        .rev()
        .take(5)
        .all(|s| s.min_load > 0 && s.max_load - s.min_load <= s.max_load / 2 + 2_000);
    println!("# min/max gap closed by balancer at the end: {gap_closed}");
}
