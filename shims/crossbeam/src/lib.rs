//! Offline shim for the `crossbeam` crate.
//!
//! Only [`channel`] is provided: a multi-producer **multi-consumer** queue
//! (both [`channel::Sender`] and [`channel::Receiver`] are cloneable and
//! clones share one queue), because the in-memory network fabric load-balances
//! one endpoint queue across several service threads. Implementation is a
//! `Mutex<VecDeque>` + condvars rather than crossbeam's lock-free core — the
//! semantics (blocking, bounded capacity, disconnect on last drop) match.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (multi-consumer — clones share the queue).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded channel; `send` blocks when `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued (bounded channels apply
        /// backpressure); fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the first recv
                "sent"
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(t.join().unwrap(), "sent");
        }

        #[test]
        fn mpmc_clone_receivers_share_queue() {
            let (tx, rx) = unbounded::<usize>();
            let rx2 = rx.clone();
            let consumers: Vec<_> = [rx, rx2]
                .into_iter()
                .map(|r| {
                    thread::spawn(move || {
                        let mut got = 0usize;
                        while r.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 100, "each message consumed exactly once");
        }
    }
}
