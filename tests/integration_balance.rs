//! Load-balancing integration tests: splits, migrations and elasticity.

use std::time::Duration;

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};

fn cfg(schema: Schema) -> VolapConfig {
    let mut cfg = VolapConfig::new(schema);
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.sync_period = Duration::from_millis(25);
    cfg.stats_period = Duration::from_millis(25);
    cfg.manager_period = Duration::from_millis(40);
    cfg.max_shard_items = 600;
    cfg.migrate_slack = 0.25;
    cfg
}

fn eventually(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn new_workers_receive_data_via_migration() {
    let schema = Schema::uniform(4, 2, 16);
    let cluster = Cluster::start(cfg(schema.clone()));
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 7, 1.0);
    for it in gen.items(3_000) {
        client.insert(&it).unwrap();
    }
    // Wait for splits to spread the data into multiple shards.
    assert!(
        eventually(Duration::from_secs(15), || cluster.shard_count() >= 4),
        "splits never produced enough shards"
    );
    // Scale out: the new workers start empty, like Figure 6's load phases.
    let w_new = cluster.add_worker();
    let _ = cluster.add_worker();
    let balanced = eventually(Duration::from_secs(20), || {
        let loads = cluster.worker_loads();
        let total: u64 = loads.iter().map(|(_, l)| l).sum();
        let min = loads.iter().map(|(_, l)| *l).min().unwrap_or(0);
        let max = loads.iter().map(|(_, l)| *l).max().unwrap_or(0);
        total > 0 && min > 0 && (max - min) as f64 <= 0.8 * total as f64 / loads.len() as f64 + 600.0
    });
    let loads = cluster.worker_loads();
    assert!(balanced, "load never balanced: {loads:?}");
    let (_, migrations) = cluster.balance_counts();
    assert!(migrations >= 1, "balancing must use migrations");
    assert!(
        loads.iter().any(|(w, l)| *w == w_new && *l > 0),
        "new worker {w_new} never received data: {loads:?}"
    );
    // Integrity after all the shuffling.
    let (agg, _) = client.query(&QueryBox::all(&schema)).unwrap();
    assert_eq!(agg.count, 3_000);
    cluster.shutdown();
}

#[test]
fn service_continues_during_balancing() {
    let schema = Schema::uniform(4, 2, 16);
    let mut c = cfg(schema.clone());
    c.max_shard_items = 300; // aggressive splitting while we operate
    let cluster = Cluster::start(c);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 8, 1.0);
    let q = QueryBox::all(&schema);
    let mut inserted = 0u64;
    for batch in 0..20 {
        for it in gen.items(150) {
            client.insert(&it).unwrap();
            inserted += 1;
        }
        // Queries interleaved with in-flight splits/migrations must always
        // succeed and never observe more items than inserted.
        let (agg, _) = client.query(&q).unwrap();
        assert!(agg.count <= inserted, "overcount at batch {batch}: {} > {inserted}", agg.count);
    }
    assert!(
        eventually(Duration::from_secs(10), || {
            client.query(&q).map(|(a, _)| a.count == inserted).unwrap_or(false)
        }),
        "final convergence failed"
    );
    let (splits, _) = cluster.balance_counts();
    assert!(splits >= 2, "test must actually exercise splits, got {splits}");
    cluster.shutdown();
}

#[test]
fn balance_counters_are_monotone_and_bounded() {
    let schema = Schema::uniform(3, 2, 8);
    let cluster = Cluster::start(cfg(schema.clone()));
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 9, 1.0);
    for it in gen.items(1_500) {
        client.insert(&it).unwrap();
    }
    let mut last = (0, 0);
    for _ in 0..20 {
        let now = cluster.balance_counts();
        assert!(now.0 >= last.0 && now.1 >= last.1, "counters must be monotone");
        last = now;
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}
