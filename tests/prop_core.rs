//! Property-based tests for the system layer: wire codec robustness and
//! server-index invariants.

use proptest::prelude::*;
use volap::{Request, Response, ServerIndex, ShardRecord};
use volap_dims::{Item, Key, Mbr, QueryBox, Schema};

fn schema() -> Schema {
    Schema::uniform(2, 2, 16)
}

fn mbr(lo0: u64, hi0: u64, lo1: u64, hi1: u64) -> Mbr {
    Mbr::from_ranges(vec![(lo0.min(hi0), lo0.max(hi0)), (lo1.min(hi1), lo1.max(hi1))])
}

proptest! {
    /// Request decoding never panics on arbitrary bytes, and every decoded
    /// request re-encodes to something that decodes equal (partial
    /// round-trip robustness).
    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(req) = Request::decode(&bytes) {
            let re = Request::decode(&req.encode()).unwrap();
            prop_assert_eq!(re, req);
        }
    }

    /// Response decoding never panics on arbitrary bytes.
    #[test]
    fn response_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let s = schema();
        if let Ok(resp) = Response::decode(&s, &bytes) {
            let re = Response::decode(&s, &resp.encode()).unwrap();
            prop_assert_eq!(re, resp);
        }
    }

    /// Shard records survive encode/decode for arbitrary contents.
    #[test]
    fn shard_record_roundtrip(id in any::<u64>(), len in any::<u64>(),
                              worker in "[a-z0-9-]{0,16}",
                              r in prop::collection::vec((0u64..256, 0u64..256), 2)) {
        let s = schema();
        let rec = ShardRecord {
            id,
            worker,
            len,
            mbr: mbr(r[0].0, r[0].1, r[1].0, r[1].1),
        };
        let back = ShardRecord::decode(&s, &rec.encode()).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// ServerIndex stays structurally valid under arbitrary interleavings
    /// of add / expand / remove / route operations, and routing agrees with
    /// a naive box scan.
    #[test]
    fn server_index_matches_naive_scan(
        ops in prop::collection::vec((0u8..4, 0u64..24, prop::collection::vec(0u64..256, 4)), 1..60)
    ) {
        let s = schema();
        let mut idx = ServerIndex::new(s.clone(), 4);
        let mut naive: std::collections::HashMap<u64, Mbr> = std::collections::HashMap::new();
        for (op, id, v) in ops {
            match op {
                0 => {
                    naive.entry(id).or_insert_with(|| {
                        let m = mbr(v[0], v[1], v[2], v[3]);
                        idx.add_shard(id, m.clone());
                        m
                    });
                }
                1 => {
                    if naive.contains_key(&id) {
                        let m = mbr(v[0], v[1], v[2], v[3]);
                        prop_assert!(idx.expand_shard(id, &m));
                        naive.get_mut(&id).unwrap().extend_mbr(&m);
                    }
                }
                2 => {
                    let existed = naive.remove(&id).is_some();
                    prop_assert_eq!(idx.remove_shard(id), existed);
                }
                _ => {
                    // Route an insert; the chosen shard must exist, and the
                    // item must now be inside its (possibly expanded) box.
                    let item = Item::new(vec![v[0], v[1]], 1.0);
                    match idx.route_insert(&item) {
                        None => prop_assert!(naive.is_empty()),
                        Some((chosen, _)) => {
                            prop_assert!(naive.contains_key(&chosen));
                            prop_assert!(idx.shard_box(chosen).unwrap().contains_item(&item));
                            naive.get_mut(&chosen).unwrap().extend_item(&s, &item);
                        }
                    }
                }
            }
            idx.check_invariants();
            prop_assert_eq!(idx.shard_count(), naive.len());
        }
        // Final routing equivalence: for a panel of queries, the index
        // returns a superset-equal set of the naive overlap scan. (The
        // index may only differ by being *conservative* — never by missing
        // a shard, since keys only grow.)
        for (qlo, qhi) in [(0u64, 255), (0, 63), (64, 191), (200, 255)] {
            let q = QueryBox::from_ranges(vec![(qlo, qhi), (qlo, qhi)]);
            let mut got = idx.route_query(&q);
            got.sort_unstable();
            let mut want: Vec<u64> = naive
                .iter()
                .filter(|(_, m)| m.overlaps_query(&q))
                .map(|(&id, _)| id)
                .collect();
            want.sort_unstable();
            for id in &want {
                prop_assert!(got.contains(id), "index missed shard {id}");
            }
        }
    }
}
