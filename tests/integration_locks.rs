//! Lock-order regression stress tests, run with the runtime checker armed.
//!
//! These reproduce the workload shapes whose inversions the checker flushed
//! out when the instrumented wrappers landed:
//!
//! * `do_split` used to publish the split halves into the worker's slots
//!   map (rank 30) *while holding* the parent slot's state lock (rank 31) —
//!   the exact inverse of the `GetWorkerStats` path, which reads slot state
//!   under the slots map. Splits racing parallel queries now run under the
//!   checker with `query_threads >= 2` to keep both paths hot.
//! * Server-side ingest coalescing flushes per-shard batches while the
//!   image-sync loop applies remote changes; both walk the routing index
//!   and the dirty set, so the flush path must never take them against
//!   the documented `index(21) < dirty(23)` order.
//! * The worker's bulk-insert path used to release the slot-state guard
//!   before inserting, losing batches that raced `do_split`'s item
//!   snapshot / queue drain — the exact-count convergence assertions
//!   below are the regression net for that fix (DESIGN.md §15.1).
//!
//! In debug builds `lock_check` defaults to Panic mode, so an inversion
//! aborts the offending service thread and surfaces as a failed request or
//! a wrong count; the snapshot counter assertion catches Record-mode
//! regressions and documents the invariant for release runs too.

use std::time::Duration;

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};

fn cfg(schema: Schema) -> VolapConfig {
    let mut cfg = VolapConfig::new(schema);
    cfg.workers = 2;
    cfg.servers = 1;
    cfg.sync_period = Duration::from_millis(25);
    cfg.stats_period = Duration::from_millis(25);
    cfg.manager_period = Duration::from_millis(40);
    cfg.max_shard_items = 500;
    cfg.lock_check = true;
    cfg
}

fn eventually(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Splits racing parallel queries: the do_split ↔ query/stats inversion.
#[test]
fn splits_under_parallel_queries_respect_lock_order() {
    let schema = Schema::uniform(3, 2, 8);
    let mut c = cfg(schema.clone());
    c.query_threads = 4; // keep the worker query pool (rank 40) busy
    let cluster = Cluster::start(c);
    let client = cluster.client();
    let q = QueryBox::all(&schema);
    let mut gen = DataGen::new(&schema, 41, 1.1);
    let mut inserted = 0u64;
    // Interleave ingest (driving splits past max_shard_items = 500) with
    // parallel fan-out queries so GetShardStats/query scans overlap splits.
    for _ in 0..12 {
        client.bulk_insert(gen.items(300)).expect("bulk insert");
        inserted += 300;
        let (agg, _) = client.query(&q).expect("query during splits");
        assert!(agg.count <= inserted);
    }
    assert!(
        eventually(Duration::from_secs(10), || cluster.balance_counts().0 >= 2),
        "stress must actually exercise splits"
    );
    let mut last = 0u64;
    assert!(
        eventually(Duration::from_secs(20), || {
            last = client.query(&q).map(|(a, _)| a.count).unwrap_or(0);
            last == inserted
        }),
        "final convergence failed: count {last} != inserted {inserted}"
    );
    let snap = cluster.snapshot();
    cluster.shutdown();
    assert_eq!(
        snap.counter("volap_lock_order_violations_total"),
        0,
        "lock-order violations under split/query stress"
    );
    // The stress only means something if the contended classes were hot.
    for class in ["worker.slots", "worker.slot_state", "tree.node"] {
        let l = snap.lock_class(class).expect("class in snapshot");
        assert!(l.acquisitions > 0, "{class} never acquired — stress ineffective");
    }
}

/// Coalesced ingest flushes racing the image-sync loop.
#[test]
fn ingest_flush_vs_image_sync_respects_lock_order() {
    let schema = Schema::uniform(3, 2, 8);
    let mut c = cfg(schema.clone());
    c.servers = 2; // two servers: remote image changes actually arrive
    c.ingest_batch = 64;
    c.ingest_flush_interval = Duration::from_millis(1);
    c.sync_period = Duration::from_millis(10);
    let cluster = Cluster::start(c);
    let client = cluster.client();
    let mut gen = DataGen::new(&schema, 42, 1.1);
    let total = 4_000u64;
    for it in gen.items(total as usize) {
        client.insert(&it).expect("coalesced insert acked");
    }
    let q = QueryBox::all(&schema);
    assert!(
        eventually(Duration::from_secs(10), || {
            client.query(&q).map(|(a, _)| a.count == total).unwrap_or(false)
        }),
        "not all coalesced inserts landed"
    );
    let snap = cluster.snapshot();
    cluster.shutdown();
    assert_eq!(
        snap.counter("volap_lock_order_violations_total"),
        0,
        "lock-order violations under ingest-flush/image-sync stress"
    );
    for class in ["server.ingest", "server.index", "server.dirty"] {
        let l = snap.lock_class(class).expect("class in snapshot");
        assert!(l.acquisitions > 0, "{class} never acquired — stress ineffective");
    }
}
