//! Per-principal workload accounting: request cost attribution plus a
//! decayed heavy-hitter profiler.
//!
//! Every other surface in this crate answers *what* the cluster spent
//! (latency histograms, counters, heat). This module answers *who* spent
//! it. A client-supplied principal tag (an interned [`PrincipalId`]) rides
//! each client proto op and the `volap_net` envelope alongside the trace
//! context; when a tagged request completes, the server folds a
//! [`CostVec`] — rows scanned, tree nodes visited, rollup hits, queue
//! wait, wall time, bytes encoded, net hops, fan-out — into:
//!
//! * **exact per-principal totals** (and a request count) in a registry
//!   keyed by the interned id, and
//! * **one space-saving top-K sketch per cost dimension**, so the
//!   hot-principal view survives unbounded principal cardinality in
//!   bounded memory. Each sketch holds at most `topk` entries; the classic
//!   space-saving guarantee applies: for every tracked principal the
//!   sketched count overestimates the true count by at most `err`, and
//!   `err ≤ N/k` where `N` is the total weight offered and `k = topk`.
//!   The sketches additionally decay by an EWMA factor every sampler
//!   tick, so "top spenders" is a sliding window, not an all-time ranking
//!   (the exact totals stay all-time).
//!
//! Untagged requests pay one relaxed load and a branch — the same
//! kill-switch idiom as [`crate::heat::HeatMap`] — enforced upstream by
//! the `bench_account` overhead gate.
//!
//! The derived `gauge(accounting_dominance_frac)` history series (the
//! decayed scan-cost share of the single hottest principal) feeds the
//! default `tenant_dominance` health rule: one principal holding more
//! than the threshold share of scan cost for the rule's hysteresis window
//! flags the `tenants` component Degraded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Number of cost dimensions in a [`CostVec`].
pub const COST_DIMS: usize = 8;

/// Stable dimension names, in [`CostVec::as_array`] order. These are the
/// `dim` strings in [`AccountingSnapshot::top`] and the metric-name
/// suffixes of the folded Prometheus counters
/// (`volap_accounting_<dim>_total{principal=..}`).
pub const COST_DIM_NAMES: [&str; COST_DIMS] = [
    "rows_scanned",
    "nodes_visited",
    "rollup_hits",
    "queue_wait_us",
    "wall_us",
    "bytes",
    "net_hops",
    "fanout",
];

/// Index of the `rows_scanned` dimension (the one the dominance fraction
/// and the default health rule watch).
pub const DIM_ROWS_SCANNED: usize = 0;

/// An interned principal tag. `0` is reserved for "untagged" — the hot
/// path branches on it before touching any accounting state. Ids are
/// dense (1, 2, 3, ...) in interning order and never recycled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(pub u32);

impl PrincipalId {
    /// The untagged principal: requests carrying it are never accounted.
    pub const NONE: PrincipalId = PrincipalId(0);

    /// Whether this id names a real (interned) principal.
    pub fn is_tagged(self) -> bool {
        self.0 != 0
    }
}

/// The per-request cost attribution vector. All dimensions are additive
/// `u64`s so per-principal totals are exact (no float drift between the
/// registry and the cross-checks `volap-stat --tenants` runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostVec {
    /// Leaf items scanned across all shards touched (from `ShardExec`).
    pub rows_scanned: u64,
    /// Tree nodes visited across all shards touched.
    pub nodes_visited: u64,
    /// Materialized rollup hits (covered aggregates answered without a
    /// leaf scan).
    pub rollup_hits: u64,
    /// Microseconds the request sat in the server's inbound queue before
    /// a handler picked it up.
    pub queue_wait_us: u64,
    /// Route + execute wall time on the server, microseconds.
    pub wall_us: u64,
    /// Request payload bytes decoded at the server (what the client's
    /// encoding cost on the wire).
    pub bytes: u64,
    /// Network hops the request caused (worker requests, re-route
    /// attempts, forwards).
    pub net_hops: u64,
    /// Scatter width: distinct workers contacted (1 for point routes).
    pub fanout: u64,
}

impl CostVec {
    /// The vector as an array indexed like [`COST_DIM_NAMES`].
    pub fn as_array(&self) -> [u64; COST_DIMS] {
        [
            self.rows_scanned,
            self.nodes_visited,
            self.rollup_hits,
            self.queue_wait_us,
            self.wall_us,
            self.bytes,
            self.net_hops,
            self.fanout,
        ]
    }

    /// Rebuild from an array indexed like [`COST_DIM_NAMES`].
    pub fn from_array(a: [u64; COST_DIMS]) -> Self {
        Self {
            rows_scanned: a[0],
            nodes_visited: a[1],
            rollup_hits: a[2],
            queue_wait_us: a[3],
            wall_us: a[4],
            bytes: a[5],
            net_hops: a[6],
            fanout: a[7],
        }
    }

    /// Element-wise saturating accumulate.
    pub fn add(&mut self, other: &CostVec) {
        self.rows_scanned = self.rows_scanned.saturating_add(other.rows_scanned);
        self.nodes_visited = self.nodes_visited.saturating_add(other.nodes_visited);
        self.rollup_hits = self.rollup_hits.saturating_add(other.rollup_hits);
        self.queue_wait_us = self.queue_wait_us.saturating_add(other.queue_wait_us);
        self.wall_us = self.wall_us.saturating_add(other.wall_us);
        self.bytes = self.bytes.saturating_add(other.bytes);
        self.net_hops = self.net_hops.saturating_add(other.net_hops);
        self.fanout = self.fanout.saturating_add(other.fanout);
    }
}

/// One tracked entry of a [`SpaceSaving`] sketch.
#[derive(Clone, Copy, Debug, PartialEq)]
struct SketchSlot {
    principal: u32,
    /// Estimated (decayed) weight. Overestimates the true weight by at
    /// most `err`.
    count: f64,
    /// Maximum possible overestimate inherited at eviction time.
    err: f64,
}

/// A space-saving heavy-hitter sketch (Metwally et al.) over weighted
/// offers, with multiplicative decay. At most `capacity` principals are
/// tracked; offering an untracked principal when full evicts the minimum
/// entry and inherits its count as the new entry's error bound. For any
/// decay-free stream of total weight `N`: `true ≤ count` and
/// `count − true ≤ err ≤ N / capacity` for every tracked principal, and
/// any principal with true weight `> N / capacity` is tracked.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    slots: Vec<SketchSlot>,
    /// Total (decayed) weight offered — the `N` in the error bound.
    offered: f64,
}

impl SpaceSaving {
    /// An empty sketch tracking at most `capacity` principals
    /// (`capacity ≥ 1` enforced).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), slots: Vec::new(), offered: 0.0 }
    }

    /// Offer `weight` for `principal`. Zero weights are ignored (they
    /// carry no ranking information and would churn evictions).
    pub fn offer(&mut self, principal: u32, weight: u64) {
        if weight == 0 {
            return;
        }
        let w = weight as f64;
        self.offered += w;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.principal == principal) {
            slot.count += w;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(SketchSlot { principal, count: w, err: 0.0 });
            return;
        }
        // Evict the minimum: the newcomer inherits its count as both the
        // starting estimate and the error bound.
        let min = self
            .slots
            .iter_mut()
            .min_by(|a, b| a.count.total_cmp(&b.count))
            .expect("capacity >= 1");
        *min = SketchSlot { principal, count: min.count + w, err: min.count };
    }

    /// Multiply every estimate (and the offered total) by `alpha` — the
    /// EWMA window step the sampler applies once per tick. Entries that
    /// decay below one unit of weight are dropped, so an idle principal
    /// ages out of the top-K instead of squatting in it.
    pub fn decay(&mut self, alpha: f64) {
        let alpha = alpha.clamp(0.0, 1.0);
        self.offered *= alpha;
        for s in &mut self.slots {
            s.count *= alpha;
            s.err *= alpha;
        }
        self.slots.retain(|s| s.count >= 1.0);
    }

    /// Total (decayed) weight offered — the `N` of the error bound.
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Tracked entries as `(principal, count, err)`, heaviest first.
    pub fn entries(&self) -> Vec<(u32, f64, f64)> {
        let mut v: Vec<_> = self.slots.iter().map(|s| (s.principal, s.count, s.err)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The heaviest entry's estimated count, or 0 when empty.
    pub fn max_count(&self) -> f64 {
        self.slots.iter().map(|s| s.count).fold(0.0, f64::max)
    }
}

/// Per-principal exact totals (interner-side state).
#[derive(Default)]
struct AccountState {
    /// Principal names; `PrincipalId(i + 1)` owns `names[i]`.
    names: Vec<String>,
    index: HashMap<String, u32>,
    /// Exact all-time cost totals, parallel to `names`.
    totals: Vec<CostVec>,
    /// Exact all-time request counts, parallel to `names`.
    requests: Vec<u64>,
    /// One sketch per cost dimension, indexed like [`COST_DIM_NAMES`].
    sketches: Vec<SpaceSaving>,
}

/// Sizing and switch for one [`Accounting`] instance (the
/// `VolapConfig::accounting_*` knobs upstream).
#[derive(Clone, Debug)]
pub struct AccountConfig {
    /// Whether charging starts enabled (runtime-togglable; off, a charge
    /// is one relaxed load and a branch).
    pub enabled: bool,
    /// Sketch capacity per cost dimension (the K of top-K; error bound
    /// `N/K`).
    pub topk: usize,
    /// Multiplicative EWMA factor the sketches decay by each sampler
    /// tick (exact totals never decay). `1.0` disables decay.
    pub decay: f64,
}

impl Default for AccountConfig {
    fn default() -> Self {
        Self { enabled: true, topk: 8, decay: 0.9 }
    }
}

struct AccountingInner {
    enabled: AtomicBool,
    topk: usize,
    decay: f64,
    state: Mutex<AccountState>,
}

/// The per-principal accounting core. Cheap to clone (shared); writers
/// are request handlers calling [`Accounting::charge`], readers are the
/// sampler (dominance) and snapshots.
#[derive(Clone)]
pub struct Accounting {
    inner: Arc<AccountingInner>,
}

impl Default for Accounting {
    fn default() -> Self {
        Self::new(&AccountConfig::default())
    }
}

impl Accounting {
    /// Build an accounting core per `cfg`.
    pub fn new(cfg: &AccountConfig) -> Self {
        let topk = cfg.topk.max(1);
        Self {
            inner: Arc::new(AccountingInner {
                enabled: AtomicBool::new(cfg.enabled),
                topk,
                decay: cfg.decay.clamp(0.0, 1.0),
                state: Mutex::new(AccountState {
                    sketches: (0..COST_DIMS).map(|_| SpaceSaving::new(topk)).collect(),
                    ..AccountState::default()
                }),
            }),
        }
    }

    /// Whether charging is currently enabled.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Runtime kill switch: with accounting off, [`Accounting::charge`]
    /// is one relaxed load and a branch (the `bench_account` gate
    /// measures exactly this path).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Sketch capacity per dimension.
    pub fn topk(&self) -> usize {
        self.inner.topk
    }

    /// Intern `name`, returning its stable id (idempotent). Empty names
    /// are not principals and intern to [`PrincipalId::NONE`].
    pub fn intern(&self, name: &str) -> PrincipalId {
        if name.is_empty() {
            return PrincipalId::NONE;
        }
        let mut st = self.inner.state.lock().unwrap();
        if let Some(&id) = st.index.get(name) {
            return PrincipalId(id);
        }
        st.names.push(name.to_string());
        st.totals.push(CostVec::default());
        st.requests.push(0);
        let id = st.names.len() as u32;
        st.index.insert(name.to_string(), id);
        PrincipalId(id)
    }

    /// The name behind an id (None for untagged or never-interned ids).
    pub fn name(&self, p: PrincipalId) -> Option<String> {
        if !p.is_tagged() {
            return None;
        }
        let st = self.inner.state.lock().unwrap();
        st.names.get(p.0 as usize - 1).cloned()
    }

    /// Attribute one request's cost to `p`. Untagged requests and a
    /// disabled core return after a branch; ids that were never interned
    /// here are ignored (a foreign id cannot grow the tables).
    pub fn charge(&self, p: PrincipalId, cost: &CostVec) {
        if !p.is_tagged() || !self.enabled() {
            return;
        }
        let mut st = self.inner.state.lock().unwrap();
        let slot = p.0 as usize - 1;
        if slot >= st.names.len() {
            return;
        }
        st.totals[slot].add(cost);
        st.requests[slot] += 1;
        let arr = cost.as_array();
        for (sketch, &w) in st.sketches.iter_mut().zip(arr.iter()) {
            sketch.offer(p.0, w);
        }
    }

    /// One sampler tick: decay every sketch by the configured EWMA
    /// factor and return the current dominance fraction — the hottest
    /// principal's share of the decayed rows-scanned weight (0.0 when
    /// nothing was scanned in the window). The caller records it as the
    /// `gauge(accounting_dominance_frac)` history series.
    pub fn decay_tick(&self) -> f64 {
        let mut st = self.inner.state.lock().unwrap();
        if self.inner.decay < 1.0 {
            let decay = self.inner.decay;
            for sketch in &mut st.sketches {
                sketch.decay(decay);
            }
        }
        let scans = &st.sketches[DIM_ROWS_SCANNED];
        if scans.offered() > 0.0 {
            scans.max_count() / scans.offered()
        } else {
            0.0
        }
    }

    /// Current dominance fraction without decaying (snapshot readers).
    pub fn dominance_frac(&self) -> f64 {
        let st = self.inner.state.lock().unwrap();
        let scans = &st.sketches[DIM_ROWS_SCANNED];
        if scans.offered() > 0.0 {
            scans.max_count() / scans.offered()
        } else {
            0.0
        }
    }

    /// Copy out the whole accounting state.
    pub fn snapshot(&self) -> AccountingSnapshot {
        let st = self.inner.state.lock().unwrap();
        let mut principals: Vec<PrincipalTotals> = st
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| PrincipalTotals {
                principal: name.clone(),
                requests: st.requests[i],
                cost: st.totals[i],
            })
            .collect();
        principals.sort_by(|a, b| a.principal.cmp(&b.principal));
        let top = st
            .sketches
            .iter()
            .enumerate()
            .map(|(d, sketch)| DimTop {
                dim: COST_DIM_NAMES[d].to_string(),
                offered: sketch.offered(),
                entries: sketch
                    .entries()
                    .into_iter()
                    .map(|(id, count, err)| TopEntry {
                        principal: st
                            .names
                            .get(id as usize - 1)
                            .cloned()
                            .unwrap_or_else(|| format!("principal-{id}")),
                        count,
                        err,
                    })
                    .collect(),
            })
            .collect();
        AccountingSnapshot {
            enabled: self.enabled(),
            topk: self.inner.topk as u64,
            decay: self.inner.decay,
            principals,
            top,
        }
    }
}

/// A copied-out accounting state: exact per-principal totals plus the
/// per-dimension top-K tables. Round-trips losslessly through the JSON
/// exporter; the Prometheus exposition folds the exact totals in as
/// `volap_accounting_*_total{principal=..}` counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccountingSnapshot {
    /// Whether charging was enabled at capture.
    pub enabled: bool,
    /// Sketch capacity per dimension (the K of the `N/K` error bound).
    pub topk: u64,
    /// EWMA factor applied per sampler tick (1.0 = no decay).
    pub decay: f64,
    /// Exact all-time totals, sorted by principal name.
    pub principals: Vec<PrincipalTotals>,
    /// Per-dimension top-K tables, in [`COST_DIM_NAMES`] order (empty
    /// when accounting never charged).
    pub top: Vec<DimTop>,
}

impl AccountingSnapshot {
    /// The exact totals row for one principal.
    pub fn principal(&self, name: &str) -> Option<&PrincipalTotals> {
        self.principals.iter().find(|p| p.principal == name)
    }

    /// The top-K table for one dimension name.
    pub fn top_of(&self, dim: &str) -> Option<&DimTop> {
        self.top.iter().find(|t| t.dim == dim)
    }
}

/// Exact all-time totals for one principal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PrincipalTotals {
    /// The principal tag as the client supplied it.
    pub principal: String,
    /// Tagged requests charged.
    pub requests: u64,
    /// Summed cost vector.
    pub cost: CostVec,
}

/// The decayed top-K table for one cost dimension.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DimTop {
    /// Dimension name (one of [`COST_DIM_NAMES`]).
    pub dim: String,
    /// Total decayed weight offered (the `N` of the error bound).
    pub offered: f64,
    /// Tracked principals, heaviest first.
    pub entries: Vec<TopEntry>,
}

/// One row of a [`DimTop`] table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopEntry {
    /// Principal tag.
    pub principal: String,
    /// Estimated (decayed) weight; overestimates truth by at most `err`.
    pub count: f64,
    /// Error bound inherited at eviction (`≤ offered / topk`).
    pub err: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let acc = Accounting::default();
        let a = acc.intern("tenant-a");
        let b = acc.intern("tenant-b");
        assert_eq!(a, PrincipalId(1));
        assert_eq!(b, PrincipalId(2));
        assert_eq!(acc.intern("tenant-a"), a);
        assert_eq!(acc.name(a).as_deref(), Some("tenant-a"));
        assert_eq!(acc.name(PrincipalId::NONE), None);
        assert_eq!(acc.intern(""), PrincipalId::NONE);
    }

    #[test]
    fn charge_accumulates_exact_totals() {
        let acc = Accounting::default();
        let a = acc.intern("a");
        let cost = CostVec { rows_scanned: 10, bytes: 3, fanout: 2, ..CostVec::default() };
        acc.charge(a, &cost);
        acc.charge(a, &cost);
        // Untagged and foreign ids are no-ops.
        acc.charge(PrincipalId::NONE, &cost);
        acc.charge(PrincipalId(99), &cost);
        let snap = acc.snapshot();
        let row = snap.principal("a").unwrap();
        assert_eq!(row.requests, 2);
        assert_eq!(row.cost.rows_scanned, 20);
        assert_eq!(row.cost.bytes, 6);
        assert_eq!(snap.principals.len(), 1);
        let top = snap.top_of("rows_scanned").unwrap();
        assert_eq!(top.entries[0].principal, "a");
        assert_eq!(top.entries[0].count, 20.0);
    }

    #[test]
    fn disabled_charge_is_a_noop() {
        let acc = Accounting::new(&AccountConfig { enabled: false, ..AccountConfig::default() });
        let a = acc.intern("a");
        acc.charge(a, &CostVec { rows_scanned: 5, ..CostVec::default() });
        assert!(acc.snapshot().principals[0].requests == 0);
        acc.set_enabled(true);
        acc.charge(a, &CostVec { rows_scanned: 5, ..CostVec::default() });
        assert_eq!(acc.snapshot().principal("a").unwrap().cost.rows_scanned, 5);
    }

    #[test]
    fn sketch_error_bound_holds_under_eviction() {
        let k = 4;
        let mut sketch = SpaceSaving::new(k);
        let mut truth = vec![0u64; 64];
        let mut n = 0u64;
        // A skewed deterministic stream over 64 principals.
        let mut x = 7u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let p = ((x >> 33) % 64) as u32;
            let w = if p < 4 { 50 } else { 1 };
            sketch.offer(p + 1, w);
            truth[p as usize] += w;
            n += w;
        }
        assert_eq!(sketch.offered(), n as f64);
        let bound = n as f64 / k as f64;
        for (p, count, err) in sketch.entries() {
            let t = truth[p as usize - 1] as f64;
            assert!(count >= t, "sketch must overestimate: {count} < {t}");
            assert!(count - t <= err + 1e-9, "overestimate exceeds recorded err");
            assert!(err <= bound + 1e-9, "err {err} exceeds N/k {bound}");
        }
    }

    #[test]
    fn decay_shrinks_and_drops() {
        let mut sketch = SpaceSaving::new(4);
        sketch.offer(1, 100);
        sketch.offer(2, 1);
        sketch.decay(0.5);
        let entries = sketch.entries();
        assert_eq!(entries, vec![(1, 50.0, 0.0)], "principal 2 decayed below 1 and dropped");
        assert_eq!(sketch.offered(), 50.5);
        // Exact totals never decay; only the window does.
        let acc = Accounting::new(&AccountConfig { decay: 0.5, ..AccountConfig::default() });
        let a = acc.intern("a");
        acc.charge(a, &CostVec { rows_scanned: 100, ..CostVec::default() });
        acc.decay_tick();
        let snap = acc.snapshot();
        assert_eq!(snap.principal("a").unwrap().cost.rows_scanned, 100);
        assert_eq!(snap.top_of("rows_scanned").unwrap().entries[0].count, 50.0);
    }

    #[test]
    fn dominance_tracks_the_hog() {
        let acc = Accounting::default();
        let hog = acc.intern("hog");
        let meek = acc.intern("meek");
        acc.charge(hog, &CostVec { rows_scanned: 900, ..CostVec::default() });
        acc.charge(meek, &CostVec { rows_scanned: 100, ..CostVec::default() });
        assert!((acc.dominance_frac() - 0.9).abs() < 1e-12);
        // No scans at all → no dominance.
        assert_eq!(Accounting::default().dominance_frac(), 0.0);
    }
}
