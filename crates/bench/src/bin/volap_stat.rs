//! `volap-stat`: run a mixed workload on a small in-process cluster, take a
//! cluster-wide observability snapshot, and emit it through both exporters.
//!
//! Doubles as the CI smoke test for the exposition formats: after printing,
//! it re-parses its own output with `export::from_prometheus` /
//! `export::from_json` and exits non-zero if either fails to round-trip, if
//! the latency histograms are empty, or if the measured staleness probe
//! never recorded a sample. Usage:
//! `volap-stat [--json | --prom | --traces | --heat | --snapshot]`
//! (default: human summary + both formats).
//!
//! `--traces` forces causal tracing on (sample every request, zero slow
//! threshold), runs the same workload, prints the slow-query flight
//! recorder as indented span trees, and self-validates the Perfetto
//! export by parsing it back — exiting non-zero on a malformed or lossy
//! trace export, on an empty flight recorder, or on a recorded trace
//! missing its root span.
//!
//! `--heat` prints the per-shard heat map as a table and exits non-zero
//! unless every workload insert is accounted for in the published totals.
//!
//! `--snapshot` shrinks the split threshold so the manager acts during the
//! workload, then emits ONE machine-readable JSON document combining the
//! metrics registry, the event ring, the shard heat map, the lock-class
//! table, and the balance audit trail — exiting non-zero if the document
//! fails to re-parse, if the heat map is empty, if no balance decision was
//! audited, or if the lock table is empty.
//!
//! `--locks` prints the per-class lock contention table (acquisitions,
//! contended count, total wait, total timed hold) sorted by total wait,
//! hottest first — exiting non-zero if either exposition is malformed, if
//! no lock class recorded an acquisition, or if the classes the workload
//! must touch (server routing index, worker slot states, tree nodes) are
//! missing from the table.
//!
//! `--history` speeds the continuous-telemetry sampler up (25 ms frames),
//! runs the workload, and emits the full snapshot JSON with the history
//! ring populated — exiting non-zero if the ring fails structural
//! validation, if any frame was dropped (the run is sized to be lossless),
//! or if the per-frame insert deltas do not sum exactly to the live
//! counter total.
//!
//! `--tenants` runs a *tagged* mixed workload (three principals of very
//! different weights plus untagged traffic), prints the per-principal
//! exact cost totals and the per-dimension heavy-hitter top-K tables, and
//! exits non-zero if any principal's accounted request total disagrees
//! with the workload the binary itself issued, if the tagged + untagged
//! op counts do not reconcile with the registry counters, if the
//! rows-scanned sketch misranks the heaviest scanner, or if either
//! exporter fails to round-trip the populated accounting section.
//!
//! `--top [--once]` drives a continuous background workload and renders a
//! self-refreshing live cluster view from the newest history frame:
//! ingest/query rates, interval p99s, staleness, heat spread, lock wait,
//! and per-component SLO health. `--once` renders a single table without
//! ANSI clearing and self-validates (frames captured, ring valid, health
//! rules evaluated) — the CI form.

use std::time::{Duration, Instant};

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};
use volap_obs::export;

fn fail(msg: &str) -> ! {
    eprintln!("volap-stat: FAIL: {msg}");
    std::process::exit(1);
}

/// One `--top` table, rendered from the newest history frame.
fn render_top(cluster: &Cluster) -> String {
    let hist = cluster.history();
    let mut out = String::new();
    out.push_str("volap-stat --top: live cluster telemetry\n");
    let Some(frame) = hist.latest() else {
        out.push_str("  (no history frames captured yet)\n");
        return out;
    };
    let ms = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{:.2}", v * 1e3));
    out.push_str(&format!(
        "  frame #{} ({:.0} ms interval, {} series, {} dropped)\n",
        frame.seq,
        frame.dt_seconds() * 1e3,
        hist.series.len(),
        hist.dropped
    ));
    out.push_str(&format!(
        "  {:<26} {:>12.0}/s   p99 {:>8} ms\n",
        "ingest (inserts)",
        hist.rate_sum(frame, "volap_server_inserts_total"),
        ms(hist.value(frame, "p99(volap_server_insert_seconds)")),
    ));
    out.push_str(&format!(
        "  {:<26} {:>12.0}/s   p99 {:>8} ms\n",
        "queries",
        hist.rate_sum(frame, "volap_server_queries_total"),
        ms(hist.value(frame, "p99(volap_server_query_seconds)")),
    ));
    out.push_str(&format!(
        "  {:<26} {:>12.0}/s   p99 {:>8} ms\n",
        "sync rounds",
        hist.rate_sum(frame, "volap_server_sync_rounds_total"),
        ms(hist.value(frame, "p99(volap_staleness_seconds)")),
    ));
    out.push_str(&format!(
        "  {:<26} {:>12.1}      (hot-cold insert rate)\n",
        "heat spread",
        hist.value(frame, "gauge(heat_insert_rate_spread)").unwrap_or(0.0),
    ));
    out.push_str(&format!(
        "  {:<26} {:>11.2}%      (worst class)\n",
        "lock contention",
        hist.value(frame, "gauge(lock_contention_frac_max)").unwrap_or(0.0) * 100.0,
    ));
    out.push_str(&format!(
        "  {:<26} {:>11.2}%      (of wall time)\n",
        "lock wait",
        hist.value(frame, "gauge(lock_wait_frac)").unwrap_or(0.0) * 100.0,
    ));
    out.push_str("  health:\n");
    for h in cluster.health() {
        out.push_str(&format!(
            "    {:<12} {:<16} {:<9} value {:>12.4}{}\n",
            h.component,
            h.rule,
            h.state.as_str(),
            h.value,
            if h.anomalous { format!("  ANOMALY z={:.1}", h.z_score) } else { String::new() },
        ));
    }
    out
}

/// The `--tenants` mode: tagged workload, per-principal accounting tables,
/// and an exact-total cross-check against the registry.
fn run_tenants() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false; // stable shard set -> exact counters
    cfg.sync_period = Duration::from_millis(20);
    let cluster = Cluster::start(cfg);

    // Ground truth: the workload this binary issues, per principal.
    // Weights differ by ~2x steps so the heavy-hitter ranking is
    // unambiguous.
    const TENANTS: [(&str, usize, u64); 3] = [
        ("tenant-alpha", 600, 24),
        ("tenant-beta", 300, 12),
        ("tenant-gamma", 100, 6),
    ];
    const UNTAGGED_INSERTS: usize = 200;
    let total_items: usize =
        TENANTS.iter().map(|t| t.1).sum::<usize>() + UNTAGGED_INSERTS;
    let mut gen = DataGen::new(&schema, 41, 1.3);
    let plain = cluster.client_on(0);
    for (i, (name, inserts, _)) in TENANTS.iter().enumerate() {
        let session = cluster.client_on(i % 2).with_principal(name);
        for item in gen.items(*inserts) {
            session.insert(&item).unwrap_or_else(|e| fail(&e));
        }
    }
    for item in gen.items(UNTAGGED_INSERTS) {
        plain.insert(&item).unwrap_or_else(|e| fail(&e));
    }
    // Wait for image sync on both servers with counted untagged probes, so
    // the registry cross-check below stays exact.
    let all = QueryBox::all(&schema);
    let mut probes = 0u64;
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        probes += 2;
        let synced = (0..2).all(|s| {
            cluster.client_on(s).query(&all).unwrap_or_else(|e| fail(&e)).0.count
                == total_items as u64
        });
        if synced {
            break;
        }
        if Instant::now() > deadline {
            fail("servers never converged on the tagged dataset");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // A partial box cannot be answered from covered directory aggregates,
    // so every tenant query scans leaf items and rows_scanned accumulates.
    let q = QueryBox::from_ranges(vec![(3, 40), (0, 63), (0, 63)]);
    for (i, (name, _, queries)) in TENANTS.iter().enumerate() {
        let session = cluster.client_on(i % 2).with_principal(name);
        for _ in 0..*queries {
            session.query(&q).unwrap_or_else(|e| fail(&e));
        }
    }

    let snap = cluster.snapshot();
    cluster.shutdown();
    let acc = &snap.accounting;

    // Exact-total cross-check: every principal's accounted request count
    // must equal the workload issued, tagged-or-not op totals must
    // reconcile with the registry, and nobody extra may appear.
    if !acc.enabled {
        fail("accounting disabled but --tenants needs it");
    }
    if acc.principals.len() != TENANTS.len() {
        fail(&format!(
            "expected {} principals, accounting tracked {}",
            TENANTS.len(),
            acc.principals.len()
        ));
    }
    let mut tagged_queries = 0u64;
    for (name, inserts, queries) in TENANTS {
        let t = acc
            .principal(name)
            .unwrap_or_else(|| fail(&format!("{name} missing from accounting")));
        let issued = inserts as u64 + queries;
        if t.requests != issued {
            fail(&format!(
                "{name}: accounting charged {} requests but the workload issued {issued}"
            , t.requests));
        }
        if t.cost.rows_scanned == 0 || t.cost.bytes == 0 || t.cost.wall_us == 0 {
            fail(&format!("{name}: cost vector has empty dimensions: {:?}", t.cost));
        }
        tagged_queries += queries;
    }
    let reg_inserts = snap.counter("volap_server_inserts_total");
    if reg_inserts != total_items as u64 {
        fail(&format!(
            "registry counted {reg_inserts} inserts, workload issued {total_items}"
        ));
    }
    let reg_queries = snap.counter("volap_server_queries_total");
    if reg_queries != tagged_queries + probes {
        fail(&format!(
            "registry counted {reg_queries} queries, workload issued {} tagged + {probes} probes",
            tagged_queries
        ));
    }
    // The sketch must agree with the exact totals on who scans the most
    // rows (3 principals against k>=3 slots: no eviction, and uniform
    // decay preserves ranking).
    let rows = acc
        .top_of("rows_scanned")
        .unwrap_or_else(|| fail("rows_scanned dimension missing from sketches"));
    match rows.entries.first() {
        Some(top) if top.principal == TENANTS[0].0 => {}
        Some(top) => fail(&format!(
            "rows_scanned sketch ranks {} first, exact totals say {}",
            top.principal, TENANTS[0].0
        )),
        None => fail("rows_scanned sketch is empty after a tagged workload"),
    }
    // Both exporters must carry the populated accounting section.
    match export::from_json(&export::to_json(&snap)) {
        Ok(back) if back.accounting == snap.accounting => {}
        Ok(_) => fail("JSON export did not round-trip the accounting section"),
        Err(e) => fail(&format!("JSON export malformed: {e}")),
    }
    match export::from_prometheus(&export::to_prometheus(&snap)) {
        Ok(back) if back == snap.metrics_only() => {}
        Ok(_) => fail("prometheus exposition did not round-trip the accounting fold"),
        Err(e) => fail(&format!("prometheus exposition malformed: {e}")),
    }

    println!(
        "# volap-stat: per-principal accounting ({} principals, top-{} sketches, decay {})",
        acc.principals.len(),
        acc.topk,
        acc.decay
    );
    println!(
        "# {:<14} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>7}",
        "principal", "requests", "rows", "nodes", "bytes", "wall_ms", "hops", "fanout"
    );
    let mut by_requests = acc.principals.clone();
    by_requests.sort_by_key(|t| std::cmp::Reverse(t.requests));
    for t in &by_requests {
        println!(
            "# {:<14} {:>9} {:>9} {:>8} {:>9} {:>9.1} {:>8} {:>7}",
            t.principal,
            t.requests,
            t.cost.rows_scanned,
            t.cost.nodes_visited,
            t.cost.bytes,
            t.cost.wall_us as f64 / 1e3,
            t.cost.net_hops,
            t.cost.fanout,
        );
    }
    println!("#");
    println!("# heavy hitters per cost dimension (count is decayed, err is the bound):");
    for dim in &acc.top {
        if dim.entries.is_empty() {
            continue;
        }
        println!("#   {}:", dim.dim);
        for (rank, e) in dim.entries.iter().enumerate() {
            println!(
                "#     {:>2}. {:<14} count {:>12.1}  err {:>8.1}",
                rank + 1,
                e.principal,
                e.count,
                e.err
            );
        }
    }
    eprintln!(
        "volap-stat: OK (exact totals reconcile with the registry, exporters round-trip)"
    );
}

/// The `--top` mode: continuous background workload + live view.
fn run_top(once: bool) {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2;
    cfg.sync_period = Duration::from_millis(20);
    cfg.history_interval = Duration::from_millis(50);
    cfg.history_capacity = 2048;
    let cluster = Cluster::start(cfg);

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Background drivers: one insert stream per server plus queries.
        for srv in 0..2 {
            let client = cluster.client_on(srv);
            let stop = &stop;
            let schema = &schema;
            s.spawn(move || {
                let mut gen = DataGen::new(schema, 7 + srv as u64, 1.3);
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    for item in gen.items(64) {
                        if client.insert(&item).is_err() {
                            return; // cluster shutting down
                        }
                    }
                    n += 1;
                    if n.is_multiple_of(8) && client.query(&QueryBox::all(schema)).is_err() {
                        return;
                    }
                }
            });
        }

        let refreshes = if once { 1 } else { 20 };
        // Let the sampler frame some activity before the first render.
        let deadline = Instant::now() + Duration::from_secs(10);
        while cluster.history().frames.len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
        }
        for i in 0..refreshes {
            if !once {
                // ANSI clear + home: self-refreshing like top(1).
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_top(&cluster));
            if i + 1 < refreshes {
                std::thread::sleep(Duration::from_millis(500));
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
    });

    // Self-validate: CI runs `--top --once` and relies on the exit code.
    let hist = cluster.history();
    let health = cluster.health();
    cluster.shutdown();
    if hist.frames.is_empty() {
        fail("--top captured no history frames");
    }
    if let Err(e) = hist.validate() {
        fail(&format!("--top history ring failed validation: {e}"));
    }
    if hist.delta_sum_all_labels("volap_server_inserts_total") <= 0.0 {
        fail("--top frames recorded no insert activity");
    }
    if health.is_empty() {
        fail("--top health watchdog evaluated no rules");
    }
    eprintln!("volap-stat: OK (history valid, {} health rules)", health.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().cloned().unwrap_or_default();
    if mode == "--top" {
        let once = args.iter().any(|a| a == "--once");
        run_top(once);
        return;
    }
    if mode == "--tenants" {
        run_tenants();
        return;
    }
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2;
    cfg.sync_period = Duration::from_millis(20);
    if mode == "--traces" {
        cfg.trace_sample = 1;
        cfg.trace_slow_threshold = Duration::ZERO;
    }
    if mode == "--snapshot" {
        // Make the manager act within the workload so the snapshot carries
        // a real audit trail: split threshold far below the item count.
        cfg.max_shard_items = 500;
        cfg.manager_period = Duration::from_millis(25);
        // Materialize one rollup level so an aligned coarse query below can
        // prove the rollup-hit counter reaches EXPLAIN output.
        cfg.rollup_levels = 1;
    }
    if mode == "--history" {
        // Fast frames, and a ring big enough that nothing is evicted during
        // the run: the export below must be lossless so per-frame deltas
        // sum exactly to the live counter totals.
        cfg.history_interval = Duration::from_millis(25);
        cfg.history_capacity = 8192;
    }
    let cluster = Cluster::start(cfg);

    // Mixed workload: item inserts and queries spread over both servers,
    // plus one bulk batch per server.
    let mut gen = DataGen::new(&schema, 42, 1.3);
    for (i, item) in gen.items(2_000).into_iter().enumerate() {
        cluster.client_on(i % 2).insert(&item).unwrap_or_else(|e| fail(&e));
    }
    for s in 0..2 {
        cluster.client_on(s).bulk_insert(gen.items(1_000)).unwrap_or_else(|e| fail(&e));
    }
    for i in 0..50 {
        cluster.client_on(i % 2).query(&QueryBox::all(&schema)).unwrap_or_else(|e| fail(&e));
    }
    // Give the sync threads a few rounds so the staleness probe observes
    // cross-server applies.
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.obs().staleness().count() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    if mode == "--heat" {
        // The stats threads publish heat once per period; wait until every
        // workload insert is visible in the published totals. (Exact totals
        // hold because nothing splits under the default threshold.)
        while cluster.heatmap().iter().map(|e| e.inserts_total).sum::<u64>() < 4_000
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    if mode == "--snapshot" {
        // Splits reset the per-shard totals, so only require that heat was
        // published and at least one manager decision was audited.
        while (cluster.heatmap().is_empty() || cluster.balance_audit().is_empty())
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        // A level-1-aligned constrained query (cells span 8 ordinals along
        // each dimension) must be answered from the materialized rollups,
        // and the hit must be visible in the ANALYZE plan.
        let q = QueryBox::from_ranges(vec![(0, 7), (0, 63), (0, 63)]);
        let (_, _, plan) =
            cluster.client_on(0).query_analyze(&q).unwrap_or_else(|e| fail(&e));
        if plan.totals().rollup_hits == 0 {
            fail("aligned coarse query was not rollup-answered on any shard");
        }
        if !plan.to_json().contains("\"rollup_hits\"") {
            fail("EXPLAIN JSON does not carry the rollup_hits counter");
        }
    }
    if mode == "--history" {
        // Ingest is finished; wait until the sampler has framed all of it.
        while cluster.history().delta_sum_all_labels("volap_server_inserts_total") < 4_000.0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let snap = cluster.snapshot();
    let slow = cluster.slow_traces();
    cluster.shutdown();

    if mode == "--traces" {
        // Self-validate the tracing pipeline; CI relies on the exit code.
        if slow.is_empty() {
            fail("tracing forced on but the flight recorder is empty");
        }
        let perfetto = export::traces_to_perfetto(&slow);
        let parsed = match export::traces_from_perfetto(&perfetto) {
            Ok(parsed) => parsed,
            Err(e) => fail(&format!("Perfetto trace export malformed: {e}")),
        };
        if parsed != slow {
            fail("Perfetto trace export did not round-trip losslessly");
        }
        println!(
            "# volap-stat: slow-query flight recorder ({} trace(s), oldest first)",
            slow.len()
        );
        for trace in &slow {
            if trace.root().is_none() {
                fail(&format!("trace {} has no root span", trace.trace_id));
            }
            println!("#");
            println!("# trace {:#018x}", trace.trace_id);
            for line in trace.render_tree().lines() {
                println!("#   {line}");
            }
        }
        eprintln!("volap-stat: OK (Perfetto export round-trips)");
        return;
    }

    // Self-validate before printing anything: CI runs this binary and
    // relies on the exit code.
    if snap.counter("volap_server_inserts_total") != 4_000 {
        fail("server insert counter does not match the workload");
    }
    let insert_hist = snap
        .histogram("volap_server_insert_seconds")
        .unwrap_or_else(|| fail("insert latency histogram missing"));
    if insert_hist.count == 0 {
        fail("insert latency histogram is empty");
    }
    if snap.staleness.count == 0 {
        fail("staleness probe recorded no samples");
    }
    if snap.captured_unix_us == 0 || snap.uptime_us == 0 {
        fail("snapshot is missing its capture-time / uptime stamps");
    }
    let prom = export::to_prometheus(&snap);
    match export::from_prometheus(&prom) {
        Ok(back) if back == snap.metrics_only() => {}
        Ok(_) => fail("prometheus exposition did not round-trip losslessly"),
        Err(e) => fail(&format!("prometheus exposition malformed: {e}")),
    }
    let json = export::to_json(&snap);
    match export::from_json(&json) {
        Ok(back) if back == snap => {}
        Ok(_) => fail("JSON snapshot did not round-trip losslessly"),
        Err(e) => fail(&format!("JSON snapshot malformed: {e}")),
    }

    match mode.as_str() {
        "--prom" => print!("{prom}"),
        "--json" => println!("{json}"),
        "--heat" => {
            if snap.heat.is_empty() {
                fail("heat map is empty after the workload");
            }
            let inserts: u64 = snap.heat.iter().map(|e| e.inserts_total).sum();
            if inserts != 4_000 {
                fail(&format!("heat insert totals {inserts} do not account for the 4000-insert workload"));
            }
            println!("# volap-stat: per-shard heat ({} shards)", snap.heat.len());
            println!(
                "# {:>6} {:<10} {:>7} {:>9} {:>9} {:>10} {:>10} {:>8}",
                "shard", "worker", "items", "inserts", "queries", "ins/s", "qry/s", "vol"
            );
            for e in &snap.heat {
                println!(
                    "# {:>6} {:<10} {:>7} {:>9} {:>9} {:>10.1} {:>10.1} {:>8.4}",
                    e.shard,
                    e.worker,
                    e.items,
                    e.inserts_total,
                    e.queries_total,
                    e.insert_rate,
                    e.query_rate,
                    e.volume_frac,
                );
            }
        }
        "--locks" => {
            if snap.locks.iter().all(|l| l.acquisitions == 0) {
                fail("no lock class recorded an acquisition");
            }
            for class in ["server.index", "worker.slot_state", "tree.node"] {
                if snap.lock_class(class).is_none() {
                    fail(&format!("lock class {class} missing from the snapshot"));
                }
            }
            let mut locks = snap.locks.clone();
            locks.sort_by(|a, b| {
                b.wait_sum_seconds
                    .partial_cmp(&a.wait_sum_seconds)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.acquisitions.cmp(&a.acquisitions))
            });
            println!("# volap-stat: lock contention ({} classes, hottest first)", locks.len());
            println!(
                "# {:<20} {:>4} {:>12} {:>10} {:>9} {:>12} {:>12}",
                "class", "rank", "acquisitions", "contended", "cont%", "wait_ms", "hold_ms"
            );
            for l in &locks {
                println!(
                    "# {:<20} {:>4} {:>12} {:>10} {:>8.2}% {:>12.3} {:>12.3}",
                    l.class,
                    l.rank,
                    l.acquisitions,
                    l.contended,
                    l.contention_frac() * 100.0,
                    l.wait_sum_seconds * 1e3,
                    l.hold_sum_seconds * 1e3,
                );
            }
        }
        "--history" => {
            let hist = &snap.history;
            if hist.frames.is_empty() {
                fail("history ring captured no frames");
            }
            if hist.dropped != 0 {
                fail(&format!(
                    "history ring dropped {} frames on a run sized to be lossless",
                    hist.dropped
                ));
            }
            if let Err(e) = hist.validate() {
                fail(&format!("history ring failed structural validation: {e}"));
            }
            let framed = hist.delta_sum_all_labels("volap_server_inserts_total");
            let live = snap.counter("volap_server_inserts_total") as f64;
            if framed != live {
                fail(&format!(
                    "per-frame insert deltas sum to {framed} but the live counter reads {live}"
                ));
            }
            println!("{json}");
            eprintln!(
                "volap-stat: history lossless ({} frames, {} series, deltas sum to {live})",
                hist.frames.len(),
                hist.series.len()
            );
        }
        "--snapshot" => {
            if snap.heat.is_empty() {
                fail("snapshot carries no heat entries");
            }
            if snap.locks.is_empty() {
                fail("snapshot carries no lock-class table");
            }
            if snap.audit.is_empty() {
                fail("snapshot carries no balance-audit records (manager never acted)");
            }
            if !snap.audit.iter().any(|d| d.action == "split" && d.outcome == "ok") {
                fail("no successful split decision in the audit trail");
            }
            println!("{json}");
        }
        _ => {
            println!("# volap-stat: cluster snapshot (2 servers, 4 shards, mixed workload)");
            println!("#");
            for name in [
                "volap_server_inserts_total",
                "volap_server_queries_total",
                "volap_server_box_expansions_total",
                "volap_server_sync_rounds_total",
                "volap_worker_inserts_total",
                "volap_worker_bulk_items_total",
                "volap_net_messages_total",
                "volap_net_bytes_total",
            ] {
                println!("# {name:<42} {}", snap.counter(name));
            }
            println!(
                "# staleness: {} samples, p50 {:.1} ms, p95 {:.1} ms",
                snap.staleness.count,
                snap.staleness.quantile(0.5) * 1e3,
                snap.staleness.quantile(0.95) * 1e3,
            );
            println!("# events retained: {}", snap.events.len());
            println!();
            print!("{prom}");
        }
    }
    eprintln!("volap-stat: OK (both exporters round-trip)");
}
