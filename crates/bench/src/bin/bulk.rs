//! §IV-C (text): bulk ingestion vs point insertion.
//!
//! The paper reports > 400 k items/s bulk ingestion vs ~50 k/s point
//! insertion on the same 20-node system, an ~8× gap. This binary measures
//! both paths at two levels: (1) a single Hilbert PDC tree (pure data
//! structure, no network) and (2) the full cluster stack.

use std::time::Instant;

use volap::{Cluster, VolapConfig};
use volap_bench::{drive, scaled};
use volap_data::{DataGen, Op};
use volap_dims::Schema;
use volap_tree::{build_store, StoreKind, TreeConfig};

fn main() {
    let schema = Schema::tpcds();
    let n = scaled(400_000, 40_000);
    println!("# Bulk vs point ingestion (N = {n}, TPC-DS, Hilbert PDC tree)");

    // Level 1: single shard store.
    let mut gen = DataGen::new(&schema, 1234, 1.5);
    let items = gen.items(n);

    let point = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
    let t = Instant::now();
    for it in &items {
        point.insert(it);
    }
    let point_rate = n as f64 / t.elapsed().as_secs_f64();

    let bulk = build_store(StoreKind::HilbertPdcMds, &schema, &TreeConfig::default());
    let t = Instant::now();
    bulk.bulk_insert(items.clone());
    let bulk_rate = n as f64 / t.elapsed().as_secs_f64();

    assert_eq!(point.len(), bulk.len());
    println!("{:<28} {:>14} {:>14}", "path", "items_per_s", "vs_point");
    println!("{:<28} {:>14.0} {:>14.2}", "tree point insert", point_rate, 1.0);
    println!("{:<28} {:>14.0} {:>14.2}", "tree bulk load", bulk_rate, bulk_rate / point_rate);

    // Level 2: through the cluster (parallel sessions).
    let cluster_n = scaled(60_000, 10_000);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 4;
    cfg.servers = 2;
    let cluster = Cluster::start(cfg);
    let ops: Vec<Op> = gen.items(cluster_n).into_iter().map(Op::Insert).collect();
    let res = drive(&cluster, 8, &ops);
    let cluster_point = res.throughput();
    println!(
        "{:<28} {:>14.0} {:>14}",
        "cluster point insert (8 sessions)",
        cluster_point,
        "-"
    );
    // System-level bulk ingestion: batches routed once per server pass and
    // shipped as per-shard bulk loads (paper: > 400 k items/s).
    let batches: Vec<Vec<_>> = gen
        .items(cluster_n)
        .chunks(4_096)
        .map(|c| c.to_vec())
        .collect();
    let t = Instant::now();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, batch) in batches.into_iter().enumerate() {
            if handles.len() == 4 {
                let h: std::thread::ScopedJoinHandle<'_, ()> = handles.remove(0);
                h.join().expect("bulk session");
                let _ = i;
            }
            let client = cluster.client();
            handles.push(s.spawn(move || {
                client.bulk_insert(batch).expect("bulk insert");
            }));
        }
        for h in handles {
            h.join().expect("bulk session");
        }
    });
    let cluster_bulk = cluster_n as f64 / t.elapsed().as_secs_f64();
    println!(
        "{:<28} {:>14.0} {:>14.2}",
        "cluster bulk insert (4 sessions)",
        cluster_bulk,
        cluster_bulk / cluster_point
    );
    cluster.shutdown();
    println!("# paper shape: bulk loading several times faster than point insertion (~8x on EC2)");
}
