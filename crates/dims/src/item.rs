//! Data items: hierarchical points with a measure.

use crate::path::DimPath;
use crate::schema::Schema;

/// One fact-table row: a leaf-level hierarchical coordinate in every
/// dimension plus a numeric measure (e.g. sales price).
///
/// Coordinates are stored as per-dimension *leaf ordinals* (the bit-packed
/// path; see [`Schema`]) so that geometry and Hilbert mapping are integer
/// operations. The original per-level components are recoverable through the
/// schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Leaf ordinal in each dimension (`coords.len() == schema.dims()`).
    pub coords: Box<[u64]>,
    /// The measure being aggregated.
    pub measure: f64,
}

impl Item {
    /// Create an item from per-dimension leaf ordinals.
    pub fn new(coords: Vec<u64>, measure: f64) -> Self {
        Self { coords: coords.into_boxed_slice(), measure }
    }

    /// Create an item from full per-dimension paths (component lists).
    ///
    /// # Panics
    ///
    /// Panics if the number of paths differs from the schema's dimension
    /// count or any path is not at leaf level.
    pub fn from_paths(schema: &Schema, paths: &[Vec<u64>], measure: f64) -> Self {
        assert_eq!(paths.len(), schema.dims(), "one path per dimension required");
        let coords = paths
            .iter()
            .enumerate()
            .map(|(d, p)| schema.dim(d).ordinal(p))
            .collect::<Vec<_>>();
        Self::new(coords, measure)
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// The full leaf path of this item in dimension `d`.
    pub fn path(&self, schema: &Schema, d: usize) -> DimPath {
        DimPath::leaf_of(schema, d, self.coords[d])
    }

    /// Validate that every coordinate decomposes into in-fanout components.
    pub fn validate(&self, schema: &Schema) -> bool {
        if self.coords.len() != schema.dims() {
            return false;
        }
        self.coords.iter().enumerate().all(|(d, &ord)| {
            let dim = schema.dim(d);
            dim.components(ord)
                .iter()
                .zip(&dim.levels)
                .all(|(&c, l)| c < l.fanout)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_paths_packs_ordinals() {
        let s = Schema::tpcds();
        let paths: Vec<Vec<u64>> = vec![
            vec![1, 2, 3],    // Store
            vec![40, 5, 20],  // Customer
            vec![3, 7, 11],   // Item
            vec![9, 6, 20],   // Date
            vec![2, 8, 30],   // Address
            vec![13],         // Household
            vec![200],        // Promotion
            vec![17, 42],     // Time
        ];
        let item = Item::from_paths(&s, &paths, 19.99);
        assert_eq!(item.dims(), 8);
        assert!(item.validate(&s));
        for (d, path) in paths.iter().enumerate() {
            assert_eq!(&item.path(&s, d).components, path);
        }
    }

    #[test]
    fn validate_rejects_wrong_arity_and_fanout() {
        let s = Schema::tpcds();
        let short = Item::new(vec![0; 7], 1.0);
        assert!(!short.validate(&s));
        // Promotion has fanout 256 in 8 bits: every 8-bit value is valid, so
        // poison a dimension whose fanout is not a power of two (Household,
        // fanout 20 in 5 bits).
        let mut coords = vec![0u64; 8];
        coords[5] = 25; // >= 20
        assert!(!Item::new(coords, 1.0).validate(&s));
    }
}
