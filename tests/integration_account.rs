//! Cluster-level per-principal workload accounting: the acceptance workload
//! for cost attribution and the heavy-hitter profiler. A 2-server / 4-shard
//! cluster runs a tagged mixed workload (two tenants plus untagged
//! traffic); the accounting snapshot's exact totals must reconcile with the
//! registry counters and both exporters, sampled slow traces must carry the
//! right principal, and a seeded hog tenant must flip the default
//! `tenant_dominance` health rule exactly once.

use std::time::{Duration, Instant};

use volap::{Cluster, HealthState, VolapConfig};
use volap_data::DataGen;
use volap_dims::{QueryBox, Schema};
use volap_obs::export;

fn eventually(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// A partial box over the first dimension: unlike `QueryBox::all`, it cannot
/// be answered from covered directory aggregates alone, so it forces leaf
/// item scans — the `rows_scanned` cost dimension stays non-zero.
fn partial_box() -> QueryBox {
    QueryBox::from_ranges(vec![(3, 40), (0, 63), (0, 63)])
}

#[test]
fn tagged_workload_reconciles_with_registry_and_exporters() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2; // 4 shards
    cfg.manager_enabled = false; // stable shard set -> exact counters
    // Sample every request and call everything slow, so the flight
    // recorder holds traces for the principal-annotation check.
    cfg.trace_sample = 1;
    cfg.trace_slow_threshold = Duration::ZERO;
    let cluster = Cluster::start(cfg);
    assert_eq!(cluster.shard_count(), 4);

    const A_INSERTS: u64 = 300;
    const A_QUERIES: u64 = 8;
    const B_QUERIES: u64 = 5;
    const PLAIN_INSERTS: u64 = 100;
    const TOTAL: u64 = A_INSERTS + PLAIN_INSERTS;
    let mut gen = DataGen::new(&schema, 17, 1.2);
    let a = cluster.client_on(0).with_principal("tenant-a");
    let b = cluster.client_on(1).with_principal("tenant-b");
    let plain0 = cluster.client_on(0);
    let plain1 = cluster.client_on(1);
    assert!(!plain0.principal().is_tagged());
    for item in gen.items(A_INSERTS as usize) {
        a.insert(&item).expect("tenant-a insert");
    }
    for item in gen.items(PLAIN_INSERTS as usize) {
        plain0.insert(&item).expect("untagged insert");
    }
    // Wait until both servers' local images have synced every box
    // expansion, so the tagged queries below see identical routing. The
    // probes are untagged and counted, keeping the registry math exact.
    let all = QueryBox::all(&schema);
    let mut probes = 0u64;
    assert!(
        eventually(Duration::from_secs(15), || {
            probes += 2;
            plain0.query(&all).expect("probe").0.count == TOTAL
                && plain1.query(&all).expect("probe").0.count == TOTAL
        }),
        "servers never converged on the full dataset"
    );
    // Reference execution: an untagged ANALYZE of the tenants' query yields
    // the exact per-query traversal counters tagged queries are charged.
    let (ref_agg, _, ref_plan) =
        plain1.query_analyze(&partial_box()).expect("reference analyze");
    let per_query = ref_plan.totals();
    assert!(per_query.items_scanned > 0, "partial box must force leaf scans: {per_query:?}");

    for _ in 0..A_QUERIES {
        a.query(&partial_box()).expect("tenant-a query");
    }
    for _ in 0..B_QUERIES {
        let (agg, _) = b.query(&partial_box()).expect("tenant-b query");
        assert_eq!(agg.count, ref_agg.count, "tagging must not change results");
    }

    // Exact totals: per-principal request counts are exact, and tagged +
    // untagged traffic reconciles with the registry counters.
    let snap = cluster.snapshot();
    let acc = &snap.accounting;
    assert!(acc.enabled);
    let ta = acc.principal("tenant-a").expect("tenant-a accounted");
    let tb = acc.principal("tenant-b").expect("tenant-b accounted");
    assert_eq!(ta.requests, A_INSERTS + A_QUERIES);
    assert_eq!(tb.requests, B_QUERIES);
    assert_eq!(acc.principals.len(), 2, "untagged traffic must not mint a principal");
    assert_eq!(snap.counter("volap_server_inserts_total"), TOTAL);
    assert_eq!(
        snap.counter("volap_server_queries_total"),
        A_QUERIES + B_QUERIES + probes + 1,
        "registry query counter disagrees with the issued workload"
    );
    // Cost dimensions carry real measurements: each tagged query was
    // charged exactly the reference plan's traversal counters, and fanned
    // out to both workers.
    assert_eq!(tb.cost.rows_scanned, B_QUERIES * per_query.items_scanned);
    assert_eq!(tb.cost.nodes_visited, B_QUERIES * per_query.nodes_visited);
    assert_eq!(ta.cost.rows_scanned, A_QUERIES * per_query.items_scanned);
    assert!(ta.cost.bytes > 0 && ta.cost.wall_us > 0);
    // Totals sum per-request fanout, so tenant-b's per-query scatter width
    // is its fanout total over its query count.
    assert_eq!(tb.cost.fanout % B_QUERIES, 0, "uneven scatter width: {:?}", tb.cost);
    let per_fanout = tb.cost.fanout / B_QUERIES;
    assert!(per_fanout >= 2, "partial box spans both workers, must fan out: {:?}", tb.cost);
    assert_eq!(ta.cost.net_hops, A_INSERTS + A_QUERIES * per_fanout);
    // The heavy-hitter sketch agrees on who scans the most rows (k=8 over
    // 2 tenants: no eviction, so the ranking is exact even after decay).
    let rows = acc.top_of("rows_scanned").expect("rows_scanned sketch");
    let top = rows.entries.first().expect("sketch has entries");
    assert_eq!(top.principal, "tenant-a", "hog of rows_scanned misidentified");

    // Exporters: lossless JSON round trip with a populated accounting
    // section, and exact totals visible as Prometheus counters.
    let back = export::from_json(&export::to_json(&snap)).expect("JSON parse");
    assert_eq!(back.accounting, snap.accounting);
    let prom = export::to_prometheus(&snap);
    let needle = format!(
        "volap_accounting_requests_total{{principal=\"tenant-a\"}} {}",
        ta.requests
    );
    assert!(prom.contains(&needle), "exposition missing {needle:?}");
    let rt = export::from_prometheus(&prom).expect("prometheus parse");
    assert_eq!(rt, snap.metrics_only(), "prometheus round trip lost accounting fold");

    // Slow traces: sampled roots of tagged requests carry the principal
    // annotation.
    let slow = cluster.slow_traces();
    assert!(!slow.is_empty(), "sampler recorded no slow traces");
    let tagged_root = slow.iter().any(|t| {
        t.spans.iter().any(|s| {
            s.name == "server_route"
                && s.annotations.iter().any(|(k, v)| k == "principal" && v == "tenant-b")
        })
    });
    assert!(tagged_root, "no slow trace root annotated principal=tenant-b");
    cluster.shutdown();
}

#[test]
fn seeded_hog_flips_dominance_rule_exactly_once() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 2;
    cfg.workers = 2;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    cfg.history_interval = Duration::from_millis(25);
    // Keep only the dominance rule so the assertion below is about it.
    cfg.health_rules = volap_obs::HealthRule::defaults()
        .into_iter()
        .filter(|r| r.name == "tenant_dominance")
        .collect();
    assert_eq!(cfg.health_rules.len(), 1, "default tenant_dominance rule missing");
    let cluster = Cluster::start(cfg);

    let mut gen = DataGen::new(&schema, 23, 1.2);
    cluster.client().bulk_insert(gen.items(500)).expect("seed data");
    let hog = cluster.client().with_principal("tenant-hog");
    // One tenant does all the scanning: dominance -> 1.0, which breaches
    // degraded_above=0.9 but can never reach critical_above, so the state
    // machine transitions exactly once. The partial box defeats covered
    // directory aggregates, keeping rows_scanned non-zero per query.
    let degraded = eventually(Duration::from_secs(15), || {
        hog.query(&partial_box()).expect("hog query");
        cluster
            .health()
            .iter()
            .any(|h| h.component == "tenants" && h.state == HealthState::Degraded)
    });
    assert!(degraded, "hog never degraded tenant health: {:?}", cluster.health());

    // Keep hogging: the state must hold Degraded without re-transitioning.
    for _ in 0..10 {
        hog.query(&partial_box()).expect("hog query");
        std::thread::sleep(Duration::from_millis(30));
    }
    let h = cluster
        .health()
        .into_iter()
        .find(|h| h.component == "tenants" && h.rule == "tenant_dominance")
        .expect("tenant_dominance rule tracked");
    assert_eq!(h.state, HealthState::Degraded, "dominance cannot reach Critical");
    assert_eq!(h.transitions, 1, "state machine must flip exactly once");
    assert!(h.value > 0.9, "breaching dominance not recorded: {}", h.value);

    // The derived history series is present.
    let hist = cluster.history();
    assert!(
        hist.series.iter().any(|s| s.key.contains("accounting_dominance_frac")),
        "dominance series missing from history"
    );
    cluster.shutdown();
}
