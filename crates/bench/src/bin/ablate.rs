//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Usage: `cargo run --release -p volap-bench --bin ablate [study ...]`
//! where `study` is any of `keys`, `expand`, `split`, `leafcap`, `mdscap`
//! (default: all).
//!
//! * `keys`    — MDS vs MBR node keys at fixed policy.
//! * `expand`  — the Figure-3 level expansion on vs off (Hilbert policy,
//!   MDS keys; "off" is *not* the Hilbert R-tree, which also drops MDS).
//! * `split`   — least-overlap split index vs forced half split
//!   (`min_fill = 0.5` makes every split exactly balanced, disabling the
//!   least-overlap scan).
//! * `leafcap` — leaf/directory capacity sweep.
//! * `mdscap`  — MDS per-dimension entry cap sweep (1 = MBR-like).

use std::time::Instant;

use volap_bench::{scaled, LatencyStats};
use volap_data::{DataGen, QueryGen};
use volap_dims::{Item, Mds, QueryBox, Schema};
use volap_tree::{build_store, ConcurrentTree, InsertPolicy, StoreKind, TreeConfig};

struct Workload {
    items: Vec<Item>,
    bins: [Vec<QueryBox>; 3],
}

fn workload(schema: &Schema, n: usize, per_band: usize) -> Workload {
    let mut gen = DataGen::new(schema, 42, 1.5);
    let items = gen.items(n);
    let sample = &items[..items.len().min(10_000)];
    let mut qg = QueryGen::new(schema, 43, 0.65);
    let bins = qg.binned(sample, per_band, 300_000);
    Workload { items, bins }
}

fn bench_tree(tree: &ConcurrentTree<Mds>, w: &Workload) -> (f64, [f64; 3]) {
    let t = Instant::now();
    for it in &w.items {
        tree.insert(it);
    }
    let insert_us = t.elapsed().as_secs_f64() * 1e6 / w.items.len() as f64;
    let mut band_ms = [0.0; 3];
    for (b, bin) in w.bins.iter().enumerate() {
        let mut lats = Vec::with_capacity(bin.len());
        for q in bin {
            let t = Instant::now();
            std::hint::black_box(tree.query(q));
            lats.push(t.elapsed().as_secs_f64());
        }
        band_ms[b] = LatencyStats::from_samples(lats).mean * 1e3;
    }
    (insert_us, band_ms)
}

fn header() {
    println!(
        "{:<34} {:>12} {:>10} {:>10} {:>10}",
        "variant", "insert_us", "q_low_ms", "q_med_ms", "q_high_ms"
    );
}

fn row(name: &str, insert_us: f64, band_ms: [f64; 3]) {
    println!(
        "{name:<34} {insert_us:>12.2} {:>10.4} {:>10.4} {:>10.4}",
        band_ms[0], band_ms[1], band_ms[2]
    );
}

fn ablate_keys(schema: &Schema, w: &Workload) {
    println!("\n== ablation: MDS vs MBR keys ==");
    header();
    for (name, kind) in [
        ("Hilbert + MDS (paper choice)", StoreKind::HilbertPdcMds),
        ("Hilbert + MBR", StoreKind::HilbertPdcMbr),
        ("geometric + MDS", StoreKind::PdcMds),
        ("geometric + MBR", StoreKind::PdcMbr),
    ] {
        let store = build_store(kind, schema, &TreeConfig::default());
        let t = Instant::now();
        for it in &w.items {
            store.insert(it);
        }
        let insert_us = t.elapsed().as_secs_f64() * 1e6 / w.items.len() as f64;
        let mut band_ms = [0.0; 3];
        for (b, bin) in w.bins.iter().enumerate() {
            let mut lats = Vec::with_capacity(bin.len());
            for q in bin {
                let t = Instant::now();
                std::hint::black_box(store.query(q));
                lats.push(t.elapsed().as_secs_f64());
            }
            band_ms[b] = LatencyStats::from_samples(lats).mean * 1e3;
        }
        row(name, insert_us, band_ms);
    }
}

fn ablate_expand(schema: &Schema, w: &Workload) {
    println!("\n== ablation: Figure-3 level expansion on/off (Hilbert, MDS keys) ==");
    header();
    for (name, expand) in [("expanded IDs (paper)", true), ("raw IDs", false)] {
        let tree: ConcurrentTree<Mds> = ConcurrentTree::new(
            schema.clone(),
            InsertPolicy::Hilbert { expand },
            TreeConfig::default(),
        );
        let (i, b) = bench_tree(&tree, w);
        row(name, i, b);
    }
}

fn ablate_split(schema: &Schema, w: &Workload) {
    println!("\n== ablation: least-overlap split vs forced half split ==");
    header();
    for (name, min_fill) in [
        ("least-overlap (min_fill 0.35)", 0.35),
        ("narrow band (min_fill 0.2)", 0.2),
        ("forced half split (min_fill 0.5)", 0.5),
    ] {
        let cfg = TreeConfig { min_fill, ..TreeConfig::default() };
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, cfg);
        let (i, b) = bench_tree(&tree, w);
        row(name, i, b);
    }
}

fn ablate_leafcap(schema: &Schema, w: &Workload) {
    println!("\n== ablation: leaf capacity sweep ==");
    header();
    for leaf_cap in [16, 32, 64, 128, 256] {
        let cfg = TreeConfig { leaf_cap, ..TreeConfig::default() };
        let tree: ConcurrentTree<Mds> =
            ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, cfg);
        let (i, b) = bench_tree(&tree, w);
        row(&format!("leaf_cap = {leaf_cap}"), i, b);
    }
}

fn ablate_mdscap(w: &Workload) {
    println!("\n== ablation: MDS per-dimension cap sweep ==");
    header();
    for cap in [1usize, 2, 4, 8, 16] {
        // Rebuild the TPC-DS schema with a different MDS cap.
        let base = Schema::tpcds();
        let schema = Schema::new(base.dimensions().to_vec(), cap);
        let tree: ConcurrentTree<Mds> = ConcurrentTree::new(
            schema.clone(),
            InsertPolicy::Hilbert { expand: true },
            TreeConfig::default(),
        );
        let (i, b) = bench_tree(&tree, w);
        row(&format!("mds_cap = {cap}"), i, b);
    }
}

fn main() {
    let schema = Schema::tpcds();
    let n = scaled(150_000, 20_000);
    let per_band = scaled(40, 10);
    let w = workload(&schema, n, per_band);
    println!("# Ablations over TPC-DS, N = {n}, {} queries/band", per_band);
    let studies: Vec<String> = std::env::args().skip(1).filter(|a| a != "--quick").collect();
    let want = |s: &str| studies.is_empty() || studies.iter().any(|x| x == s);
    if want("keys") {
        ablate_keys(&schema, &w);
    }
    if want("expand") {
        ablate_expand(&schema, &w);
    }
    if want("split") {
        ablate_split(&schema, &w);
    }
    if want("leafcap") {
        ablate_leafcap(&schema, &w);
    }
    if want("mdscap") {
        ablate_mdscap(&w);
    }
}
