//! Lock-order checker correctness: rank-respecting interleavings never
//! fire, a seeded two-thread ABBA inversion always fires, and the
//! thread-local held stack survives out-of-order guard drops.
//!
//! The checker's mode and violation log are process-global, so every test
//! here holds one serialization lock and restores `CheckMode::Panic` (the
//! debug-build default) on exit. The inversion tests are compiled only
//! under `debug_assertions`: release builds compile the checker out, and
//! the same code must then run to completion without recording anything.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use volap_obs::lock::{self, CheckMode, LockClass, ObsMutex, ObsRwLock};

/// Eight classes with strictly ascending ranks for the interleaving
/// property: acquiring any subset in index order is always hierarchy-legal.
static LADDER: [LockClass; 8] = [
    LockClass::new("proplock.l0", 210),
    LockClass::new("proplock.l1", 211),
    LockClass::new("proplock.l2", 212),
    LockClass::new("proplock.l3", 213),
    LockClass::new("proplock.l4", 214),
    LockClass::new("proplock.l5", 215),
    LockClass::new("proplock.l6", 216),
    LockClass::new("proplock.l7", 217),
];

static ABBA_A: LockClass = LockClass::new("proplock.abba_a", 220);
static ABBA_B: LockClass = LockClass::new("proplock.abba_b", 221);

#[cfg(debug_assertions)]
static DROP_LO: LockClass = LockClass::new("proplock.drop_lo", 230);
#[cfg(debug_assertions)]
static DROP_MID: LockClass = LockClass::new("proplock.drop_mid", 231);
#[cfg(debug_assertions)]
static DROP_HI: LockClass = LockClass::new("proplock.drop_hi", 232);
#[cfg(debug_assertions)]
static DROP_TOP: LockClass = LockClass::new("proplock.drop_top", 233);

/// Serializes tests that read or mutate the global checker state.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII restore of the default Panic mode, so a failing test cannot leave
/// the process in Record/Off for its neighbors.
struct ModeGuard;
impl Drop for ModeGuard {
    fn drop(&mut self) {
        lock::set_check_mode(CheckMode::Panic);
    }
}

proptest! {
    /// Any nested acquisition sequence that respects the rank order — an
    /// arbitrary strictly-ascending subset of the ladder, with arbitrary
    /// read/write choices — never records a violation under the default
    /// Panic mode (a violation would also panic the test).
    #[test]
    fn rank_respecting_interleavings_never_fire(
        raw_picks in prop::collection::vec(0usize..8, 1..=8),
        writes in prop::collection::vec(any::<bool>(), 8),
    ) {
        let _g = serial();
        let before = lock::violation_count();
        // Deduped ascending indices = a rank-respecting acquisition order.
        let mut picks = raw_picks;
        picks.sort_unstable();
        picks.dedup();
        let locks: Vec<ObsRwLock<u32>> =
            picks.iter().map(|&i| ObsRwLock::new(&LADDER[i], i as u32)).collect();
        // Hold the whole ascending chain at once, mixing read and write.
        let mut read_guards = Vec::new();
        let mut write_guards = Vec::new();
        for (k, l) in locks.iter().enumerate() {
            if writes[k] {
                write_guards.push(l.write());
            } else {
                read_guards.push(l.read());
            }
        }
        drop(write_guards);
        drop(read_guards);
        // And again as a simple nest-and-release-in-reverse walk.
        fn nest(locks: &[ObsRwLock<u32>]) {
            if let Some((first, rest)) = locks.split_first() {
                let _g = first.read();
                nest(rest);
            }
        }
        nest(&locks);
        prop_assert_eq!(lock::violation_count(), before);
    }
}

/// Seeded two-thread ABBA inversion: thread 1 takes A then B (legal),
/// thread 2 takes B then A (descending rank — the classic deadlock cycle).
/// Thread 2 runs strictly after thread 1 finishes, so the test always
/// completes; the checker must still flag thread 2's acquisition every
/// time. In release builds (checker compiled out) the same interleaving
/// runs silently — which is also what `CheckMode::Off` must do.
fn run_abba() -> (u64, Vec<lock::LockOrderViolation>) {
    let before = lock::violation_count();
    let a = ObsMutex::new(&ABBA_A, 0u32);
    let b = ObsMutex::new(&ABBA_B, 0u32);
    std::thread::scope(|s| {
        s.spawn(|| {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .expect("thread 1");
        s.spawn(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join()
        .expect("thread 2");
    });
    (lock::violation_count() - before, lock::take_violations())
}

#[cfg(debug_assertions)]
#[test]
fn seeded_abba_inversion_always_fires() {
    let _g = serial();
    let _restore = ModeGuard;
    lock::set_check_mode(CheckMode::Record);
    let _ = lock::take_violations();
    for _ in 0..16 {
        let (fired, violations) = run_abba();
        assert_eq!(fired, 1, "the B-then-A thread must fire exactly once");
        let v = violations.last().expect("violation recorded");
        assert_eq!(v.acquiring, "proplock.abba_a");
        assert_eq!(v.holding, "proplock.abba_b");
        assert!(v.acquiring_rank < v.holding_rank);
    }
}

#[test]
fn abba_passes_with_checker_disabled() {
    let _g = serial();
    let _restore = ModeGuard;
    lock::set_check_mode(CheckMode::Off);
    let _ = lock::take_violations();
    for _ in 0..16 {
        let (fired, _) = run_abba();
        assert_eq!(fired, 0, "disabled checker must record nothing");
    }
}

/// Guards dropped out of acquisition order (the `SpanGuard` pattern: a
/// mid-stack guard is released early while deeper ones stay held) must
/// leave the held stack coherent: the deepest *live* rank governs later
/// acquisitions, and fully unwinding empties the stack.
#[cfg(debug_assertions)]
#[test]
fn held_stack_survives_out_of_order_drops() {
    let _g = serial();
    let _restore = ModeGuard;
    lock::set_check_mode(CheckMode::Record);
    let _ = lock::take_violations();
    let before = lock::violation_count();

    let lo = ObsMutex::new(&DROP_LO, ());
    let mid = ObsMutex::new(&DROP_MID, ());
    let hi = ObsMutex::new(&DROP_HI, ());
    let top = ObsMutex::new(&DROP_TOP, ());

    let base = lock::held_depth();
    let g_lo = lo.lock();
    let g_mid = mid.lock();
    let g_hi = hi.lock();
    assert_eq!(lock::held_depth(), base + 3);
    // Early drop of the middle guard, deeper guard still held.
    drop(g_mid);
    assert_eq!(lock::held_depth(), base + 2);
    // hi (232) is still the deepest live rank: re-acquiring mid (231) is a
    // violation even though mid itself was released...
    let g_mid2 = mid.lock();
    assert_eq!(lock::violation_count() - before, 1, "231 under live 232 must fire");
    drop(g_mid2);
    // ...while going deeper stays legal.
    let g_top = top.lock();
    assert_eq!(lock::violation_count() - before, 1);
    drop(g_top);
    drop(g_hi);
    // With hi gone, lo (230) is the deepest live rank again: mid is legal.
    let g_mid3 = mid.lock();
    assert_eq!(lock::violation_count() - before, 1);
    drop(g_mid3);
    drop(g_lo);
    assert_eq!(lock::held_depth(), base);
    let _ = lock::take_violations();
}
